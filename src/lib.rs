//! # nash-lb — umbrella crate
//!
//! Re-exports the whole workspace reproducing Grosu & Chronopoulos,
//! *A Game-Theoretic Model and Algorithm for Load Balancing in Distributed
//! Systems* (IPDPS/APDCM 2002). See the README for a tour and DESIGN.md for
//! the system inventory.
//!
//! ```
//! use nash_lb::game::model::SystemModel;
//! use nash_lb::game::nash::{NashSolver, Initialization};
//!
//! // A tiny heterogeneous system: 3 computers, 2 users at 50% utilization.
//! let model = SystemModel::builder()
//!     .computer_rates(vec![10.0, 20.0, 40.0])
//!     .user_rates(vec![14.0, 21.0])
//!     .build()
//!     .unwrap();
//! let outcome = NashSolver::new(Initialization::Proportional)
//!     .solve(&model)
//!     .unwrap();
//! assert!(outcome.converged());
//! ```

pub use lb_des as des;
pub use lb_distributed as distributed;
pub use lb_experiments as experiments;
pub use lb_game as game;
pub use lb_queueing as queueing;
pub use lb_sim as sim;
pub use lb_stats as stats;
