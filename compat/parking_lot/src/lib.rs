//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses. Semantics
//! match `parking_lot` where they matter here: `read`/`write`/`lock`
//! return guards directly (no poisoning — a lock held by a panicked
//! thread is recovered, which the fault-tolerant distributed runtime
//! relies on when a user thread dies while publishing to the board).

use std::sync::{self, LockResult};

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn ignore_poison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.inner.read())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.inner.write())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn rwlock_recovers_from_a_panicked_writer() {
        let lock = Arc::new(RwLock::new(0_u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning; the lock stays usable.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
    }
}
