//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple
//! calibrate-then-sample wall-clock loop — adequate for the relative
//! comparisons the benches make, with none of upstream's statistics.
//!
//! Two extensions beyond upstream's API support offline perf tracking:
//!
//! * every measurement is recorded on the [`Criterion`] context
//!   ([`Criterion::results`]) and can be serialized with
//!   [`Criterion::write_json`]; `criterion_main!` writes the summary to
//!   the path named by the `CRITERION_JSON` environment variable, and
//! * setting `CRITERION_QUICK=1` shrinks the calibration and sampling
//!   windows ~10× so CI smoke jobs finish fast (numbers are noisy but the
//!   benches still execute end to end and panics still surface).

use std::fmt;
use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One recorded measurement: a benchmark's identity and its per-iteration
/// wall-clock cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group name (`benchmark_group` argument, or the bare id for
    /// ungrouped `bench_function` calls).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration over the sampling window.
    pub ns_per_iter: f64,
    /// Iterations in the sampling window.
    pub iters: u64,
}

/// True when `CRITERION_QUICK` requests a reduced-iteration smoke pass.
fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so the
    /// measured loop runs for roughly the configured sampling window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration window and sampling budget; ~10× smaller under
        // CRITERION_QUICK so CI smoke runs stay cheap.
        let (calibrate_for, budget) = if quick_mode() {
            (Duration::from_millis(1), Duration::from_millis(5))
        } else {
            (Duration::from_millis(10), Duration::from_millis(50))
        };
        let mut calibration_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calibration_iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibrate_for || calibration_iters >= (1 << 24) {
                break elapsed / calibration_iters.max(1) as u32;
            }
            calibration_iters *= 8;
        };
        let iters = if per_iter.is_zero() {
            self.iters_hint
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the shim measures one sample, so
    /// this only records intent.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tunes the measurement window; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_hint: 100,
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!(" ({:.3e} elem/s)", n as f64 / per_iter)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!(" ({:.3e} B/s)", n as f64 / per_iter)
                    }
                    None => String::new(),
                };
                println!(
                    "{}/{}: {:.3} µs/iter over {} iters{}",
                    self.name,
                    id,
                    per_iter * 1e6,
                    iters,
                    rate
                );
                self.criterion.results.push(BenchResult {
                    group: self.name.clone(),
                    id: id.to_string(),
                    ns_per_iter: per_iter * 1e9,
                    iters,
                });
            }
            _ => println!("{}/{}: no measurement recorded", self.name, id),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Top-level bench context, threaded through `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
    results: Vec<BenchResult>,
}

/// Appends `s` to `out` as a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Criterion {
    /// Accepted for CLI compatibility with upstream; no-op.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Every measurement recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the recorded measurements as a JSON document
    /// (`{"benchmarks": [{"group", "id", "ns_per_iter", "iters"}, ...]}`).
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"group\": ");
            push_json_str(&mut out, &r.group);
            out.push_str(", \"id\": ");
            push_json_str(&mut out, &r.id);
            let _ = write!(
                out,
                ", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                r.ns_per_iter, r.iters
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`Criterion::summary_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.summary_json())
    }

    /// `criterion_main!` hook: writes the JSON summary to the path named
    /// by `CRITERION_JSON`, if set. Failures print to stderr rather than
    /// failing the bench run.
    pub fn finalize_from_env(&self) {
        if let Some(path) = std::env::var_os("CRITERION_JSON") {
            if path.is_empty() {
                return;
            }
            if let Err(e) = self.write_json(&path) {
                eprintln!(
                    "criterion shim: failed to write {}: {e}",
                    path.to_string_lossy()
                );
            } else {
                println!("criterion shim: wrote {}", path.to_string_lossy());
            }
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.to_string();
        let mut group = self.benchmark_group(name);
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// Declares a bench group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.finalize_from_env();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(2_u64) * 2)
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("solve", 16).to_string(), "solve/16");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn measurements_are_recorded_and_serialized() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("record");
        group.bench_function("double", |b| b.iter(|| black_box(21_u64) * 2));
        group.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.group, "record");
        assert_eq!(r.id, "double");
        assert!(r.ns_per_iter >= 0.0);
        assert!(r.iters >= 1);
        let json = c.summary_json();
        assert!(json.contains("\"group\": \"record\""));
        assert!(json.contains("\"id\": \"double\""));
        assert!(json.contains("\"ns_per_iter\""));
    }

    #[test]
    fn json_strings_escape_quotes_and_control_chars() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
