//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple
//! calibrate-then-sample wall-clock loop — adequate for the relative
//! comparisons the benches make, with none of upstream's statistics.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so the
    /// measured loop runs for roughly the configured sampling window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count filling ~10ms.
        let mut calibration_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calibration_iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || calibration_iters >= (1 << 24) {
                break elapsed / calibration_iters.max(1) as u32;
            }
            calibration_iters *= 8;
        };
        let budget = Duration::from_millis(50);
        let iters = if per_iter.is_zero() {
            self.iters_hint
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the shim measures one sample, so
    /// this only records intent.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tunes the measurement window; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_hint: 100,
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!(" ({:.3e} elem/s)", n as f64 / per_iter)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!(" ({:.3e} B/s)", n as f64 / per_iter)
                    }
                    None => String::new(),
                };
                println!(
                    "{}/{}: {:.3} µs/iter over {} iters{}",
                    self.name,
                    id,
                    per_iter * 1e6,
                    iters,
                    rate
                );
            }
            _ => println!("{}/{}: no measurement recorded", self.name, id),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Top-level bench context, threaded through `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Accepted for CLI compatibility with upstream; no-op.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.to_string();
        let mut group = self.benchmark_group(name);
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// Declares a bench group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(2_u64) * 2)
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("solve", 16).to_string(), "solve/16");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
