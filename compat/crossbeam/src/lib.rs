//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset it actually uses: `channel::unbounded`
//! with cloneable senders *and* receivers, blocking/timeout receives, and
//! disconnect detection. The distributed token-ring runtime depends on two
//! semantic details that match real crossbeam:
//!
//! * `send` fails with [`channel::SendError`] once every `Receiver` clone
//!   is gone (this is how a live ring participant detects that its
//!   successor's thread has died), and
//! * `recv`/`recv_timeout` fail with a disconnect error once every
//!   `Sender` clone is gone.
//!
//! It also vendors `thread::scope` (the `crossbeam-utils` subset used by
//! the deterministic parallel runner), layered over `std::thread::scope`,
//! which has been stable since Rust 1.63.

pub mod thread {
    //! Scoped threads (the `crossbeam-utils::thread` subset).
    //!
    //! Mirrors crossbeam's API shape: `scope(|s| ...)` hands the closure a
    //! [`Scope`] whose `spawn` accepts a closure that itself receives the
    //! scope (so spawned threads can spawn siblings), and the outer call
    //! returns `Err` with the panic payload if any spawned thread panicked.

    use std::any::Any;

    /// A scope for spawning threads that borrow from the enclosing stack
    /// frame. All spawned threads are joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope in which threads borrowing local data can be
    /// spawned; joins every thread spawned through an explicit handle or
    /// left running when the closure returns.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of the first panicking thread (or of the
    /// closure itself), matching crossbeam's contract that `scope` only
    /// errs when something inside it panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1_u64, 2, 3, 4];
            let total = AtomicUsize::new(0);
            scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        let part: u64 = chunk.iter().sum();
                        total.fetch_add(part as usize, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn join_returns_the_thread_result_in_spawn_order() {
            let out = scope(|s| {
                let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * i)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<i32>>()
            })
            .unwrap();
            assert_eq!(out, vec![0, 1, 4, 9]);
        }

        #[test]
        fn spawned_threads_can_spawn_siblings() {
            let count = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|s2| {
                    count.fetch_add(1, Ordering::Relaxed);
                    s2.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(count.load(Ordering::Relaxed), 2);
        }

        #[test]
        fn a_panicking_thread_surfaces_as_scope_err() {
            let result = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(result.is_err());
        }
    }
}

pub mod channel {
    //! Unbounded MPMC channels (the `crossbeam-channel` subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back to the caller.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("timed out waiting on a channel"),
                Self::Disconnected => f.write_str("receiving on an empty, disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded channel, returning its sender and receiver.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        // The internal mutex is only held for push/pop; a panic while
        // holding it is impossible from user code, but recover anyway.
        match shared.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue.
        ///
        /// # Errors
        ///
        /// [`SendError`] (returning the message) when every receiver has
        /// been dropped — for the token ring this means the destination
        /// thread is dead.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the queue is empty and every sender has been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.shared.ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on timeout,
        /// [`RecvTimeoutError::Disconnected`] when the queue is empty and
        /// every sender has been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.shared);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = match self.shared.ready.wait_timeout(state, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                state = guard;
            }
        }

        /// Pops a message if one is ready, without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.shared);
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = lock(&self.shared);
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = lock(&self.shared);
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // Wake anyone who might care (no blocking sends on an
                // unbounded channel, but keep the invariant tidy).
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn send_and_recv_preserve_fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_blocks_until_a_cross_thread_send() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(7_u32).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 7);
            h.join().unwrap();
        }

        #[test]
        fn send_fails_once_all_receivers_are_dropped() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(1).unwrap();
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn recv_fails_once_all_senders_are_dropped_and_queue_drains() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn dropping_a_receiver_inside_a_panicking_thread_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let h = thread::spawn(move || {
                let _rx = rx;
                panic!("simulated user-thread crash");
            });
            assert!(h.join().is_err());
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn mpmc_distributes_messages_exactly_once() {
            let (tx, rx) = unbounded();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}
