//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset its property tests actually use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * range strategies (`0.1f64..100.0`, `0u32..1000`, …), tuples of
//!   strategies, [`strategy::Just`], `.prop_map(..)`, and
//!   [`collection::vec`].
//!
//! Differences from upstream, by design: case generation is fully
//! **deterministic** (seeded from the test name, so CI runs are
//! reproducible), and there is **no shrinking** — a failing case reports
//! its case number and assertion message instead of a minimized input.

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// SplitMix64-based generator; one per test function, seeded from the
    /// test's name so every run explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut state: u64 = 0x517C_C1B7_2722_0A95;
            for b in name.bytes() {
                state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            Self { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Lemire-style multiply-shift; negligible bias at these sizes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (the `proptest::strategy` subset).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice among boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum covers all picks")
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
        (A, B, C, D, E, F, G, H, I);
        (A, B, C, D, E, F, G, H, I, J);
    }
}

pub mod collection {
    //! Collection strategies (the `proptest::collection` subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything convertible to a size range for [`vec`].
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound on the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module path used inside strategies.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines deterministic property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __strategies = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(
                        &__strategies,
                        &mut __rng,
                    );
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property failed at case {}/{}: {}",
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Weighted (or unweighted) choice among strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u32),
        Pop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3u32..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size_and_element_bounds(
            v in prop::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_patterns_and_maps_work(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x + 100, y)),
        ) {
            prop_assert!(a >= 100);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn oneof_hits_every_arm(ops in prop::collection::vec(
            prop_oneof![
                3 => (0u32..50).prop_map(Op::Push),
                1 => Just(Op::Pop),
            ],
            1..100,
        )) {
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0.0f64..1.0, 0u32..100);
        let sample = |seed_name: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(seed_name);
            (0..10)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("t"), sample("t"));
        assert_ne!(sample("t"), sample("u"));
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_report_case_numbers() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 3, "saw {}", x);
            }
        }
        inner();
    }
}
