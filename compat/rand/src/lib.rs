//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for the primitive types
//! the simulator samples. The generator is xoshiro256** seeded through
//! SplitMix64 — different algorithm than upstream `StdRng` (ChaCha12),
//! but the workspace only requires *reproducibility within itself*, never
//! bit-compatibility with upstream streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution of
/// real `rand`, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws a uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators (the `rand::rngs` subset).

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman &
    /// Vigna), seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // An all-zero state is a fixed point; SplitMix64 cannot emit
            // four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_samples_are_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
