//! Property tests for the statistics substrate.

use lb_stats::tdist::{t_cdf, t_quantile};
use lb_stats::{jain_index, BatchMeans, SampleSummary, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn welford_matches_two_pass(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let w: Welford = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-9 * (1.0 + mean.abs()));
        if data.len() > 1 {
            let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            prop_assert!((w.sample_variance() - var).abs() <= 1e-6 * (1.0 + var));
        }
        prop_assert_eq!(w.count(), data.len() as u64);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    #[test]
    fn welford_merge_is_associative_enough(
        a in prop::collection::vec(-1e3f64..1e3, 0..60),
        b in prop::collection::vec(-1e3f64..1e3, 0..60),
        c in prop::collection::vec(-1e3f64..1e3, 0..60),
    ) {
        // (a + b) + c equals a + (b + c) within fp tolerance.
        let wa: Welford = a.iter().copied().collect();
        let wb: Welford = b.iter().copied().collect();
        let wc: Welford = c.iter().copied().collect();
        let mut left = wa;
        left.merge(&wb);
        left.merge(&wc);
        let mut bc = wb;
        bc.merge(&wc);
        let mut right: Welford = a.iter().copied().collect();
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9 * (1.0 + left.mean().abs()));
        prop_assert!((left.sample_variance() - right.sample_variance()).abs() < 1e-6 * (1.0 + left.sample_variance()));
    }

    #[test]
    fn jain_index_bounds_and_invariance(values in prop::collection::vec(0.01f64..1e4, 1..40), scale in 0.01f64..100.0) {
        let m = values.len() as f64;
        let idx = jain_index(&values).unwrap();
        prop_assert!(idx >= 1.0 / m - 1e-12);
        prop_assert!(idx <= 1.0 + 1e-12);
        // Scale invariance.
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let idx2 = jain_index(&scaled).unwrap();
        prop_assert!((idx - idx2).abs() < 1e-9);
        // Permutation invariance.
        let mut rev = values.clone();
        rev.reverse();
        prop_assert!((jain_index(&rev).unwrap() - idx).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_contains_the_sample_mean(
        data in prop::collection::vec(-1e3f64..1e3, 2..50),
        conf in 0.5f64..0.999,
    ) {
        let s = SampleSummary::from_slice(&data, conf).unwrap();
        prop_assert!(s.contains(s.mean));
        prop_assert!(s.ci_low() <= s.mean && s.mean <= s.ci_high());
        prop_assert!(s.half_width >= 0.0);
    }

    #[test]
    fn t_quantile_is_monotone_and_symmetric(df in 1.0f64..100.0, p in 0.001f64..0.499) {
        let lo = t_quantile(p, df);
        let hi = t_quantile(1.0 - p, df);
        prop_assert!((lo + hi).abs() < 1e-6 * (1.0 + hi.abs()), "symmetry: {lo} vs {hi}");
        prop_assert!(lo < 0.0 && hi > 0.0);
        // CDF round trip.
        prop_assert!((t_cdf(hi, df) - (1.0 - p)).abs() < 1e-8);
    }

    #[test]
    fn batch_means_grand_mean_matches_complete_batches(
        data in prop::collection::vec(-1e3f64..1e3, 1..300),
        batch in 1u64..20,
    ) {
        let mut bm = BatchMeans::new(batch);
        for &x in &data {
            bm.push(x);
        }
        let complete = (data.len() as u64 / batch) as usize * batch as usize;
        if complete > 0 {
            let expected = data[..complete].iter().sum::<f64>() / complete as f64;
            prop_assert!((bm.mean() - expected).abs() < 1e-9 * (1.0 + expected.abs()));
        } else {
            prop_assert_eq!(bm.batches(), 0);
        }
    }
}
