//! Replication control: the paper's "run five replications with different
//! random streams, average, and keep the standard error under 5%".
//!
//! [`ReplicationPlan`] describes the policy (how many replications, which
//! precision to demand); [`ReplicationSet`] collects per-replication
//! observations of possibly many named metrics and produces
//! [`SampleSummary`] values plus a precision verdict.

use crate::summary::SampleSummary;
use crate::welford::Welford;

/// Policy for a replicated experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPlan {
    /// Number of independent replications to run (the paper uses 5).
    pub replications: u32,
    /// Confidence level for intervals (the paper uses 0.95).
    pub confidence: f64,
    /// Maximum acceptable relative standard error (the paper demands 0.05).
    pub max_relative_error: f64,
    /// Base seed; replication `r` derives its stream from `base_seed + r`.
    pub base_seed: u64,
}

impl ReplicationPlan {
    /// The paper's §4.1 policy: 5 replications, 95% confidence, 5% relative
    /// standard error.
    pub fn paper() -> Self {
        Self {
            replications: 5,
            confidence: 0.95,
            max_relative_error: 0.05,
            base_seed: 0x005e_ed1b,
        }
    }

    /// A faster policy for CI tests: 3 replications, looser precision.
    pub fn quick() -> Self {
        Self {
            replications: 3,
            confidence: 0.95,
            max_relative_error: 0.15,
            base_seed: 0x005e_ed1b,
        }
    }

    /// Seed for replication index `r` (`0 <= r < replications`), spread by
    /// SplitMix64 so adjacent replications get decorrelated streams.
    pub fn seed_for(&self, replication: u32) -> u64 {
        let mut z = self
            .base_seed
            .wrapping_add(u64::from(replication).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for ReplicationPlan {
    fn default() -> Self {
        Self::paper()
    }
}

/// Accumulates one observation per replication for each of `k` metrics
/// (e.g. the per-user expected response times of a simulated scheme).
#[derive(Debug, Clone)]
pub struct ReplicationSet {
    names: Vec<String>,
    accumulators: Vec<Welford>,
    replications_recorded: u32,
    confidence: f64,
}

impl ReplicationSet {
    /// Creates a set tracking the given metric names at a confidence level.
    pub fn new<S: Into<String>>(names: Vec<S>, confidence: f64) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let accumulators = vec![Welford::new(); names.len()];
        Self {
            names,
            accumulators,
            replications_recorded: 0,
            confidence,
        }
    }

    /// Records the metric vector produced by one replication.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of metrics — that is
    /// a programming error in the harness, not a data condition.
    pub fn record(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.accumulators.len(),
            "replication recorded {} values for {} metrics",
            values.len(),
            self.accumulators.len()
        );
        for (acc, &v) in self.accumulators.iter_mut().zip(values) {
            acc.push(v);
        }
        self.replications_recorded += 1;
    }

    /// Number of replications recorded so far.
    pub fn replications(&self) -> u32 {
        self.replications_recorded
    }

    /// Metric names, in recording order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Summary for metric `i`; `None` before any replication is recorded.
    pub fn summary(&self, i: usize) -> Option<SampleSummary> {
        SampleSummary::from_welford(&self.accumulators[i], self.confidence)
    }

    /// Summaries for all metrics; `None` before any replication.
    pub fn summaries(&self) -> Option<Vec<SampleSummary>> {
        (0..self.accumulators.len())
            .map(|i| self.summary(i))
            .collect()
    }

    /// Cross-replication means for all metrics (zeros before recording).
    pub fn means(&self) -> Vec<f64> {
        self.accumulators.iter().map(Welford::mean).collect()
    }

    /// Whether *every* metric meets the relative-standard-error threshold.
    pub fn meets_precision(&self, max_relative_error: f64) -> bool {
        self.replications_recorded >= 2
            && self
                .summaries()
                .map(|s| s.iter().all(|x| x.meets_precision(max_relative_error)))
                .unwrap_or(false)
    }

    /// Worst (largest) relative standard error across metrics; `+∞` before
    /// two replications exist.
    pub fn worst_relative_error(&self) -> f64 {
        if self.replications_recorded < 2 {
            return f64::INFINITY;
        }
        self.summaries()
            .map(|s| {
                s.iter()
                    .map(SampleSummary::relative_std_error)
                    .fold(0.0, f64::max)
            })
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_methodology() {
        let p = ReplicationPlan::paper();
        assert_eq!(p.replications, 5);
        assert_eq!(p.confidence, 0.95);
        assert_eq!(p.max_relative_error, 0.05);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let p = ReplicationPlan::paper();
        let seeds: Vec<u64> = (0..5).map(|r| p.seed_for(r)).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
        assert_eq!(p.seed_for(3), p.seed_for(3));
        let q = ReplicationPlan {
            base_seed: 99,
            ..ReplicationPlan::paper()
        };
        assert_ne!(p.seed_for(0), q.seed_for(0));
    }

    #[test]
    fn records_and_summarizes_per_metric() {
        let mut set = ReplicationSet::new(vec!["user0", "user1"], 0.95);
        set.record(&[1.0, 10.0]);
        set.record(&[2.0, 10.0]);
        set.record(&[3.0, 10.0]);
        assert_eq!(set.replications(), 3);
        assert_eq!(set.means(), vec![2.0, 10.0]);
        let s0 = set.summary(0).unwrap();
        assert_eq!(s0.count, 3);
        assert!((s0.mean - 2.0).abs() < 1e-12);
        let s1 = set.summary(1).unwrap();
        assert_eq!(s1.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "metrics")]
    fn wrong_arity_panics() {
        let mut set = ReplicationSet::new(vec!["a"], 0.95);
        set.record(&[1.0, 2.0]);
    }

    #[test]
    fn precision_gate_behaves() {
        let mut set = ReplicationSet::new(vec!["m"], 0.95);
        assert!(!set.meets_precision(0.5));
        assert!(set.worst_relative_error().is_infinite());
        set.record(&[100.0]);
        assert!(!set.meets_precision(0.5));
        set.record(&[101.0]);
        set.record(&[99.0]);
        // sd = 1, se = 1/sqrt(3) ~ 0.577, mean 100 -> rse ~ 0.58%.
        assert!(set.meets_precision(0.05));
        assert!(set.worst_relative_error() < 0.01);
    }

    #[test]
    fn tight_and_loose_metrics_gate_together() {
        let mut set = ReplicationSet::new(vec!["tight", "loose"], 0.95);
        set.record(&[100.0, 1.0]);
        set.record(&[100.5, 3.0]);
        set.record(&[99.5, 5.0]);
        assert!(
            !set.meets_precision(0.05),
            "loose metric should fail the gate"
        );
        assert!(set.meets_precision(2.0));
    }
}
