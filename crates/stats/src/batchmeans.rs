//! Batch means: single-long-run steady-state estimation.
//!
//! The paper uses independent replications (see [`crate::replication`]);
//! the standard alternative is one long run whose observations are
//! grouped into batches large enough that batch averages are nearly
//! independent — then the usual t-interval applies to the batch means.
//! The workspace's ablation tests compare both estimators on the same
//! simulation output.

use crate::summary::SampleSummary;
use crate::welford::Welford;

/// Accumulates observations into fixed-size batches and summarizes the
/// batch means.
///
/// # Examples
///
/// ```
/// use lb_stats::BatchMeans;
/// let mut bm = BatchMeans::new(2);
/// for x in [1.0, 3.0, 5.0, 7.0] {
///     bm.push(x);
/// }
/// assert_eq!(bm.batches(), 2);
/// assert_eq!(bm.mean(), 4.0); // mean of batch means (2, 6)
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics for `batch_size == 0` (configuration error).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
            batch_means: Vec::new(),
        }
    }

    /// Adds one observation; closes the current batch when full.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            let mean = self.current.mean();
            self.batches.push(mean);
            self.batch_means.push(mean);
            self.current = Welford::new();
        }
    }

    /// Completed batches so far.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// The completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Observations in the (incomplete) current batch.
    pub fn pending(&self) -> u64 {
        self.current.count()
    }

    /// Grand mean over completed batches (`0` before the first batch).
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval over the batch means; `None` before the first
    /// completed batch or for an invalid level.
    pub fn summary(&self, confidence: f64) -> Option<SampleSummary> {
        SampleSummary::from_welford(&self.batches, confidence)
    }

    /// Lag-1 autocorrelation of the batch means — the standard check that
    /// batches are large enough (values near zero are good). `None` with
    /// fewer than three batches or zero variance.
    pub fn lag1_autocorrelation(&self) -> Option<f64> {
        let n = self.batch_means.len();
        if n < 3 {
            return None;
        }
        let mean = self.mean();
        let var: f64 = self
            .batch_means
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum();
        if var == 0.0 {
            return None;
        }
        let cov: f64 = self
            .batch_means
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        Some(cov / var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn batches_close_at_size() {
        let mut bm = BatchMeans::new(3);
        bm.push(1.0);
        bm.push(2.0);
        assert_eq!(bm.batches(), 0);
        assert_eq!(bm.pending(), 2);
        bm.push(3.0);
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.pending(), 0);
        assert_eq!(bm.batch_means(), &[2.0]);
        assert_eq!(bm.mean(), 2.0);
    }

    #[test]
    fn grand_mean_ignores_incomplete_batch() {
        let mut bm = BatchMeans::new(2);
        for x in [1.0, 3.0, 5.0, 7.0, 100.0] {
            bm.push(x);
        }
        // Batches: (1,3) -> 2, (5,7) -> 6; the 100.0 is pending.
        assert_eq!(bm.batches(), 2);
        assert_eq!(bm.mean(), 4.0);
        assert_eq!(bm.pending(), 1);
    }

    #[test]
    fn summary_uses_batch_count_degrees_of_freedom() {
        let mut bm = BatchMeans::new(10);
        for i in 0..50 {
            bm.push(f64::from(i % 10));
        }
        let s = bm.summary(0.95).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 4.5).abs() < 1e-12);
        // Every batch mean is identical: zero half-width.
        assert_eq!(s.half_width, 0.0);
    }

    #[test]
    fn autocorrelation_detects_trend_and_noise() {
        // Strong positive trend -> lag-1 autocorrelation near 1.
        let mut trended = BatchMeans::new(1);
        for i in 0..100 {
            trended.push(f64::from(i));
        }
        assert!(trended.lag1_autocorrelation().unwrap() > 0.9);

        // Alternating series -> strongly negative.
        let mut alt = BatchMeans::new(1);
        for i in 0..100 {
            alt.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!(alt.lag1_autocorrelation().unwrap() < -0.9);

        // Too few batches -> None.
        let mut few = BatchMeans::new(5);
        for i in 0..10 {
            few.push(f64::from(i));
        }
        assert_eq!(few.batches(), 2);
        assert!(few.lag1_autocorrelation().is_none());
    }

    #[test]
    fn agrees_with_plain_mean_for_exact_multiples() {
        let data: Vec<f64> = (0..120).map(|i| (f64::from(i) * 0.7).sin()).collect();
        let mut bm = BatchMeans::new(12);
        for &x in &data {
            bm.push(x);
        }
        let plain: f64 = data.iter().sum::<f64>() / data.len() as f64;
        assert!((bm.mean() - plain).abs() < 1e-12);
    }
}
