//! Sample summaries with Student-t confidence intervals.
//!
//! A [`SampleSummary`] condenses a set of replication results (or any
//! sample) into mean, deviation, a two-sided confidence interval, and the
//! *relative* standard error the paper's methodology bounds at 5%.

use crate::tdist::t_critical;
use crate::welford::Welford;

/// Summary statistics of a sample with a confidence interval on the mean.
///
/// # Examples
///
/// ```
/// use lb_stats::SampleSummary;
/// // Five replications, like the paper's methodology.
/// let s = SampleSummary::from_slice(&[9.0, 9.5, 10.0, 10.5, 11.0], 0.95).unwrap();
/// assert_eq!(s.mean, 10.0);
/// assert!(s.contains(10.0));
/// assert!(s.half_width > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Confidence half-width at the requested level (`0` for n < 2).
    pub half_width: f64,
    /// Confidence level the half-width was computed at (e.g. `0.95`).
    pub confidence: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl SampleSummary {
    /// Summarizes a slice at the given confidence level (e.g. `0.95`).
    ///
    /// Returns `None` for an empty sample or a confidence level outside
    /// `(0, 1)`.
    pub fn from_slice(data: &[f64], confidence: f64) -> Option<Self> {
        let w: Welford = data.iter().copied().collect();
        Self::from_welford(&w, confidence)
    }

    /// Summarizes an existing accumulator at the given confidence level.
    ///
    /// Returns `None` for an empty accumulator or an invalid level.
    pub fn from_welford(w: &Welford, confidence: f64) -> Option<Self> {
        if w.count() == 0 || !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
            return None;
        }
        let half_width = if w.count() >= 2 {
            let df = (w.count() - 1) as f64;
            t_critical(confidence, df) * w.std_error()
        } else {
            0.0
        };
        Some(Self {
            count: w.count(),
            mean: w.mean(),
            std_dev: w.sample_std_dev(),
            std_error: w.std_error(),
            half_width,
            confidence,
            min: w.min(),
            max: w.max(),
        })
    }

    /// Lower bound of the confidence interval on the mean.
    #[inline]
    pub fn ci_low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the confidence interval on the mean.
    #[inline]
    pub fn ci_high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative standard error `SE/|mean|`; `+∞` when the mean is zero but
    /// the error is not, `0` when both are zero.
    pub fn relative_std_error(&self) -> f64 {
        if self.mean == 0.0 {
            if self.std_error == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.std_error / self.mean.abs()
        }
    }

    /// Whether the sample meets the paper's precision criterion: relative
    /// standard error below `threshold` (the paper uses 5% at the 95%
    /// confidence level).
    pub fn meets_precision(&self, threshold: f64) -> bool {
        self.count >= 2 && self.relative_std_error() < threshold
    }

    /// Whether a hypothesized mean lies inside the confidence interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.ci_low() && value <= self.ci_high()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_invalid_inputs() {
        assert!(SampleSummary::from_slice(&[], 0.95).is_none());
        assert!(SampleSummary::from_slice(&[1.0], 0.0).is_none());
        assert!(SampleSummary::from_slice(&[1.0], 1.0).is_none());
    }

    #[test]
    fn single_observation_has_zero_half_width() {
        let s = SampleSummary::from_slice(&[4.2], 0.95).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 4.2);
        assert_eq!(s.half_width, 0.0);
        assert!(s.contains(4.2));
        assert!(!s.meets_precision(0.05));
    }

    #[test]
    fn five_replications_use_t4() {
        // Five replications, like the paper. Known sample: mean 10, sd 1.
        let data = [9.0, 9.5, 10.0, 10.5, 11.0];
        let s = SampleSummary::from_slice(&data, 0.95).unwrap();
        assert!((s.mean - 10.0).abs() < 1e-12);
        // Half width = t_{0.975,4} * s/sqrt(5) = 2.7764 * 0.790569/2.23607
        let expected = 2.7764 * s.std_dev / 5.0_f64.sqrt();
        assert!((s.half_width - expected).abs() < 1e-3);
        assert!(s.contains(10.0));
        assert!(!s.contains(12.0));
    }

    #[test]
    fn relative_std_error_matches_definition() {
        let data = [9.0, 11.0];
        let s = SampleSummary::from_slice(&data, 0.95).unwrap();
        // sd = sqrt(2), se = 1, mean = 10 -> rse = 0.1.
        assert!((s.relative_std_error() - 0.1).abs() < 1e-12);
        assert!(!s.meets_precision(0.05));
        assert!(s.meets_precision(0.2));
    }

    #[test]
    fn zero_mean_relative_error_edge_cases() {
        let s = SampleSummary::from_slice(&[0.0, 0.0, 0.0], 0.95).unwrap();
        assert_eq!(s.relative_std_error(), 0.0);
        let s = SampleSummary::from_slice(&[-1.0, 1.0], 0.95).unwrap();
        assert!(s.relative_std_error().is_infinite());
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s95 = SampleSummary::from_slice(&data, 0.95).unwrap();
        let s99 = SampleSummary::from_slice(&data, 0.99).unwrap();
        assert!(s99.half_width > s95.half_width);
        assert_eq!(s95.mean, s99.mean);
    }

    #[test]
    fn bounds_are_symmetric_about_mean() {
        let data = [2.0, 4.0, 6.0, 8.0];
        let s = SampleSummary::from_slice(&data, 0.9).unwrap();
        assert!(((s.ci_low() + s.ci_high()) / 2.0 - s.mean).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
    }
}
