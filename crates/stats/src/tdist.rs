//! Student-t distribution: CDF and quantiles, implemented from scratch.
//!
//! Confidence intervals on 5 replications (the paper's methodology) need
//! small-sample t quantiles (e.g. `t_{0.975, 4} ≈ 2.776`), not the normal
//! approximation. We compute the CDF through the regularized incomplete
//! beta function (Lanczos log-gamma + Lentz continued fraction, the
//! standard Numerical-Recipes construction) and invert it by bisection,
//! which is plenty fast for statistics-sized workloads.

/// Natural log of the gamma function via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 over the positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` using the continued
/// fraction expansion with Lentz's algorithm.
///
/// Returns `NaN` for arguments outside the domain (`x ∉ [0,1]` or
/// non-positive `a`, `b`).
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) || a <= 0.0 || b <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// Returns `NaN` for `df <= 0` or non-finite `t`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 || !t.is_finite() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of the Student-t distribution: the value `t` with
/// `P(T <= t) = p`, found by bisection.
///
/// Returns `NaN` unless `0 < p < 1` and `df > 0`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    if !(0.0..1.0).contains(&p) || p <= 0.0 || df <= 0.0 {
        return f64::NAN;
    }
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // Exploit symmetry: solve for the upper tail only.
    if p < 0.5 {
        return -t_quantile(1.0 - p, df);
    }
    // Bracket: t quantiles for p < 1 - 1e-12 and df >= 0.5 are far below 1e8.
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    while t_cdf(hi, df) < p && hi < 1e12 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided critical value for confidence level `confidence` (e.g. `0.95`)
/// with `df` degrees of freedom: `t_{1 − α/2, df}`.
///
/// Returns `NaN` unless `0 < confidence < 1` and `df > 0`.
pub fn t_critical(confidence: f64, df: f64) -> f64 {
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return f64::NAN;
    }
    t_quantile(1.0 - (1.0 - confidence) / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = Gamma(2) = 1; Gamma(5) = 24; Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Recurrence Gamma(x+1) = x Gamma(x) at a non-integer point.
        let x = 3.7;
        assert!((ln_gamma(x + 1.0) - (x.ln() + ln_gamma(x))).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        assert!(betai(2.0, 3.0, -0.1).is_nan());
        assert!(betai(-1.0, 3.0, 0.5).is_nan());
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = betai(2.5, 1.5, 0.3);
        let w = 1.0 - betai(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
        // I_x(1,1) = x (uniform distribution).
        assert!((betai(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        let p = t_cdf(1.3, 5.0);
        let q = t_cdf(-1.3, 5.0);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_df1_is_cauchy() {
        // For df = 1, CDF(t) = 1/2 + atan(t)/pi.
        for &t in &[-3.0_f64, -1.0, 0.5, 2.0, 10.0] {
            let expected = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((t_cdf(t, 1.0) - expected).abs() < 1e-10, "t = {t}");
        }
    }

    #[test]
    fn quantile_matches_tables() {
        // Standard t-table critical values.
        let cases = [
            (0.975, 4.0, 2.7764), // the paper's 5-replication case
            (0.975, 9.0, 2.2622),
            (0.95, 10.0, 1.8125),
            (0.995, 4.0, 4.6041),
            (0.975, 1.0, 12.7062),
            (0.975, 30.0, 2.0423),
        ];
        for (p, df, expected) in cases {
            let got = t_quantile(p, df);
            assert!(
                (got - expected).abs() < 2e-4,
                "t_{{{p},{df}}} = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn quantile_approaches_normal_for_large_df() {
        let z = t_quantile(0.975, 1e6);
        assert!((z - 1.959964).abs() < 1e-3, "z = {z}");
    }

    #[test]
    fn quantile_cdf_round_trip() {
        for &df in &[2.0, 5.0, 17.0] {
            for &p in &[0.01, 0.25, 0.5, 0.8, 0.99] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn invalid_arguments_yield_nan() {
        assert!(t_quantile(0.0, 5.0).is_nan());
        assert!(t_quantile(1.0, 5.0).is_nan());
        assert!(t_quantile(0.5, -1.0).is_nan());
        assert!(t_cdf(f64::NAN, 5.0).is_nan());
        assert!(t_cdf(1.0, 0.0).is_nan());
        assert!(t_critical(0.0, 5.0).is_nan());
        assert!(t_critical(1.5, 5.0).is_nan());
    }

    #[test]
    fn critical_value_is_two_sided() {
        assert!((t_critical(0.95, 4.0) - t_quantile(0.975, 4.0)).abs() < 1e-12);
    }
}
