//! Streaming quantile estimation with the P² algorithm (Jain &
//! Chlamtac 1985 — the same R. Jain as the fairness index).
//!
//! Response-time *tails* (p95/p99) matter to users at least as much as
//! means; storing millions of observations to sort them is wasteful. P²
//! maintains five markers whose heights approximate the target quantile
//! with O(1) memory, adjusting marker positions by parabolic
//! interpolation.

/// Streaming estimator of a single quantile `p ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use lb_stats::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.push(f64::from(i));
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 501.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
    /// First five observations, used for initialization.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` (configuration error).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find the cell k containing x and clamp extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. Before five observations it falls back
    /// to the exact order statistic of the seen values; `None` if empty.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let idx = ((sorted.len() as f64 - 1.0) * self.p).round() as usize;
            return Some(sorted[idx]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn empty_and_small_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        // Median of {1,2,3} is 2.
        assert_eq!(q.estimate(), Some(2.0));
        assert_eq!(q.count(), 3);
    }

    /// Deterministic uniform pseudo-random stream.
    fn stream(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut q = P2Quantile::new(0.5);
        let mut rnd = stream(42);
        for _ in 0..100_000 {
            q.push(rnd());
        }
        let m = q.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.01, "median estimate {m}");
    }

    #[test]
    fn p95_of_exponential_converges() {
        // Exponential(1): p95 = -ln(0.05) ~ 2.9957.
        let mut q = P2Quantile::new(0.95);
        let mut rnd = stream(7);
        for _ in 0..200_000 {
            q.push(-(1.0f64 - rnd()).ln());
        }
        let est = q.estimate().unwrap();
        let exact = -(0.05f64).ln();
        assert!(
            (est - exact).abs() / exact < 0.03,
            "p95 estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn tracks_exact_quantile_on_a_permutation() {
        // Feed 1..=1001 shuffled deterministically; p25 ≈ 250.
        let mut values: Vec<f64> = (1..=1001).map(f64::from).collect();
        let mut rnd = stream(99);
        for i in (1..values.len()).rev() {
            let j = (rnd() * (i + 1) as f64) as usize;
            values.swap(i, j);
        }
        let mut q = P2Quantile::new(0.25);
        for v in values {
            q.push(v);
        }
        let est = q.estimate().unwrap();
        assert!((est - 250.0).abs() < 15.0, "p25 estimate {est}");
    }

    #[test]
    fn different_quantiles_are_ordered() {
        let mut q10 = P2Quantile::new(0.10);
        let mut q50 = P2Quantile::new(0.50);
        let mut q90 = P2Quantile::new(0.90);
        let mut rnd = stream(5);
        for _ in 0..50_000 {
            let x = rnd() * rnd(); // skewed
            q10.push(x);
            q50.push(x);
            q90.push(x);
        }
        let (a, b, c) = (
            q10.estimate().unwrap(),
            q50.estimate().unwrap(),
            q90.estimate().unwrap(),
        );
        assert!(a < b && b < c, "quantiles out of order: {a} {b} {c}");
    }
}
