//! Welford's online algorithm for streaming mean and variance.
//!
//! The simulator observes millions of job response times per run (the paper
//! generates 1–2 million jobs per replication); storing them is wasteful and
//! naive sum-of-squares accumulation loses precision. Welford's update is
//! single-pass, O(1) memory, and numerically stable.

/// Streaming accumulator for count, mean, variance, min and max.
///
/// # Examples
///
/// ```
/// use lb_stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al.'s parallel
    /// combination rule), enabling per-thread accumulation.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (divides by `n − 1`); `0` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`; `0` for fewer than two
    /// observations.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+∞` when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations (`mean · n`).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        assert!(w.min().is_infinite());
        assert!(w.max().is_infinite());
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
        assert_eq!(w.sum(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let w: Welford = data.iter().copied().collect();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn numerically_stable_with_large_offsets() {
        // Classic catastrophic-cancellation case: variance of values near 1e9.
        let data = [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0];
        let w: Welford = data.iter().copied().collect();
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!(
            (w.sample_variance() - 30.0).abs() < 1e-6,
            "var = {}",
            w.sample_variance()
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sqrt()).collect();
        let all: Welford = data.iter().copied().collect();
        let mut a: Welford = data[..70].iter().copied().collect();
        let b: Welford = data[70..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = [1.0, 2.0, 3.0];
        let mut w: Welford = data.iter().copied().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut w = Welford::new();
        for i in 0..100 {
            w.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let se100 = w.std_error();
        for i in 0..9900 {
            w.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let se10000 = w.std_error();
        assert!(se10000 < se100 / 5.0);
    }
}
