//! Fixed-bin histograms for response-time distributions.
//!
//! Used by the simulation layer to sanity-check that empirical sojourn
//! times are exponential-shaped (the M/M/1 prediction) and by the examples
//! to print compact ASCII distributions.

/// A histogram with uniform bins over `[low, high)` plus overflow/underflow
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` uniform bins.
    ///
    /// Returns `None` when `bins == 0`, the bounds are non-finite, or
    /// `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !low.is_finite() || !high.is_finite() || low >= high {
            return None;
        }
        Some(Self {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            // Guard the upper edge against floating-point round-up.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[start, end)` interval covered by bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + width * i as f64,
            self.low + width * (i + 1) as f64,
        )
    }

    /// Fraction of in-range mass at or below the end of bin `i` (empirical
    /// CDF evaluated at bin edges). Returns `0` when nothing is in range.
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }

    /// Renders a compact ASCII bar chart (one line per bin), used by the
    /// examples. `width` is the maximum bar length in characters.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "[{lo:9.4}, {hi:9.4}) {:>8} {}\n",
                c,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn routes_observations_to_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.5); // bin 0
        h.record(9.99); // bin 9
        h.record(5.0); // bin 5
        h.record(-1.0); // underflow
        h.record(10.0); // overflow (upper bound exclusive)
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn bin_ranges_tile_the_interval() {
        let h = Histogram::new(2.0, 6.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (2.0, 3.0));
        assert_eq!(h.bin_range(3), (5.0, 6.0));
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for x in [0.5, 1.5, 1.6, 2.5, 3.5, 3.6] {
            h.record(x);
        }
        let mut prev = 0.0;
        for i in 0..4 {
            let c = h.cdf_at_bin(i);
            assert!(c >= prev);
            prev = c;
        }
        assert!((h.cdf_at_bin(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.cdf_at_bin(2), 0.0);
    }

    #[test]
    fn ascii_renders_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.record(0.1);
        h.record(0.2);
        h.record(1.5);
        let s = h.ascii(10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }
}
