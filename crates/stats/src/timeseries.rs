//! Iteration traces — the data behind the paper's Figure 2 (norm vs
//! number of iterations).
//!
//! The NASH algorithm emits one scalar per iteration (the convergence norm
//! `Σ_j |D_j^{(l)} − D_j^{(l−1)}|`). [`IterationTrace`] stores such a
//! series with convenience queries used by the experiments and tests:
//! first index under a threshold, monotonicity diagnostics, and geometric
//! decay-rate estimation.

/// A per-iteration scalar series (e.g. a convergence norm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationTrace {
    values: Vec<f64>,
}

impl IterationTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the value observed at the next iteration.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// First iteration index (0-based) whose value is `<= threshold`;
    /// `None` if the series never reaches it.
    pub fn first_below(&self, threshold: f64) -> Option<usize> {
        self.values.iter().position(|&v| v <= threshold)
    }

    /// Number of adjacent pairs where the series *increased* — a rough
    /// non-monotonicity diagnostic for best-reply dynamics.
    pub fn increases(&self) -> usize {
        self.values.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Least-squares estimate of the geometric decay rate `r` fitting
    /// `v_k ≈ v_0 · r^k` over the strictly positive entries (log-linear
    /// regression). `None` with fewer than two positive entries.
    pub fn geometric_rate(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, &v)| (i as f64, v.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-300 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(slope.exp())
    }
}

impl FromIterator<f64> for IterationTrace {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = IterationTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
        t.push(3.0);
        t.push(1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.last(), Some(1.0));
        assert_eq!(t.values(), &[3.0, 1.0]);
    }

    #[test]
    fn first_below_finds_threshold_crossing() {
        let t: IterationTrace = [8.0, 4.0, 2.0, 1.0, 0.5].into_iter().collect();
        assert_eq!(t.first_below(2.0), Some(2));
        assert_eq!(t.first_below(0.5), Some(4));
        assert_eq!(t.first_below(0.1), None);
        assert_eq!(t.first_below(100.0), Some(0));
    }

    #[test]
    fn increases_counts_non_monotone_steps() {
        let t: IterationTrace = [5.0, 3.0, 4.0, 2.0, 2.0].into_iter().collect();
        assert_eq!(t.increases(), 1);
        let mono: IterationTrace = [5.0, 4.0, 3.0].into_iter().collect();
        assert_eq!(mono.increases(), 0);
    }

    #[test]
    fn geometric_rate_recovers_exact_decay() {
        let t: IterationTrace = (0..20).map(|k| 10.0 * 0.5_f64.powi(k)).collect();
        let r = t.geometric_rate().unwrap();
        assert!((r - 0.5).abs() < 1e-9, "rate = {r}");
    }

    #[test]
    fn geometric_rate_skips_zeros_and_needs_two_points() {
        let t: IterationTrace = [4.0, 0.0, 1.0].into_iter().collect();
        assert!(t.geometric_rate().is_some());
        let t: IterationTrace = [4.0].into_iter().collect();
        assert!(t.geometric_rate().is_none());
        let t: IterationTrace = [0.0, 0.0].into_iter().collect();
        assert!(t.geometric_rate().is_none());
    }
}
