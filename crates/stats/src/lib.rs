//! # lb-stats — statistics substrate
//!
//! The paper's evaluation methodology (§4.1): each simulation is replicated
//! five times with different random-number streams, results are averaged
//! over replications, and the standard error is kept below 5% at the 95%
//! confidence level. Its headline fairness metric is **Jain's fairness
//! index** (Jain, Chiu & Hawe, DEC-TR-301, 1984).
//!
//! This crate implements that methodology from scratch:
//!
//! * [`welford`] — numerically stable online mean/variance accumulation.
//! * [`tdist`] — Student-t quantiles (needed for small-sample confidence
//!   intervals with 5 replications).
//! * [`summary`] — sample summaries with confidence intervals and relative
//!   standard error.
//! * [`fairness`] — Jain's fairness index.
//! * [`replication`] — the replicate-until-precise driver.
//! * [`batchmeans`] — the single-long-run alternative (batch means with a
//!   lag-1 autocorrelation diagnostic), used in methodology ablations.
//! * [`histogram`] — fixed-bin histograms for sojourn-time distributions.
//! * [`quantile`] — O(1)-memory streaming quantiles (P² algorithm) for
//!   response-time tails.
//! * [`timeseries`] — iteration traces (used for the paper's Figure 2 norm
//!   curves).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batchmeans;
pub mod fairness;
pub mod histogram;
pub mod quantile;
pub mod replication;
pub mod summary;
pub mod tdist;
pub mod timeseries;
pub mod welford;

pub use batchmeans::BatchMeans;
pub use fairness::jain_index;
pub use quantile::P2Quantile;
pub use replication::{ReplicationPlan, ReplicationSet};
pub use summary::SampleSummary;
pub use timeseries::IterationTrace;
pub use welford::Welford;
