//! Jain's fairness index (Jain, Chiu & Hawe 1984) — the paper's fairness
//! metric for load-balancing schemes.
//!
//! For per-user expected execution times `D = (D_1 … D_m)`:
//!
//! ```text
//! I(D) = (Σ_j D_j)² / (m · Σ_j D_j²)
//! ```
//!
//! `I = 1` iff all users receive identical expected times (perfectly fair);
//! the minimum `1/m` is reached when one user absorbs everything. The paper
//! reports PS and IOS at exactly 1, NASH close to 1, and GOS degrading to
//! ≈ 0.92 at high load.

/// Computes Jain's fairness index of a slice of non-negative values.
///
/// Returns `None` for an empty slice, any negative or non-finite component,
/// or an all-zero vector (the index is undefined there).
///
/// # Examples
///
/// ```
/// use lb_stats::jain_index;
/// assert_eq!(jain_index(&[2.0, 2.0, 2.0]), Some(1.0));
/// let skewed = jain_index(&[1.0, 0.0, 0.0]).unwrap();
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in values {
        if !v.is_finite() || v < 0.0 {
            return None;
        }
        sum += v;
        sum_sq += v * v;
    }
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (values.len() as f64 * sum_sq))
}

/// Fairness of the *worst-off* user relative to the average:
/// `min_j D_j / mean(D)` for a cost metric inverted as `mean(D) / max_j D_j`.
///
/// This complements Jain's index in ablation reports: Jain aggregates the
/// spread, while this ratio exposes the single most-penalized user. Values
/// near 1 mean nobody is much worse than average. Returns `None` under the
/// same conditions as [`jain_index`].
pub fn worst_case_ratio(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    for &v in values {
        if !v.is_finite() || v < 0.0 {
            return None;
        }
        sum += v;
        max = max.max(v);
    }
    if max == 0.0 {
        return None;
    }
    Some(sum / (values.len() as f64 * max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_perfectly_fair() {
        assert_eq!(jain_index(&[5.0]), Some(1.0));
        assert_eq!(jain_index(&[3.0, 3.0, 3.0, 3.0]), Some(1.0));
        assert_eq!(worst_case_ratio(&[3.0, 3.0]), Some(1.0));
    }

    #[test]
    fn single_dominator_gives_one_over_m() {
        let idx = jain_index(&[7.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((idx - 0.2).abs() < 1e-12);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn index_bounded_between_one_over_m_and_one() {
        let vals = [0.3, 1.7, 2.2, 0.9, 4.4];
        let idx = jain_index(&vals).unwrap();
        assert!(idx > 1.0 / vals.len() as f64);
        assert!(idx <= 1.0);
    }

    #[test]
    fn known_textbook_value() {
        // Jain's original example: throughputs (1, 2, 3) -> 36/(3*14) = 6/7.
        let idx = jain_index(&[1.0, 2.0, 3.0]).unwrap();
        assert!((idx - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases_return_none() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
        assert_eq!(jain_index(&[1.0, -1.0]), None);
        assert_eq!(jain_index(&[1.0, f64::NAN]), None);
        assert_eq!(jain_index(&[1.0, f64::INFINITY]), None);
        assert_eq!(worst_case_ratio(&[]), None);
        assert_eq!(worst_case_ratio(&[0.0]), None);
        assert_eq!(worst_case_ratio(&[-2.0]), None);
    }

    #[test]
    fn worst_case_ratio_flags_outlier() {
        // One user 4x the average of the others.
        let r = worst_case_ratio(&[1.0, 1.0, 1.0, 8.0]).unwrap();
        assert!(r < 0.5);
        let fair = worst_case_ratio(&[1.0, 1.1, 0.9]).unwrap();
        assert!(fair > 0.85);
    }

    #[test]
    fn more_spread_lowers_jain() {
        let tight = jain_index(&[1.0, 1.1, 0.9]).unwrap();
        let loose = jain_index(&[1.0, 2.0, 0.1]).unwrap();
        assert!(tight > loose);
    }
}
