//! Model-based property test: the event calendar against a reference
//! implementation (a `BTreeMap` keyed on `(time, seq)`), under random
//! interleavings of schedule / cancel / pop operations.

use lb_des::calendar::{Calendar, EventId};
use lb_des::time::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Operations the fuzzer can apply.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at the given (quantized) time.
    Schedule(u32),
    /// Cancel the k-th still-live handle (mod live count).
    Cancel(usize),
    /// Pop the earliest event.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..1000).prop_map(Op::Schedule),
        1 => (0usize..64).prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

/// Reference model: ordered map from (time, insertion order) to payload.
#[derive(Default)]
struct Reference {
    entries: BTreeMap<(u64, u64), u64>,
    next_seq: u64,
}

impl Reference {
    fn schedule(&mut self, time: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert((time, seq), seq);
        seq
    }

    fn cancel(&mut self, time: u64, seq: u64) -> bool {
        self.entries.remove(&(time, seq)).is_some()
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let key = *self.entries.keys().next()?;
        self.entries.remove(&key);
        Some(key)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_matches_btreemap_reference(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut cal: Calendar<u64> = Calendar::new();
        let mut reference = Reference::default();
        // Live handles: (id, time, seq).
        let mut live: Vec<(EventId, u64, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let t = u64::from(t);
                    let seq = reference.schedule(t);
                    let id = cal.schedule(SimTime::new(t as f64), seq);
                    live.push((id, t, seq));
                }
                Op::Cancel(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, t, seq) = live.remove(k % live.len());
                    let a = cal.cancel(id);
                    let b = reference.cancel(t, seq);
                    prop_assert_eq!(a, b, "cancel outcome diverged");
                }
                Op::Pop => {
                    let got = cal.pop();
                    let expected = reference.pop();
                    match (got, expected) {
                        (None, None) => {}
                        (Some((time, payload)), Some((t, seq))) => {
                            prop_assert_eq!(time.as_secs(), t as f64);
                            prop_assert_eq!(payload, seq);
                            live.retain(|&(_, _, s)| s != seq);
                        }
                        other => prop_assert!(false, "pop diverged: {:?}", other),
                    }
                }
            }
        }

        // Drain both to the end: remaining sequences must match exactly.
        loop {
            let got = cal.pop();
            let expected = reference.pop();
            match (got, expected) {
                (None, None) => break,
                (Some((time, payload)), Some((t, seq))) => {
                    prop_assert_eq!(time.as_secs(), t as f64);
                    prop_assert_eq!(payload, seq);
                }
                other => prop_assert!(false, "drain diverged: {:?}", other),
            }
        }
    }

    #[test]
    fn pops_are_globally_sorted(times in prop::collection::vec(0u32..10_000, 1..500)) {
        let mut cal = Calendar::new();
        for &t in &times {
            cal.schedule(SimTime::new(f64::from(t)), t);
        }
        let mut prev = -1.0f64;
        let mut count = 0;
        while let Some((time, _)) = cal.pop() {
            prop_assert!(time.as_secs() >= prev);
            prev = time.as_secs();
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
