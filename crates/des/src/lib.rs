//! # lb-des — discrete-event simulation engine
//!
//! The paper's evaluation (§4.1) was "carried out using Sim++, a simulation
//! software package written in C++ \[which\] provides an application
//! programming interface … related to event scheduling, queueing, preemption
//! and random number generation". Sim++ is long gone; this crate is a from-
//! scratch replacement providing the same facilities:
//!
//! * [`time`] — the simulation clock type [`time::SimTime`].
//! * [`calendar`] — the future-event list: a pending-event binary heap with
//!   deterministic FIFO tie-breaking and cancellation tombstones.
//! * [`engine`] — the event loop: schedule / cancel / advance, with run
//!   bounds on time and event count.
//! * [`rng`] — reproducible per-entity random streams (seeded from a master
//!   seed) and the service/interarrival distributions the experiments use
//!   (exponential for M/M/1, plus Erlang, hyperexponential and
//!   deterministic for sensitivity extensions).
//! * [`station`] — a single-server FCFS run-to-completion station (the
//!   paper's computer model) with run-queue-length observation.
//! * [`shard`] — a per-station event shard: one small calendar per
//!   station with batched arrival generation and alias-table user
//!   attribution, the building block of the parallel sharded simulator.
//! * [`multiserver`] — a c-server FCFS pool (M/M/c) for the multicore
//!   extension.
//! * [`source`] — a Markov-modulated Poisson source (MMPP-2) producing
//!   *correlated* bursty arrivals for the traffic-model extensions.
//! * [`monitor`] — warmup-aware response-time, queue-length and goodput
//!   collectors.
//! * [`breakdown`] — server breakdown/repair processes (exponential
//!   MTBF/MTTR) and capped-exponential retry backoff for jobs preempted
//!   by a crash.
//!
//! The model-specific wiring (Poisson users dispatching probabilistically
//! over a bank of stations) lives in `lb-sim`; this crate stays generic.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod breakdown;
pub mod calendar;
pub mod engine;
pub mod monitor;
pub mod multiserver;
pub mod rng;
pub mod shard;
pub mod source;
pub mod station;
pub mod time;

pub use breakdown::{BreakdownProcess, RetryBackoff};
pub use calendar::{Calendar, EventId};
pub use engine::{Engine, ScheduleError};
pub use monitor::{GoodputMonitor, QueueLengthMonitor, ResponseTimeMonitor};
pub use multiserver::MultiServerStation;
pub use rng::{AliasTable, Distribution, RngStream, SampleBlock};
pub use shard::{run_station_shard, ShardOutcome, ShardSpec, DEFAULT_SHARD_BATCH};
pub use source::MmppSource;
pub use station::{FcfsStation, Job};
pub use time::SimTime;
