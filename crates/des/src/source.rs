//! Arrival-process generators.
//!
//! The paper's users emit Poisson streams; the renewal generalization
//! lives in `lb-sim` (i.i.d. interarrivals of any
//! [`crate::rng::Distribution`]). This module adds the genuinely
//! non-renewal case: a **two-state Markov-modulated Poisson process**
//! (MMPP-2), which produces *correlated* arrivals — quiet phases and
//! bursts — while holding the long-run rate fixed. MMPPs are the
//! standard parsimonious model for bursty traffic.

use crate::rng::RngStream;

/// A two-state MMPP arrival source.
///
/// # Examples
///
/// ```
/// use lb_des::{MmppSource, RngStream};
/// let mut src = MmppSource::balanced(5.0, 1.8, 2.0, RngStream::new(1, 0));
/// assert!((src.mean_rate() - 5.0).abs() < 1e-12);
/// let dt = src.next_interarrival();
/// assert!(dt >= 0.0);
/// ```
///
/// The modulating chain alternates between state 0 (quiet, Poisson rate
/// `rate[0]`) and state 1 (burst, rate `rate[1]`), with exponential
/// sojourns of rates `switch[s]` out of state `s`. The long-run arrival
/// rate is `π₀ rate₀ + π₁ rate₁` with `π₀ = switch₁ / (switch₀ + switch₁)`.
#[derive(Debug, Clone)]
pub struct MmppSource {
    rate: [f64; 2],
    switch: [f64; 2],
    state: usize,
    rng: RngStream,
}

impl MmppSource {
    /// Creates an MMPP with explicit per-state arrival and switching
    /// rates, starting in the quiet state.
    ///
    /// # Panics
    ///
    /// Panics on negative/non-finite arrival rates or non-positive
    /// switching rates (configuration errors).
    pub fn new(rate: [f64; 2], switch: [f64; 2], rng: RngStream) -> Self {
        for r in rate {
            assert!(r.is_finite() && r >= 0.0, "invalid MMPP arrival rate {r}");
        }
        for r in switch {
            assert!(r.is_finite() && r > 0.0, "invalid MMPP switch rate {r}");
        }
        assert!(
            rate[0] > 0.0 || rate[1] > 0.0,
            "MMPP must generate arrivals in some state"
        );
        Self {
            rate,
            switch,
            state: 0,
            rng,
        }
    }

    /// A symmetric-sojourn MMPP with long-run rate `mean_rate`: the burst
    /// state runs at `burst_factor × mean_rate` and the quiet state at
    /// whatever keeps the average right; both sojourns last
    /// `mean_sojourn` on average. `burst_factor ∈ [1, 2)` (the two states
    /// spend equal time, so the burst state cannot carry more than twice
    /// the average).
    ///
    /// # Panics
    ///
    /// Panics for parameters outside the valid ranges.
    pub fn balanced(mean_rate: f64, burst_factor: f64, mean_sojourn: f64, rng: RngStream) -> Self {
        assert!(
            mean_rate.is_finite() && mean_rate > 0.0,
            "mean rate must be positive"
        );
        assert!(
            (1.0..2.0).contains(&burst_factor),
            "burst factor must be in [1, 2), got {burst_factor}"
        );
        assert!(
            mean_sojourn.is_finite() && mean_sojourn > 0.0,
            "mean sojourn must be positive"
        );
        let burst = burst_factor * mean_rate;
        let quiet = (2.0 - burst_factor) * mean_rate;
        let s = 1.0 / mean_sojourn;
        Self::new([quiet, burst], [s, s], rng)
    }

    /// Long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        let pi0 = self.switch[1] / (self.switch[0] + self.switch[1]);
        pi0 * self.rate[0] + (1.0 - pi0) * self.rate[1]
    }

    /// Current modulating state (0 = quiet, 1 = burst).
    pub fn state(&self) -> usize {
        self.state
    }

    /// Time until the next arrival, advancing the modulating chain as
    /// needed (competing exponentials: arrival vs state switch).
    pub fn next_interarrival(&mut self) -> f64 {
        let mut elapsed = 0.0;
        loop {
            let lam = self.rate[self.state];
            let sw = self.switch[self.state];
            let t_switch = self.rng.exponential(sw);
            if lam > 0.0 {
                let t_arrival = self.rng.exponential(lam);
                if t_arrival < t_switch {
                    return elapsed + t_arrival;
                }
            }
            elapsed += t_switch;
            self.state = 1 - self.state;
        }
    }

    /// Fills `out` with consecutive interarrival times, consuming exactly
    /// the same draws (and advancing the modulating chain exactly as) the
    /// equivalent sequence of [`MmppSource::next_interarrival`] calls —
    /// the block form amortizes per-call overhead in batched event
    /// generation without changing the stream.
    pub fn fill_interarrivals(&mut self, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.next_interarrival();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> RngStream {
        RngStream::new(seed, 0)
    }

    #[test]
    #[should_panic(expected = "switch rate")]
    fn rejects_zero_switch_rate() {
        let _ = MmppSource::new([1.0, 2.0], [0.0, 1.0], rng(0));
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn rejects_out_of_range_burst_factor() {
        let _ = MmppSource::balanced(1.0, 2.5, 1.0, rng(0));
    }

    #[test]
    fn balanced_construction_hits_the_mean_rate() {
        let src = MmppSource::balanced(5.0, 1.8, 2.0, rng(1));
        assert!((src.mean_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_rate_matches_long_run_mean() {
        let mut src = MmppSource::balanced(4.0, 1.9, 0.5, rng(7));
        let n = 200_000;
        let total: f64 = (0..n).map(|_| src.next_interarrival()).sum();
        let rate = n as f64 / total;
        assert!(
            (rate - 4.0).abs() < 0.05,
            "empirical rate {rate}, expected 4.0"
        );
    }

    #[test]
    fn degenerate_mmpp_is_poisson() {
        // Equal rates in both states: interarrivals are Exp(rate).
        let mut src = MmppSource::new([3.0, 3.0], [1.0, 1.0], rng(5));
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| src.next_interarrival()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 1.0 / 3.0).abs() < 0.01);
        // Exponential: variance = mean^2.
        assert!(
            (var / (mean * mean) - 1.0).abs() < 0.05,
            "SCV {}",
            var / (mean * mean)
        );
    }

    #[test]
    fn bursty_mmpp_is_overdispersed() {
        // Index of dispersion of counts in windows: Poisson = 1; a bursty
        // MMPP with long sojourns must exceed it clearly.
        let window = 4.0;
        let count_dispersion = |src: &mut MmppSource| {
            let mut counts = Vec::new();
            let mut now = 0.0;
            let mut next = src.next_interarrival();
            for _ in 0..4000 {
                let end = now + window;
                let mut c = 0u32;
                while now + next < end {
                    now += next;
                    next = src.next_interarrival();
                    c += 1;
                }
                next -= end - now;
                now = end;
                counts.push(f64::from(c));
            }
            let n = counts.len() as f64;
            let mean: f64 = counts.iter().sum::<f64>() / n;
            let var: f64 = counts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            var / mean
        };
        let mut bursty = MmppSource::balanced(5.0, 1.9, 8.0, rng(11));
        let mut poissonish = MmppSource::new([5.0, 5.0], [1.0, 1.0], rng(11));
        let d_bursty = count_dispersion(&mut bursty);
        let d_poisson = count_dispersion(&mut poissonish);
        assert!(
            d_bursty > 1.5,
            "bursty dispersion {d_bursty} should exceed Poisson's 1"
        );
        assert!(
            (d_poisson - 1.0).abs() < 0.15,
            "degenerate dispersion {d_poisson} should be ~1"
        );
    }

    #[test]
    fn block_interarrivals_match_repeated_calls_bitwise() {
        let mut seq = MmppSource::balanced(5.0, 1.8, 2.0, rng(13));
        let mut blk = seq.clone();
        let one: Vec<u64> = (0..300)
            .map(|_| seq.next_interarrival().to_bits())
            .collect();
        let mut buf = vec![0.0; 300];
        blk.fill_interarrivals(&mut buf);
        let bulk: Vec<u64> = buf.iter().map(|x| x.to_bits()).collect();
        assert_eq!(one, bulk);
        assert_eq!(seq.state(), blk.state());
    }

    #[test]
    fn quiet_state_with_zero_rate_is_allowed() {
        // Interrupted Poisson process: no arrivals in state 0.
        let mut src = MmppSource::new([0.0, 10.0], [1.0, 1.0], rng(3));
        for _ in 0..1000 {
            let t = src.next_interarrival();
            assert!(t.is_finite() && t >= 0.0);
        }
        assert!((src.mean_rate() - 5.0).abs() < 1e-12);
    }
}
