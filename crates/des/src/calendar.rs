//! The future-event list (pending-event set).
//!
//! A binary min-heap keyed on `(time, sequence)`: events at equal times pop
//! in scheduling (FIFO) order, which makes whole simulations deterministic
//! for a fixed seed — a property the replication methodology depends on.
//! Cancellation is handled with a tombstone set, the standard lazy-deletion
//! technique: O(1) cancel, skipped at pop time.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Internal heap entry. Ordered so the `BinaryHeap` (a max-heap) pops the
/// *earliest* `(time, seq)` first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest sequence) is "greatest".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event list: schedule events for simulated times, pop them in
/// chronological order, cancel by [`EventId`].
///
/// # Examples
///
/// ```
/// use lb_des::{Calendar, SimTime};
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "late");
/// let id = cal.schedule(SimTime::new(1.0), "early");
/// assert_eq!(cal.peek_time(), Some(SimTime::new(1.0)));
/// cal.cancel(id);
/// assert_eq!(cal.pop(), Some((SimTime::new(2.0), "late")));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    compactions: u64,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            compactions: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`; returns a handle for
    /// cancellation.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Bulk-schedules a block of events in one call, amortizing the
    /// per-call bookkeeping of [`Calendar::schedule`] across the whole
    /// block (the heap is extended in a single pass). Sequence numbers
    /// are assigned in iteration order, so equal-time entries within the
    /// block still pop FIFO. Returns the number of entries scheduled.
    ///
    /// Batch entries are not individually cancellable (no [`EventId`]s
    /// are returned); use [`Calendar::schedule`] for events that may be
    /// cancelled.
    pub fn schedule_batch<I: IntoIterator<Item = (SimTime, E)>>(&mut self, events: I) -> usize {
        let heap = &mut self.heap;
        let next_seq = &mut self.next_seq;
        let before = heap.len();
        heap.extend(events.into_iter().map(|(time, payload)| {
            let seq = *next_seq;
            *next_seq += 1;
            Entry { time, seq, payload }
        }));
        heap.len() - before
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending (not yet popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id is pending iff it was issued and is still somewhere in the
        // heap; we cannot cheaply test heap membership, so we record the
        // tombstone and report whether it was fresh and plausible.
        if id.0 >= self.next_seq {
            return false;
        }
        let fresh = self.cancelled.insert(id.0);
        // Without compaction, tombstones (and the cancelled payloads deep
        // in the heap) accumulate for the whole run: a tombstone for an
        // already-popped id can never be matched and would live forever.
        // Rebuilding once tombstones exceed half the heap keeps both
        // structures O(live events) at amortized O(1) per cancel.
        if fresh && self.cancelled.len() > self.heap.len() / 2 {
            self.compact();
        }
        fresh
    }

    /// Rebuilds the heap without cancelled entries and drops every
    /// tombstone (any that found no heap entry referred to an
    /// already-popped id and is stale by construction). Afterwards
    /// [`Calendar::len_upper_bound`] is exact.
    fn compact(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|e| !self.cancelled.remove(&e.seq))
            .collect();
        self.cancelled.clear();
        self.compactions += 1;
    }

    /// Removes cancelled entries from the top of the heap.
    fn skip_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Time of the next (non-cancelled) event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_tombstones();
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of entries currently stored, *including* not-yet-skipped
    /// tombstoned ones (an upper bound on pending events). Exact —
    /// i.e. equal to the number of pending events — immediately after a
    /// compaction, which runs whenever tombstones outnumber half the
    /// heap, so the bound is never off by more than `len_upper_bound / 2`.
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// Number of tombstones currently buffered (diagnostic; bounded by
    /// `len_upper_bound / 2` thanks to compaction).
    pub fn tombstone_count(&self) -> usize {
        self.cancelled.len()
    }

    /// Number of tombstone-triggered heap rebuilds so far (diagnostic;
    /// surfaced through the telemetry layer as `des.compact` events).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether no pending (non-cancelled) events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_chronological_order() {
        let mut cal = Calendar::new();
        cal.schedule(t(3.0), 'c');
        cal.schedule(t(1.0), 'a');
        cal.schedule(t(2.0), 'b');
        assert_eq!(cal.pop(), Some((t(1.0), 'a')));
        assert_eq!(cal.pop(), Some((t(2.0), 'b')));
        assert_eq!(cal.pop(), Some((t(3.0), 'c')));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut cal = Calendar::new();
        for i in 0..10 {
            cal.schedule(t(5.0), i);
        }
        for i in 0..10 {
            assert_eq!(cal.pop(), Some((t(5.0), i)));
        }
    }

    #[test]
    fn batch_scheduling_matches_one_at_a_time() {
        let times = [3.0, 1.0, 2.0, 1.0, 5.0, 1.0];
        let mut one = Calendar::new();
        for (i, x) in times.iter().enumerate() {
            one.schedule(t(*x), i);
        }
        let mut bulk = Calendar::new();
        let n = bulk.schedule_batch(times.iter().enumerate().map(|(i, x)| (t(*x), i)));
        assert_eq!(n, times.len());
        loop {
            let (a, b) = (one.pop(), bulk.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn batch_then_single_scheduling_keeps_fifo_ties() {
        let mut cal = Calendar::new();
        cal.schedule_batch([(t(1.0), 0), (t(1.0), 1)]);
        cal.schedule(t(1.0), 2);
        for i in 0..3 {
            assert_eq!(cal.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn cancellation_removes_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), "a");
        cal.schedule(t(2.0), "b");
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pop(), Some((t(2.0), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), "a");
        cal.schedule(t(2.0), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(t(2.0)));
        assert!(!cal.is_empty());
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), 10);
        cal.schedule(t(1.0), 1);
        assert_eq!(cal.pop(), Some((t(1.0), 1)));
        cal.schedule(t(5.0), 5);
        cal.schedule(t(2.0), 2);
        assert_eq!(cal.pop(), Some((t(2.0), 2)));
        assert_eq!(cal.pop(), Some((t(5.0), 5)));
        assert_eq!(cal.pop(), Some((t(10.0), 10)));
    }

    #[test]
    fn mass_cancellation_compacts_the_heap() {
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..1000).map(|i| cal.schedule(t(i as f64), i)).collect();
        // Cancel the first 501 events. The 501st tombstone exceeds half
        // the heap (501 > 1000/2) and triggers a rebuild; throughout, the
        // tombstone set stays bounded by half the heap.
        for id in &ids[..501] {
            assert!(cal.cancel(*id));
            assert!(
                cal.tombstone_count() <= cal.len_upper_bound() / 2,
                "{} tombstones vs {} entries",
                cal.tombstone_count(),
                cal.len_upper_bound()
            );
        }
        assert_eq!(cal.len_upper_bound(), 499, "bound exact after compaction");
        assert_eq!(cal.tombstone_count(), 0, "tombstones flushed");
        // The survivors still pop in chronological order.
        for i in 501..1000 {
            assert_eq!(cal.pop(), Some((t(i as f64), i)));
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn stale_tombstones_for_popped_events_do_not_leak() {
        // Cancelling an already-popped id leaves a tombstone that can
        // never match a heap entry; compaction must reclaim it instead of
        // letting the set grow for the lifetime of the calendar.
        let mut cal = Calendar::new();
        for round in 0..100 {
            let id = cal.schedule(t(round as f64), round);
            assert_eq!(cal.pop(), Some((t(round as f64), round)));
            cal.cancel(id); // stale: event already popped
        }
        assert_eq!(cal.len_upper_bound(), 0);
        assert_eq!(cal.tombstone_count(), 0, "stale tombstones reclaimed");
    }

    #[test]
    fn compaction_preserves_fifo_order_and_event_removal() {
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..8).map(|i| cal.schedule(t(1.0), i)).collect();
        // Cancelling 5 of 8 crosses the half-heap threshold mid-loop, so
        // compaction physically removes the cancelled entries; re-cancel
        // of a compacted-away id is then indistinguishable from cancel of
        // a popped id (best effort, like the pre-compaction behaviour for
        // popped events), but the event itself stays gone and the
        // survivors keep FIFO order.
        for id in &ids[..5] {
            assert!(cal.cancel(*id));
        }
        assert_eq!(cal.len_upper_bound(), 3);
        for i in 5..8 {
            assert_eq!(cal.pop(), Some((t(1.0), i)));
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn large_volume_stays_sorted() {
        // Pseudo-random insertion order, verify global chronological pops.
        let mut cal = Calendar::new();
        let mut x: u64 = 0x12345;
        let mut times = Vec::new();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let time = (x >> 11) as f64 / (1u64 << 53) as f64 * 1e6;
            times.push(time);
            cal.schedule(t(time), time);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for expected in times {
            let (tt, payload) = cal.pop().unwrap();
            assert_eq!(tt.as_secs(), expected);
            assert_eq!(payload, expected);
        }
    }
}
