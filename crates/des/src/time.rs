//! Simulation time.
//!
//! [`SimTime`] wraps a non-negative, finite `f64` number of simulated
//! seconds. Wrapping it in a newtype gives the calendar a total order
//! (plain `f64` is only partially ordered) and catches NaN/negative time
//! arithmetic at the point of creation instead of deep inside the heap.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// Construction rejects NaN and negative values by panicking — those are
/// programming errors in model code (a negative delay or an uninitialized
/// sample), never legitimate data.
///
/// # Examples
///
/// ```
/// use lb_des::SimTime;
/// let t = SimTime::new(1.5) + 2.5;
/// assert_eq!(t.as_secs(), 4.0);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a simulation time.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is negative, NaN, or infinite.
    #[inline]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// The underlying number of seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Elapsed seconds since `earlier`; saturates at zero if `earlier` is
    /// actually later (guards monitors against clock misuse).
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Both values are finite by construction, so partial_cmp is total.
        self.0.partial_cmp(&other.0).expect("SimTime is finite")
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances time by `delay` seconds.
    ///
    /// # Panics
    ///
    /// Panics when the delay is negative or produces a non-finite time.
    #[inline]
    fn add(self, delay: f64) -> SimTime {
        SimTime::new(self.0 + delay)
    }
}

impl Sub for SimTime {
    type Output = f64;

    #[inline]
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::new(2.5);
        assert_eq!(t.as_secs(), 2.5);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(format!("{t}"), "2.500000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = SimTime::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.0) + 0.5;
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(t - SimTime::new(1.0), 0.5);
        assert_eq!(t.since(SimTime::new(1.0)), 0.5);
        // since() saturates instead of going negative.
        assert_eq!(SimTime::new(1.0).since(t), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_delay_panics() {
        let _ = SimTime::new(1.0) + (-2.0);
    }
}
