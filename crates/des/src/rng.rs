//! Reproducible random-number streams and sampling distributions.
//!
//! The paper replicates each simulation "five times with different random
//! number streams". We give every stochastic entity (each user source,
//! each station) its own [`RngStream`], derived deterministically from a
//! master seed and a stream index, so replications differ only in the
//! master seed and runs are bit-reproducible.
//!
//! Sampling is implemented from scratch on top of `rand`'s uniform
//! generator: exponential by inversion (the M/M/1 workhorse), Erlang as a
//! sum of exponentials, two-phase hyperexponential by mixture, and
//! deterministic — the latter three power sensitivity extensions where the
//! exponential service assumption is relaxed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, reproducible random stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
}

impl RngStream {
    /// Derives stream number `stream` from a master seed. Different
    /// `(master_seed, stream)` pairs yield decorrelated streams (SplitMix64
    /// spreading, the same construction `lb-stats` uses for replication
    /// seeds).
    pub fn new(master_seed: u64, stream: u64) -> Self {
        let mut z = master_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            rng: StdRng::seed_from_u64(z),
        }
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high` or the bounds are non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid uniform bounds [{low}, {high})"
        );
        low + (high - low) * self.uniform01()
    }

    /// Exponential sample with the given `rate` (mean `1/rate`), by
    /// inversion: `−ln(1 − U)/rate`.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite rate.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        // 1 - U is in (0, 1], so ln is finite and the sample non-negative.
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Samples a categorical index with the given (unnormalized, non-
    /// negative) weights. Used by the probabilistic dispatcher: user `j`
    /// picks computer `i` with probability `s_ji`.
    ///
    /// # Panics
    ///
    /// Panics when weights are empty, contain negatives/non-finites, or
    /// all are zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "categorical weights sum to zero");
        let mut x = self.uniform01() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: return the last positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 implies a positive weight")
    }

    /// Draws a sample from a [`Distribution`].
    pub fn sample(&mut self, dist: &Distribution) -> f64 {
        match *dist {
            Distribution::Exponential { rate } => self.exponential(rate),
            Distribution::Erlang { k, rate } => (0..k).map(|_| self.exponential(rate)).sum(),
            Distribution::HyperExponential { p, rate_a, rate_b } => {
                if self.uniform01() < p {
                    self.exponential(rate_a)
                } else {
                    self.exponential(rate_b)
                }
            }
            Distribution::Deterministic { value } => value,
        }
    }
}

/// Interarrival / service-time distributions available to the simulator.
///
/// The paper's model is [`Distribution::Exponential`] throughout; the
/// others are used by robustness extensions (EXPERIMENTS.md, "beyond the
/// paper").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Exponential with the given rate (mean `1/rate`, CV 1).
    Exponential {
        /// Rate parameter `λ`.
        rate: f64,
    },
    /// Erlang-k: sum of `k` exponentials (CV `1/√k < 1`).
    Erlang {
        /// Number of exponential phases.
        k: u32,
        /// Per-phase rate (mean is `k/rate`).
        rate: f64,
    },
    /// Two-phase hyperexponential mixture (CV > 1).
    HyperExponential {
        /// Probability of drawing phase A.
        p: f64,
        /// Rate of phase A.
        rate_a: f64,
        /// Rate of phase B.
        rate_b: f64,
    },
    /// A constant (CV 0).
    Deterministic {
        /// The constant value returned by every sample.
        value: f64,
    },
}

impl Distribution {
    /// Exponential distribution with the mean of one job at a computer of
    /// processing rate `mu` — the paper's service model.
    pub fn exp_with_rate(rate: f64) -> Self {
        Distribution::Exponential { rate }
    }

    /// Theoretical mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::Erlang { k, rate } => f64::from(k) / rate,
            Distribution::HyperExponential { p, rate_a, rate_b } => p / rate_a + (1.0 - p) / rate_b,
            Distribution::Deterministic { value } => value,
        }
    }

    /// Squared coefficient of variation (variance / mean²).
    pub fn scv(&self) -> f64 {
        match *self {
            Distribution::Exponential { .. } => 1.0,
            Distribution::Erlang { k, .. } => 1.0 / f64::from(k),
            Distribution::HyperExponential { p, rate_a, rate_b } => {
                let m = self.mean();
                let m2 = 2.0 * (p / (rate_a * rate_a) + (1.0 - p) / (rate_b * rate_b));
                m2 / (m * m) - 1.0
            }
            Distribution::Deterministic { .. } => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a1 = RngStream::new(7, 0);
        let mut a2 = RngStream::new(7, 0);
        let mut b = RngStream::new(7, 1);
        let mut c = RngStream::new(8, 0);
        let xa1: Vec<f64> = (0..16).map(|_| a1.uniform01()).collect();
        let xa2: Vec<f64> = (0..16).map(|_| a2.uniform01()).collect();
        let xb: Vec<f64> = (0..16).map(|_| b.uniform01()).collect();
        let xc: Vec<f64> = (0..16).map(|_| c.uniform01()).collect();
        assert_eq!(xa1, xa2);
        assert_ne!(xa1, xb);
        assert_ne!(xa1, xc);
    }

    #[test]
    fn uniform01_stays_in_range() {
        let mut s = RngStream::new(1, 1);
        for _ in 0..10_000 {
            let x = s.uniform01();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut s = RngStream::new(1, 2);
        for _ in 0..1000 {
            let x = s.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn uniform_rejects_inverted_bounds() {
        RngStream::new(0, 0).uniform(2.0, 1.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut s = RngStream::new(42, 0);
        let n = 200_000;
        let rate = 3.0;
        let mean: f64 = (0..n).map(|_| s.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01 / rate,
            "empirical mean {mean}, expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut s = RngStream::new(5, 5);
        for _ in 0..10_000 {
            assert!(s.exponential(0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(0, 0).exponential(0.0);
    }

    #[test]
    fn categorical_matches_weights() {
        let mut s = RngStream::new(9, 9);
        let weights = [0.2, 0.0, 0.5, 0.3];
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[s.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        for (i, &w) in weights.iter().enumerate() {
            let freq = f64::from(counts[i]) / f64::from(n);
            assert!(
                (freq - w).abs() < 0.01,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn categorical_rejects_all_zero() {
        RngStream::new(0, 0).categorical(&[0.0, 0.0]);
    }

    #[test]
    fn distribution_means_are_exact() {
        assert!((Distribution::Exponential { rate: 4.0 }.mean() - 0.25).abs() < 1e-12);
        assert!((Distribution::Erlang { k: 3, rate: 6.0 }.mean() - 0.5).abs() < 1e-12);
        assert!((Distribution::Deterministic { value: 1.5 }.mean() - 1.5).abs() < 1e-12);
        let h = Distribution::HyperExponential {
            p: 0.5,
            rate_a: 1.0,
            rate_b: 2.0,
        };
        assert!((h.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn distribution_scv_ordering() {
        let det = Distribution::Deterministic { value: 1.0 };
        let erl = Distribution::Erlang { k: 4, rate: 4.0 };
        let exp = Distribution::Exponential { rate: 1.0 };
        let hyp = Distribution::HyperExponential {
            p: 0.9,
            rate_a: 2.0,
            rate_b: 0.2,
        };
        assert_eq!(det.scv(), 0.0);
        assert!((erl.scv() - 0.25).abs() < 1e-12);
        assert_eq!(exp.scv(), 1.0);
        assert!(
            hyp.scv() > 1.0,
            "hyperexponential must have SCV > 1, got {}",
            hyp.scv()
        );
    }

    #[test]
    fn sampled_means_match_theory() {
        let mut s = RngStream::new(77, 3);
        let dists = [
            Distribution::Exponential { rate: 2.0 },
            Distribution::Erlang { k: 3, rate: 6.0 },
            Distribution::HyperExponential {
                p: 0.3,
                rate_a: 0.5,
                rate_b: 4.0,
            },
            Distribution::Deterministic { value: 0.7 },
        ];
        for d in dists {
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| s.sample(&d)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.02 * d.mean().max(0.1),
                "{d:?}: empirical {mean} vs {}",
                d.mean()
            );
        }
    }
}
