//! Reproducible random-number streams and sampling distributions.
//!
//! The paper replicates each simulation "five times with different random
//! number streams". We give every stochastic entity (each user source,
//! each station) its own [`RngStream`], derived deterministically from a
//! master seed and a stream index, so replications differ only in the
//! master seed and runs are bit-reproducible.
//!
//! Sampling is implemented from scratch on top of `rand`'s uniform
//! generator: exponential by inversion (the M/M/1 workhorse), Erlang as a
//! sum of exponentials, two-phase hyperexponential by mixture, and
//! deterministic — the latter three power sensitivity extensions where the
//! exponential service assumption is relaxed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, reproducible random stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
    /// Base draws taken from this stream. Every sampler funnels
    /// through [`RngStream::uniform01`], so this single plain counter
    /// (no atomics on the 3.5M-jobs/s hot path) accounts for all RNG
    /// work; snapshot points fold it into `account.*` events.
    draws: u64,
}

impl RngStream {
    /// Derives stream number `stream` from a master seed. Different
    /// `(master_seed, stream)` pairs yield decorrelated streams (SplitMix64
    /// spreading, the same construction `lb-stats` uses for replication
    /// seeds).
    pub fn new(master_seed: u64, stream: u64) -> Self {
        let mut z = master_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            rng: StdRng::seed_from_u64(z),
            draws: 0,
        }
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.draws += 1;
        self.rng.gen::<f64>()
    }

    /// Number of base uniform draws taken from this stream so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high` or the bounds are non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid uniform bounds [{low}, {high})"
        );
        low + (high - low) * self.uniform01()
    }

    /// Exponential sample with the given `rate` (mean `1/rate`), by
    /// inversion: `−ln(1 − U)/rate`.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite rate.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        // 1 - U is in (0, 1], so ln is finite and the sample non-negative.
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Samples a categorical index with the given (unnormalized, non-
    /// negative) weights. Used by the probabilistic dispatcher: user `j`
    /// picks computer `i` with probability `s_ji`.
    ///
    /// # Panics
    ///
    /// Panics when weights are empty, contain negatives/non-finites, or
    /// all are zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "categorical weights sum to zero");
        let mut x = self.uniform01() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: return the last positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 implies a positive weight")
    }

    /// Draws a sample from a [`Distribution`].
    pub fn sample(&mut self, dist: &Distribution) -> f64 {
        match *dist {
            Distribution::Exponential { rate } => self.exponential(rate),
            Distribution::Erlang { k, rate } => (0..k).map(|_| self.exponential(rate)).sum(),
            Distribution::HyperExponential { p, rate_a, rate_b } => {
                if self.uniform01() < p {
                    self.exponential(rate_a)
                } else {
                    self.exponential(rate_b)
                }
            }
            Distribution::Deterministic { value } => value,
        }
    }

    /// Fills `out` with exponential samples, consuming exactly the same
    /// underlying uniforms as `out.len()` calls to
    /// [`RngStream::exponential`] — the block form exists to amortize
    /// per-call overhead in batched event generation, not to change the
    /// stream, so sequential and batched generators stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite rate.
    pub fn fill_exponential(&mut self, rate: f64, out: &mut [f64]) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        // Divide (not multiply-by-reciprocal): the block must round
        // exactly like the per-call form to stay bit-identical.
        for slot in out.iter_mut() {
            *slot = -(1.0 - self.uniform01()).ln() / rate;
        }
    }

    /// Fills `out` with samples from `dist`, consuming exactly the same
    /// uniforms as `out.len()` calls to [`RngStream::sample`] (see
    /// [`RngStream::fill_exponential`] for the bit-identity contract).
    pub fn fill_samples(&mut self, dist: &Distribution, out: &mut [f64]) {
        match *dist {
            Distribution::Exponential { rate } => self.fill_exponential(rate, out),
            _ => {
                for slot in out.iter_mut() {
                    *slot = self.sample(dist);
                }
            }
        }
    }

    /// Standard normal sample via Box–Muller (one variate per call; the
    /// paired variate is discarded to keep the uniform consumption per
    /// call fixed, which the reproducibility discipline depends on).
    pub fn normal01(&mut self) -> f64 {
        // 1 − U ∈ (0, 1] keeps the log finite.
        let r = (-2.0 * (1.0 - self.uniform01()).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * self.uniform01();
        r * theta.cos()
    }

    /// Poisson sample with the given mean: Knuth's product-of-uniforms
    /// method for small means, a rounded normal approximation above 30
    /// (where the relative error of the approximation is far below the
    /// Monte-Carlo noise of any consumer in this workspace).
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite mean.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "poisson mean must be non-negative, got {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let limit = (-mean).exp();
            let mut product = self.uniform01();
            let mut count = 0u64;
            while product > limit {
                product *= self.uniform01();
                count += 1;
            }
            count
        } else {
            let x = mean + mean.sqrt() * self.normal01();
            if x < 0.5 {
                0
            } else {
                (x + 0.5) as u64
            }
        }
    }

    /// Gamma(shape, rate) sample by Marsaglia–Tsang squeeze for shape ≥ 1
    /// (the only regime the simulator needs: shapes are job counts). The
    /// sum of `k` iid Exponential(rate) variables is Gamma(k, rate), which
    /// is what lets the analytic fast path collapse a whole measurement
    /// window of per-job sojourn draws into one variate.
    ///
    /// # Panics
    ///
    /// Panics unless `shape >= 1` and `rate > 0` (both finite).
    pub fn gamma(&mut self, shape: f64, rate: f64) -> f64 {
        assert!(
            shape.is_finite() && shape >= 1.0,
            "gamma shape must be >= 1, got {shape}"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "gamma rate must be positive, got {rate}"
        );
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = self.normal01();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = 1.0 - self.uniform01(); // (0, 1], ln finite
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v / rate;
            }
        }
    }
}

/// Walker/Vose alias table: O(n) construction, O(1) categorical sampling.
///
/// [`RngStream::categorical`] scans its weight list on every draw, which
/// is fine for one dispatch decision per job against a short row but
/// dominates when a sharded station attributes millions of jobs against
/// the same fixed weight vector. The alias table front-loads the scan into
/// construction and answers each draw with two uniforms and two array
/// reads.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per bucket (scaled weight share).
    prob: Vec<f64>,
    /// Fallback category per bucket.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from unnormalized, non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics when weights are empty, contain negatives/non-finites, or
    /// all are zero (the same contract as [`RngStream::categorical`]).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "alias-table weights sum to zero");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to rounding; saturate so they always accept.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index, consuming exactly two uniforms.
    #[inline]
    pub fn sample(&self, rng: &mut RngStream) -> usize {
        let n = self.prob.len();
        let bucket = ((rng.uniform01() * n as f64) as usize).min(n - 1);
        if rng.uniform01() < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket]
        }
    }
}

/// A buffered sampler: draws from one [`Distribution`] on one stream in
/// refill blocks, popping one value at a time.
///
/// Because [`RngStream::fill_samples`] consumes exactly the uniforms of
/// the equivalent per-call draws, a `SampleBlock` yields bit-identical
/// sequences to calling [`RngStream::sample`] directly — it exists purely
/// to amortize per-draw call and dispatch overhead in event-generation
/// hot loops, and is only sound when the stream is not interleaved with
/// other consumers (each stochastic entity owns its stream, per the module
/// contract).
#[derive(Debug, Clone)]
pub struct SampleBlock {
    dist: Distribution,
    buf: Vec<f64>,
    pos: usize,
}

impl SampleBlock {
    /// Creates a buffered sampler refilling `block` samples at a time.
    ///
    /// # Panics
    ///
    /// Panics when `block` is zero.
    pub fn new(dist: Distribution, block: usize) -> Self {
        assert!(block > 0, "sample block must be non-empty");
        Self {
            dist,
            buf: vec![0.0; block],
            pos: block, // empty: first next() refills
        }
    }

    /// Pops the next sample, refilling the buffer from `rng` when empty.
    #[inline]
    pub fn next(&mut self, rng: &mut RngStream) -> f64 {
        if self.pos == self.buf.len() {
            rng.fill_samples(&self.dist, &mut self.buf);
            self.pos = 0;
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }
}

/// Interarrival / service-time distributions available to the simulator.
///
/// The paper's model is [`Distribution::Exponential`] throughout; the
/// others are used by robustness extensions (EXPERIMENTS.md, "beyond the
/// paper").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Exponential with the given rate (mean `1/rate`, CV 1).
    Exponential {
        /// Rate parameter `λ`.
        rate: f64,
    },
    /// Erlang-k: sum of `k` exponentials (CV `1/√k < 1`).
    Erlang {
        /// Number of exponential phases.
        k: u32,
        /// Per-phase rate (mean is `k/rate`).
        rate: f64,
    },
    /// Two-phase hyperexponential mixture (CV > 1).
    HyperExponential {
        /// Probability of drawing phase A.
        p: f64,
        /// Rate of phase A.
        rate_a: f64,
        /// Rate of phase B.
        rate_b: f64,
    },
    /// A constant (CV 0).
    Deterministic {
        /// The constant value returned by every sample.
        value: f64,
    },
}

impl Distribution {
    /// Exponential distribution with the mean of one job at a computer of
    /// processing rate `mu` — the paper's service model.
    pub fn exp_with_rate(rate: f64) -> Self {
        Distribution::Exponential { rate }
    }

    /// Theoretical mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::Erlang { k, rate } => f64::from(k) / rate,
            Distribution::HyperExponential { p, rate_a, rate_b } => p / rate_a + (1.0 - p) / rate_b,
            Distribution::Deterministic { value } => value,
        }
    }

    /// Squared coefficient of variation (variance / mean²).
    pub fn scv(&self) -> f64 {
        match *self {
            Distribution::Exponential { .. } => 1.0,
            Distribution::Erlang { k, .. } => 1.0 / f64::from(k),
            Distribution::HyperExponential { p, rate_a, rate_b } => {
                let m = self.mean();
                let m2 = 2.0 * (p / (rate_a * rate_a) + (1.0 - p) / (rate_b * rate_b));
                m2 / (m * m) - 1.0
            }
            Distribution::Deterministic { .. } => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a1 = RngStream::new(7, 0);
        let mut a2 = RngStream::new(7, 0);
        let mut b = RngStream::new(7, 1);
        let mut c = RngStream::new(8, 0);
        let xa1: Vec<f64> = (0..16).map(|_| a1.uniform01()).collect();
        let xa2: Vec<f64> = (0..16).map(|_| a2.uniform01()).collect();
        let xb: Vec<f64> = (0..16).map(|_| b.uniform01()).collect();
        let xc: Vec<f64> = (0..16).map(|_| c.uniform01()).collect();
        assert_eq!(xa1, xa2);
        assert_ne!(xa1, xb);
        assert_ne!(xa1, xc);
    }

    #[test]
    fn uniform01_stays_in_range() {
        let mut s = RngStream::new(1, 1);
        for _ in 0..10_000 {
            let x = s.uniform01();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn every_sampler_is_accounted_through_the_draw_counter() {
        let mut s = RngStream::new(1, 2);
        assert_eq!(s.draws(), 0);
        s.uniform01();
        assert_eq!(s.draws(), 1);
        s.exponential(2.0);
        assert_eq!(s.draws(), 2);
        let mut buf = [0.0; 16];
        s.fill_exponential(1.0, &mut buf);
        assert_eq!(s.draws(), 18, "bulk fills count per variate");
        s.normal01();
        assert_eq!(s.draws(), 20, "Box-Muller takes two base draws");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut s = RngStream::new(1, 2);
        for _ in 0..1000 {
            let x = s.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn uniform_rejects_inverted_bounds() {
        RngStream::new(0, 0).uniform(2.0, 1.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut s = RngStream::new(42, 0);
        let n = 200_000;
        let rate = 3.0;
        let mean: f64 = (0..n).map(|_| s.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01 / rate,
            "empirical mean {mean}, expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut s = RngStream::new(5, 5);
        for _ in 0..10_000 {
            assert!(s.exponential(0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(0, 0).exponential(0.0);
    }

    #[test]
    fn categorical_matches_weights() {
        let mut s = RngStream::new(9, 9);
        let weights = [0.2, 0.0, 0.5, 0.3];
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[s.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        for (i, &w) in weights.iter().enumerate() {
            let freq = f64::from(counts[i]) / f64::from(n);
            assert!(
                (freq - w).abs() < 0.01,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn categorical_rejects_all_zero() {
        RngStream::new(0, 0).categorical(&[0.0, 0.0]);
    }

    #[test]
    fn distribution_means_are_exact() {
        assert!((Distribution::Exponential { rate: 4.0 }.mean() - 0.25).abs() < 1e-12);
        assert!((Distribution::Erlang { k: 3, rate: 6.0 }.mean() - 0.5).abs() < 1e-12);
        assert!((Distribution::Deterministic { value: 1.5 }.mean() - 1.5).abs() < 1e-12);
        let h = Distribution::HyperExponential {
            p: 0.5,
            rate_a: 1.0,
            rate_b: 2.0,
        };
        assert!((h.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn distribution_scv_ordering() {
        let det = Distribution::Deterministic { value: 1.0 };
        let erl = Distribution::Erlang { k: 4, rate: 4.0 };
        let exp = Distribution::Exponential { rate: 1.0 };
        let hyp = Distribution::HyperExponential {
            p: 0.9,
            rate_a: 2.0,
            rate_b: 0.2,
        };
        assert_eq!(det.scv(), 0.0);
        assert!((erl.scv() - 0.25).abs() < 1e-12);
        assert_eq!(exp.scv(), 1.0);
        assert!(
            hyp.scv() > 1.0,
            "hyperexponential must have SCV > 1, got {}",
            hyp.scv()
        );
    }

    #[test]
    fn batched_fills_are_bit_identical_to_per_call_draws() {
        let dists = [
            Distribution::Exponential { rate: 3.0 },
            Distribution::Erlang { k: 3, rate: 6.0 },
            Distribution::HyperExponential {
                p: 0.3,
                rate_a: 0.5,
                rate_b: 4.0,
            },
            Distribution::Deterministic { value: 0.7 },
        ];
        for d in dists {
            let mut seq = RngStream::new(11, 4);
            let one: Vec<f64> = (0..257).map(|_| seq.sample(&d)).collect();
            let mut blk = RngStream::new(11, 4);
            let mut block = SampleBlock::new(d, 64);
            let bulk: Vec<f64> = (0..257).map(|_| block.next(&mut blk)).collect();
            assert_eq!(
                one.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                bulk.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{d:?}"
            );
        }
    }

    #[test]
    fn normal01_moments() {
        let mut s = RngStream::new(3, 14);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.normal01()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "normal variance {var}");
    }

    #[test]
    fn poisson_mean_tracks_parameter_in_both_regimes() {
        let mut s = RngStream::new(21, 0);
        for mean in [0.0, 0.4, 7.5, 29.9, 80.0, 4000.0] {
            let n = 20_000;
            let avg = (0..n).map(|_| s.poisson(mean)).sum::<u64>() as f64 / n as f64;
            let tol = 3.0 * (mean / n as f64).sqrt().max(1e-12) + 0.51 / n as f64;
            assert!(
                (avg - mean).abs() <= tol.max(0.05 * mean.max(0.01)),
                "poisson({mean}): empirical {avg}"
            );
        }
    }

    #[test]
    fn gamma_matches_sum_of_exponentials_in_distribution() {
        // Gamma(k, r) must have mean k/r and variance k/r² — the moments
        // of a sum of k iid Exponential(r), which the analytic fast path
        // relies on.
        let (shape, rate) = (5.0, 2.0);
        let mut s = RngStream::new(8, 3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| s.gamma(shape, rate)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - shape / rate).abs() < 0.02 * shape / rate, "{mean}");
        assert!(
            (var - shape / (rate * rate)).abs() < 0.05 * shape / (rate * rate),
            "{var}"
        );
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [0.2, 0.0, 0.5, 0.3];
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), 4);
        let mut s = RngStream::new(9, 9);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut s)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        for (i, &w) in weights.iter().enumerate() {
            let freq = f64::from(counts[i]) / f64::from(n);
            assert!(
                (freq - w).abs() < 0.01,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn sampled_means_match_theory() {
        let mut s = RngStream::new(77, 3);
        let dists = [
            Distribution::Exponential { rate: 2.0 },
            Distribution::Erlang { k: 3, rate: 6.0 },
            Distribution::HyperExponential {
                p: 0.3,
                rate_a: 0.5,
                rate_b: 4.0,
            },
            Distribution::Deterministic { value: 0.7 },
        ];
        for d in dists {
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| s.sample(&d)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.02 * d.mean().max(0.1),
                "{d:?}: empirical {mean} vs {}",
                d.mean()
            );
        }
    }
}
