//! A multi-server FCFS station (M/M/c pool) — the multicore-extension
//! counterpart of [`crate::station::FcfsStation`].
//!
//! `c` identical servers share a single FCFS queue: an arriving job takes
//! any idle server, otherwise waits; on completion the head of the queue
//! is promoted. With `c = 1` the behaviour coincides with the
//! single-server station (verified by tests).

use crate::station::Job;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Outcome of a job arrival at a multi-server station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoolArrival {
    /// An idle server starts the job; completion at the contained time.
    StartService(SimTime),
    /// All servers busy; the job queued.
    Queued,
}

/// A `c`-server FCFS station with one shared queue.
#[derive(Debug, Clone)]
pub struct MultiServerStation {
    servers: u32,
    busy: u32,
    queue: VecDeque<Job>,
    in_service: Vec<Job>,
    completed: u64,
}

impl MultiServerStation {
    /// Creates an idle pool of `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics for `servers == 0` (configuration error).
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "a pool needs at least one server");
        Self {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            in_service: Vec::with_capacity(servers as usize),
            completed: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Busy servers right now.
    pub fn busy_servers(&self) -> u32 {
        self.busy
    }

    /// Jobs present (in service + waiting).
    pub fn jobs_present(&self) -> usize {
        self.busy as usize + self.queue.len()
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Handles an arrival at `now`.
    ///
    /// # Panics
    ///
    /// Panics on a negative/non-finite service demand.
    pub fn arrive(&mut self, job: Job, now: SimTime) -> PoolArrival {
        assert!(
            job.service_time.is_finite() && job.service_time >= 0.0,
            "invalid service time {}",
            job.service_time
        );
        if self.busy < self.servers {
            self.busy += 1;
            self.in_service.push(job);
            PoolArrival::StartService(now + job.service_time)
        } else {
            self.queue.push_back(job);
            PoolArrival::Queued
        }
    }

    /// Completes the in-service job with id `job_id` at `now`.
    ///
    /// Returns the finished job and, if a queued job was promoted, that
    /// job with its completion time.
    ///
    /// # Panics
    ///
    /// Panics if no in-service job has that id (event wiring bug).
    pub fn complete(&mut self, job_id: u64, now: SimTime) -> (Job, Option<(Job, SimTime)>) {
        let idx = self
            .in_service
            .iter()
            .position(|j| j.id == job_id)
            .expect("completion for a job not in service");
        let finished = self.in_service.swap_remove(idx);
        self.completed += 1;
        match self.queue.pop_front() {
            Some(next) => {
                self.in_service.push(next);
                (finished, Some((next, now + next.service_time)))
            }
            None => {
                self.busy -= 1;
                (finished, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival: f64, service: f64) -> Job {
        Job {
            id,
            user: 0,
            arrival: SimTime::new(arrival),
            service_time: service,
        }
    }

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = MultiServerStation::new(0);
    }

    #[test]
    fn fills_servers_before_queueing() {
        let mut st = MultiServerStation::new(2);
        assert_eq!(
            st.arrive(job(1, 0.0, 5.0), t(0.0)),
            PoolArrival::StartService(t(5.0))
        );
        assert_eq!(
            st.arrive(job(2, 1.0, 5.0), t(1.0)),
            PoolArrival::StartService(t(6.0))
        );
        assert_eq!(st.arrive(job(3, 2.0, 1.0), t(2.0)), PoolArrival::Queued);
        assert_eq!(st.busy_servers(), 2);
        assert_eq!(st.jobs_present(), 3);
    }

    #[test]
    fn completion_promotes_fifo() {
        let mut st = MultiServerStation::new(2);
        st.arrive(job(1, 0.0, 5.0), t(0.0));
        st.arrive(job(2, 0.0, 2.0), t(0.0));
        st.arrive(job(3, 0.0, 1.0), t(0.0));
        st.arrive(job(4, 0.0, 1.0), t(0.0));
        // Job 2 finishes first (at t=2); job 3 promoted, done at 3.
        let (done, next) = st.complete(2, t(2.0));
        assert_eq!(done.id, 2);
        let (promoted, done_at) = next.unwrap();
        assert_eq!(promoted.id, 3);
        assert_eq!(done_at, t(3.0));
        // Job 3 finishes; job 4 promoted.
        let (done, next) = st.complete(3, t(3.0));
        assert_eq!(done.id, 3);
        assert_eq!(next.unwrap().0.id, 4);
        // Remaining completions drain the pool.
        st.complete(4, t(4.0));
        let (done, next) = st.complete(1, t(5.0));
        assert_eq!(done.id, 1);
        assert!(next.is_none());
        assert_eq!(st.busy_servers(), 0);
        assert_eq!(st.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "not in service")]
    fn completing_unknown_job_panics() {
        let mut st = MultiServerStation::new(1);
        st.arrive(job(1, 0.0, 1.0), t(0.0));
        st.complete(99, t(1.0));
    }

    #[test]
    fn single_server_pool_behaves_like_fcfs_station() {
        use crate::station::{Arrival, FcfsStation};
        let mut pool = MultiServerStation::new(1);
        let mut single = FcfsStation::new();
        let jobs = [job(1, 0.0, 2.0), job(2, 0.5, 1.0), job(3, 1.0, 0.5)];
        for j in jobs {
            let a = pool.arrive(j, j.arrival);
            let b = single.arrive(j, j.arrival);
            match (a, b) {
                (PoolArrival::StartService(x), Arrival::StartService(y)) => {
                    assert_eq!(x, y)
                }
                (PoolArrival::Queued, Arrival::Queued) => {}
                other => panic!("divergence: {other:?}"),
            }
        }
        // Drain both: identical completion order and times.
        let (p1, pn) = pool.complete(1, t(2.0));
        let (s1, sn) = single.complete(t(2.0));
        assert_eq!(p1.id, s1.id);
        assert_eq!(pn.unwrap().1, sn.unwrap().1);
    }

    /// End-to-end M/M/c validation: simulate the pool with the engine and
    /// compare the measured mean response with Erlang-C.
    #[test]
    fn simulated_pool_matches_erlang_c() {
        use crate::engine::Engine;
        use crate::monitor::ResponseTimeMonitor;
        use crate::rng::RngStream;

        #[derive(Clone, Copy)]
        enum Ev {
            Arrive,
            Done(u64),
        }

        let (lambda, mu, c) = (3.2, 1.0, 4u32);
        let horizon = 40_000.0;
        let mut eng: Engine<Ev> = Engine::new();
        eng.set_horizon(SimTime::new(horizon));
        let mut arrivals = RngStream::new(77, 0);
        let mut services = RngStream::new(77, 1);
        let mut pool = MultiServerStation::new(c);
        let mut monitor = ResponseTimeMonitor::new(1, SimTime::new(horizon * 0.1));
        let mut next_id = 0u64;

        eng.schedule_in(arrivals.exponential(lambda), Ev::Arrive);
        while let Some(ev) = eng.next_event() {
            match ev {
                Ev::Arrive => {
                    eng.schedule_in(arrivals.exponential(lambda), Ev::Arrive);
                    next_id += 1;
                    let j = Job {
                        id: next_id,
                        user: 0,
                        arrival: eng.now(),
                        service_time: services.exponential(mu),
                    };
                    if let PoolArrival::StartService(at) = pool.arrive(j, eng.now()) {
                        eng.schedule_at(at, Ev::Done(j.id));
                    }
                }
                Ev::Done(id) => {
                    let (done, next) = pool.complete(id, eng.now());
                    monitor.record(0, done.arrival, eng.now());
                    if let Some((promoted, at)) = next {
                        eng.schedule_at(at, Ev::Done(promoted.id));
                    }
                }
            }
        }
        let theory = lb_stats_free_erlang_c(lambda, mu, c);
        let measured = monitor.system_mean();
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.05,
            "measured {measured} vs Erlang-C {theory} (rel {rel:.3})"
        );
    }

    /// Minimal local Erlang-C (duplicated to avoid a dev-dependency on
    /// lb-queueing from lb-des).
    fn lb_stats_free_erlang_c(lambda: f64, mu: f64, c: u32) -> f64 {
        let a = lambda / mu;
        let mut bl = 1.0;
        for k in 1..=c {
            bl = a * bl / (f64::from(k) + a * bl);
        }
        let rho = lambda / (mu * f64::from(c));
        let pc = bl / (1.0 - rho * (1.0 - bl));
        1.0 / mu + pc / (mu * f64::from(c) - lambda)
    }
}
