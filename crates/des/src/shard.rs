//! Per-station event sharding: one small calendar per station.
//!
//! In the paper's model, stations stop interacting the moment the flow
//! split is fixed: user `j` routes a Poisson stream of rate `φ_j` across
//! the computers with probabilities `s_ji`, and by Poisson splitting and
//! superposition each station `i` then receives an *independent* Poisson
//! stream of rate `λ_i = Σ_j s_ji φ_j`. Nothing a station does can ever
//! influence another station's event order, so a replication does not need
//! one big serial calendar — each station can run its own tiny event
//! stream on its own [`RngStream`], embarrassingly parallel, and the
//! per-station measurements merge deterministically in station-index
//! order.
//!
//! [`run_station_shard`] is that per-station engine: it generates the
//! station's arrival process in vectorized blocks (one
//! [`RngStream::fill_exponential`] call plus one bulk
//! [`Engine::schedule_batch`] per block, instead of one `schedule_in` per
//! job), attributes each arrival to a user with an O(1) Walker
//! [`AliasTable`] draw, runs the FCFS station to the horizon, and returns
//! warmup-aware per-user statistics. The calendar never holds more than
//! one arrival block plus one completion, so event scheduling stays cheap
//! regardless of run length.
//!
//! The splitting argument is exact only for Poisson (exponential
//! interarrival) user sources; the `lb-sim` crate routes non-Poisson
//! arrival models to the classic single-calendar engine instead.

use crate::engine::Engine;
use crate::monitor::ResponseTimeMonitor;
use crate::rng::{AliasTable, Distribution, RngStream, SampleBlock};
use crate::station::{Arrival, FcfsStation, Job};
use crate::time::SimTime;
use lb_telemetry::{Collector, Span, SpanHandle};
use std::sync::Arc;

/// Default number of arrivals generated per batch block.
pub const DEFAULT_SHARD_BATCH: usize = 1024;

/// Static description of one station shard.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Total Poisson arrival rate at this station, `λ_i = Σ_j s_ji φ_j`.
    pub arrival_rate: f64,
    /// Service-time distribution at this station.
    pub service: Distribution,
    /// Run horizon: arrivals and completions after this time are never
    /// delivered.
    pub horizon: SimTime,
    /// Warmup cutoff: jobs arriving before it are simulated but not
    /// measured.
    pub warmup: SimTime,
    /// Number of users (width of the per-user statistics).
    pub users: usize,
    /// Arrivals generated per block (see [`DEFAULT_SHARD_BATCH`]).
    pub batch: usize,
}

/// Everything one station shard measures.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Warmup-aware per-user and system response-time statistics for jobs
    /// served at this station.
    pub monitor: ResponseTimeMonitor,
    /// Arrivals delivered within the horizon (including warmup jobs).
    pub jobs_generated: u64,
    /// Fraction of `[0, horizon]` the server was busy.
    pub utilization: f64,
}

/// Event payload of a shard engine: arrivals carry no data (user and
/// service demand are drawn at delivery, keeping the block cheap).
enum ShardEvent {
    Arrive,
    Complete,
}

/// Generates one arrival block: a vectorized exponential fill followed by
/// one bulk calendar insertion. Returns the absolute time of the last
/// scheduled arrival. Emits a `sim.batch` span per block when tracing.
fn schedule_block(
    engine: &mut Engine<ShardEvent>,
    rng: &mut RngStream,
    rate: f64,
    buf: &mut [f64],
    from: SimTime,
    span_parent: Option<&SpanHandle>,
) -> SimTime {
    let span = span_parent.map(|p| {
        p.child(
            "sim.batch",
            &[
                ("from", from.as_secs().into()),
                ("events", (buf.len() as u64).into()),
            ],
        )
    });
    rng.fill_exponential(rate, buf);
    let mut t = from;
    engine.schedule_batch(buf.iter().map(|dt| {
        t = t + *dt;
        (t, ShardEvent::Arrive)
    }));
    if let Some(span) = span {
        span.close_with(&[("to", t.as_secs().into())]);
    }
    t
}

/// Runs one station's independent event stream to the horizon.
///
/// `attribution` maps each served job back to the user that generated it
/// (weights `s_ji φ_j` over users), so per-user response statistics
/// survive the sharding. The three streams must be exclusive to this
/// shard; the caller keys them by `(replication, station)` so the shard's
/// results depend only on its own streams — which is what makes the
/// station-index-order merge bit-identical at any thread count.
///
/// `sink` observes every *measured* (post-warmup) response as
/// `(user, response_seconds)` in this station's completion order.
///
/// # Panics
///
/// Panics on a non-positive arrival rate, an attribution table whose
/// width disagrees with `spec.users`, or a zero batch size.
#[allow(clippy::too_many_arguments)]
pub fn run_station_shard<F: FnMut(usize, f64)>(
    spec: &ShardSpec,
    attribution: &AliasTable,
    arrival_rng: &mut RngStream,
    service_rng: &mut RngStream,
    attribution_rng: &mut RngStream,
    collector: Option<&Arc<dyn Collector>>,
    span_parent: Option<&SpanHandle>,
    mut sink: F,
) -> ShardOutcome {
    assert!(
        spec.arrival_rate.is_finite() && spec.arrival_rate > 0.0,
        "shard arrival rate must be positive, got {}",
        spec.arrival_rate
    );
    assert_eq!(
        attribution.len(),
        spec.users,
        "attribution table width disagrees with the user count"
    );
    assert!(spec.batch > 0, "shard batch must be non-empty");

    let shard_span = span_parent.map(|p| {
        p.child(
            "des.shard",
            &[
                ("rate", spec.arrival_rate.into()),
                ("horizon", spec.horizon.as_secs().into()),
            ],
        )
    });
    let shard_handle = shard_span.as_ref().map(Span::handle);

    let mut engine: Engine<ShardEvent> = Engine::new();
    engine.set_horizon(spec.horizon);
    if let Some(c) = collector {
        engine.set_collector(Arc::clone(c));
    }
    if let Some(h) = &shard_handle {
        engine.set_span_parent(h.clone());
    }

    let mut station = FcfsStation::new();
    let mut monitor = ResponseTimeMonitor::new(spec.users, spec.warmup);
    let mut service = SampleBlock::new(spec.service, spec.batch);
    let mut interarrivals = vec![0.0; spec.batch];

    let mut block_end = schedule_block(
        &mut engine,
        arrival_rng,
        spec.arrival_rate,
        &mut interarrivals,
        SimTime::ZERO,
        shard_handle.as_ref(),
    );
    let mut outstanding = interarrivals.len();
    let mut jobs: u64 = 0;

    while let Some(ev) = engine.next_event() {
        match ev {
            ShardEvent::Arrive => {
                outstanding -= 1;
                // Refill as the block's last arrival is delivered, so the
                // calendar holds at most one block plus one completion.
                if outstanding == 0 && block_end <= spec.horizon {
                    block_end = schedule_block(
                        &mut engine,
                        arrival_rng,
                        spec.arrival_rate,
                        &mut interarrivals,
                        block_end,
                        shard_handle.as_ref(),
                    );
                    outstanding = interarrivals.len();
                }
                jobs += 1;
                let now = engine.now();
                let job = Job {
                    id: jobs,
                    user: attribution.sample(attribution_rng),
                    arrival: now,
                    service_time: service.next(service_rng),
                };
                if let Arrival::StartService(done) = station.arrive(job, now) {
                    engine.schedule_at(done, ShardEvent::Complete);
                }
            }
            ShardEvent::Complete => {
                let now = engine.now();
                let (finished, next) = station.complete(now);
                monitor.record(finished.user, finished.arrival, now);
                if finished.arrival >= spec.warmup {
                    sink(finished.user, now - finished.arrival);
                }
                if let Some((_, done)) = next {
                    engine.schedule_at(done, ShardEvent::Complete);
                }
            }
        }
    }

    let utilization = station.utilization(spec.horizon);
    // Resource-accounting snapshot: one `account.des` event per shard,
    // emitted inside the shard span so diff/analyze can attribute it.
    if let Some(c) = collector.and_then(|c| lb_telemetry::enabled(Some(c))) {
        c.emit(
            "account.des",
            &[
                ("scheduled", engine.events_scheduled().into()),
                ("executed", engine.events_processed().into()),
                (
                    "rng_draws",
                    (arrival_rng.draws() + service_rng.draws() + attribution_rng.draws()).into(),
                ),
            ],
        );
    }
    if let Some(span) = shard_span {
        span.close_with(&[
            ("jobs", jobs.into()),
            ("measured", monitor.total_count().into()),
            ("util", utilization.into()),
        ]);
    }
    ShardOutcome {
        monitor,
        jobs_generated: jobs,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, horizon: f64) -> ShardSpec {
        ShardSpec {
            arrival_rate: rate,
            service: Distribution::Exponential { rate: 10.0 },
            horizon: SimTime::new(horizon),
            warmup: SimTime::new(horizon * 0.1),
            users: 3,
            batch: DEFAULT_SHARD_BATCH,
        }
    }

    fn run(spec: &ShardSpec, seed: u64, sink: &mut Vec<(usize, f64)>) -> ShardOutcome {
        let attribution = AliasTable::new(&[0.5, 0.3, 0.2]);
        let mut arr = RngStream::new(seed, 0);
        let mut svc = RngStream::new(seed, 1);
        let mut att = RngStream::new(seed, 2);
        run_station_shard(
            spec,
            &attribution,
            &mut arr,
            &mut svc,
            &mut att,
            None,
            None,
            |u, r| sink.push((u, r)),
        )
    }

    #[test]
    fn shard_is_deterministic_per_seed_and_batch_invariant() {
        let base = spec(6.0, 2_000.0);
        let mut sink_a = Vec::new();
        let a = run(&base, 42, &mut sink_a);
        let mut sink_b = Vec::new();
        let b = run(&base, 42, &mut sink_b);
        assert_eq!(a.jobs_generated, b.jobs_generated);
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(
            a.monitor.user_means(),
            b.monitor.user_means(),
            "same seed must reproduce bitwise"
        );
        assert_eq!(sink_a, sink_b);

        let mut c_spec = base.clone();
        c_spec.batch = 7; // pathological block size: same event stream
        let mut sink_c = Vec::new();
        let c = run(&c_spec, 42, &mut sink_c);
        assert_eq!(a.jobs_generated, c.jobs_generated);
        assert_eq!(sink_a, sink_c, "batch size must not change the stream");
        assert_eq!(
            a.monitor.system_mean().to_bits(),
            c.monitor.system_mean().to_bits()
        );
    }

    #[test]
    fn shard_matches_mm1_theory() {
        // λ=6, μ=10 ⇒ E[T] = 1/(μ−λ) = 0.25, ρ = 0.6.
        let s = spec(6.0, 50_000.0);
        let mut sink = Vec::new();
        let out = run(&s, 7, &mut sink);
        let t = out.monitor.system_mean();
        assert!((t - 0.25).abs() < 0.02, "E[T] {t} vs 0.25");
        assert!(
            (out.utilization - 0.6).abs() < 0.02,
            "ρ {}",
            out.utilization
        );
        // ~λ·horizon arrivals.
        let expected = 6.0 * 50_000.0;
        assert!((out.jobs_generated as f64 - expected).abs() < 0.02 * expected);
        // Attribution tracks the weights.
        let counts: Vec<u64> = (0..3).map(|u| out.monitor.count(u)).collect();
        let total: u64 = counts.iter().sum();
        for (c, w) in counts.iter().zip([0.5, 0.3, 0.2]) {
            let freq = *c as f64 / total as f64;
            assert!((freq - w).abs() < 0.01, "freq {freq} vs {w}");
        }
        // Sink saw exactly the measured jobs, in completion order.
        assert_eq!(sink.len() as u64, out.monitor.total_count());
    }

    #[test]
    fn sampling_collector_does_not_perturb_the_shard() {
        use lb_telemetry::{MemoryCollector, SamplingCollector, SamplingConfig};
        let s = spec(4.0, 1_000.0);
        let mut plain_sink = Vec::new();
        let plain = run(&s, 9, &mut plain_sink);

        // Heavy head sampling on the way out; the simulation itself
        // must stay bit-identical because the sampler only filters the
        // event stream after the fact.
        let mem = Arc::new(MemoryCollector::default());
        let sampler: Arc<dyn Collector> = Arc::new(SamplingCollector::new(
            mem.clone(),
            SamplingConfig::new(0xD15C, 1.0 / 32.0),
        ));
        let root = Span::root(Some(&sampler), "test.root", &[]).unwrap();
        let attribution = AliasTable::new(&[0.5, 0.3, 0.2]);
        let mut arr = RngStream::new(9, 0);
        let mut svc = RngStream::new(9, 1);
        let mut att = RngStream::new(9, 2);
        let mut traced_sink = Vec::new();
        let traced = run_station_shard(
            &s,
            &attribution,
            &mut arr,
            &mut svc,
            &mut att,
            Some(&sampler),
            Some(&root.handle()),
            |u, r| traced_sink.push((u, r)),
        );
        root.close();
        sampler.flush();
        assert_eq!(plain.jobs_generated, traced.jobs_generated);
        assert_eq!(
            plain.monitor.system_mean().to_bits(),
            traced.monitor.system_mean().to_bits()
        );
        assert_eq!(plain_sink, traced_sink);
        // Accounting snapshots are always-keep, so the log still
        // carries the resource totals even at 1/32 sampling.
        assert_eq!(mem.count("account.des"), 1);
    }

    #[test]
    fn tracing_does_not_perturb_the_shard() {
        use lb_telemetry::MemoryCollector;
        let s = spec(4.0, 1_000.0);
        let mut plain_sink = Vec::new();
        let plain = run(&s, 9, &mut plain_sink);

        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        let root = Span::root(Some(&collector), "test.root", &[]).unwrap();
        let attribution = AliasTable::new(&[0.5, 0.3, 0.2]);
        let mut arr = RngStream::new(9, 0);
        let mut svc = RngStream::new(9, 1);
        let mut att = RngStream::new(9, 2);
        let mut traced_sink = Vec::new();
        let traced = run_station_shard(
            &s,
            &attribution,
            &mut arr,
            &mut svc,
            &mut att,
            Some(&collector),
            Some(&root.handle()),
            |u, r| traced_sink.push((u, r)),
        );
        root.close();
        assert_eq!(plain.jobs_generated, traced.jobs_generated);
        assert_eq!(
            plain.monitor.system_mean().to_bits(),
            traced.monitor.system_mean().to_bits()
        );
        assert_eq!(plain_sink, traced_sink);
        // The span stream contains the shard span, its sim.batch blocks,
        // and the engine's des.batch spans — all opened and closed.
        assert!(mem.count(lb_telemetry::SPAN_OPEN) >= 3);
        assert_eq!(
            mem.count(lb_telemetry::SPAN_OPEN),
            mem.count(lb_telemetry::SPAN_CLOSE)
        );
        // Exactly one resource-accounting snapshot, with sane totals:
        // every delivered event was scheduled first, and the three RNG
        // streams drew at least once per generated job.
        assert_eq!(mem.count("account.des"), 1);
        let (_, fields) = mem
            .events()
            .into_iter()
            .find(|(name, _)| *name == "account.des")
            .unwrap();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    lb_telemetry::FieldValue::U64(n) => Some(*n),
                    _ => None,
                })
                .unwrap()
        };
        assert!(get("scheduled") >= get("executed"));
        assert!(get("executed") >= traced.jobs_generated);
        assert!(get("rng_draws") >= 2 * traced.jobs_generated);
    }
}
