//! Warmup-aware measurement collectors.
//!
//! Steady-state estimation from a simulation started empty requires
//! discarding the initial transient. [`ResponseTimeMonitor`] drops every
//! job that *arrived* before the warmup cutoff and accumulates per-user
//! and system-wide response-time statistics with `lb-stats` Welford
//! accumulators. [`QueueLengthMonitor`] tracks a time-averaged queue
//! length over the measurement window.

use crate::time::SimTime;
use lb_stats::Welford;

/// Per-user and system-wide response-time statistics with warmup deletion.
#[derive(Debug, Clone)]
pub struct ResponseTimeMonitor {
    warmup: SimTime,
    per_user: Vec<Welford>,
    system: Welford,
}

impl ResponseTimeMonitor {
    /// Creates a monitor for `users` users, ignoring jobs that arrived
    /// before `warmup`.
    pub fn new(users: usize, warmup: SimTime) -> Self {
        Self {
            warmup,
            per_user: vec![Welford::new(); users],
            system: Welford::new(),
        }
    }

    /// Records a completed job: `user` index, `arrival` time, `departure`
    /// time. Jobs that arrived during warmup are ignored.
    ///
    /// # Panics
    ///
    /// Panics when `user` is out of range or `departure < arrival`.
    pub fn record(&mut self, user: usize, arrival: SimTime, departure: SimTime) {
        assert!(user < self.per_user.len(), "user index {user} out of range");
        assert!(
            departure >= arrival,
            "job departs at {departure} before arriving at {arrival}"
        );
        if arrival < self.warmup {
            return;
        }
        let response = departure - arrival;
        self.per_user[user].push(response);
        self.system.push(response);
    }

    /// Number of measured (post-warmup) jobs for `user`.
    pub fn count(&self, user: usize) -> u64 {
        self.per_user[user].count()
    }

    /// Total measured jobs across users.
    pub fn total_count(&self) -> u64 {
        self.system.count()
    }

    /// Mean response time of `user`'s measured jobs (`0` if none).
    pub fn user_mean(&self, user: usize) -> f64 {
        self.per_user[user].mean()
    }

    /// Mean response times of every user.
    pub fn user_means(&self) -> Vec<f64> {
        self.per_user.iter().map(Welford::mean).collect()
    }

    /// System-wide (job-averaged) mean response time.
    pub fn system_mean(&self) -> f64 {
        self.system.mean()
    }

    /// The per-user accumulators, for callers needing variances.
    pub fn user_accumulators(&self) -> &[Welford] {
        &self.per_user
    }

    /// Merges another monitor's measurements into this one (Welford
    /// parallel combine, per user and system-wide). Used by the sharded
    /// engine: each station shard accumulates its own monitor, merged in
    /// station-index order so the result is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics when the monitors track different user counts.
    pub fn merge(&mut self, other: &ResponseTimeMonitor) {
        assert_eq!(
            self.per_user.len(),
            other.per_user.len(),
            "cannot merge monitors over different user counts"
        );
        for (mine, theirs) in self.per_user.iter_mut().zip(&other.per_user) {
            mine.merge(theirs);
        }
        self.system.merge(&other.system);
    }
}

/// Separates goodput from degraded work under churn: jobs *served* to
/// completion, jobs *shed* at admission (the overload policy refused
/// them), jobs *lost* after exhausting their retry budget, and retry
/// attempts. Events before the warmup cutoff are discarded, like
/// [`ResponseTimeMonitor`]'s.
#[derive(Debug, Clone, Copy)]
pub struct GoodputMonitor {
    warmup: SimTime,
    served: u64,
    shed: u64,
    lost: u64,
    retries: u64,
}

impl GoodputMonitor {
    /// Creates a monitor that starts counting at `warmup`.
    pub fn new(warmup: SimTime) -> Self {
        Self {
            warmup,
            served: 0,
            shed: 0,
            lost: 0,
            retries: 0,
        }
    }

    /// A job finished service at `now`.
    pub fn record_served(&mut self, now: SimTime) {
        if now >= self.warmup {
            self.served += 1;
        }
    }

    /// A job was refused at admission at `now` (overload shedding).
    pub fn record_shed(&mut self, now: SimTime) {
        if now >= self.warmup {
            self.shed += 1;
        }
    }

    /// A job exhausted its retry budget at `now` and was dropped.
    pub fn record_lost(&mut self, now: SimTime) {
        if now >= self.warmup {
            self.lost += 1;
        }
    }

    /// A crashed-out job was re-submitted at `now`.
    pub fn record_retry(&mut self, now: SimTime) {
        if now >= self.warmup {
            self.retries += 1;
        }
    }

    /// Jobs served to completion in the measurement window.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Jobs shed at admission in the measurement window.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Jobs lost to exhausted retries in the measurement window.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Retry submissions in the measurement window.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Completed jobs per second over `[warmup, now]` — the goodput.
    pub fn goodput(&self, now: SimTime) -> f64 {
        self.rate(self.served, now)
    }

    /// Shed jobs per second over `[warmup, now]`.
    pub fn shed_rate(&self, now: SimTime) -> f64 {
        self.rate(self.shed, now)
    }

    /// Lost jobs per second over `[warmup, now]`.
    pub fn loss_rate(&self, now: SimTime) -> f64 {
        self.rate(self.lost, now)
    }

    /// Fraction of offered (post-warmup) jobs that were actually served.
    /// `1.0` when nothing was offered yet.
    pub fn service_fraction(&self) -> f64 {
        let offered = self.served + self.shed + self.lost;
        if offered == 0 {
            return 1.0;
        }
        self.served as f64 / offered as f64
    }

    /// Merges another monitor's counters into this one. Used by the
    /// sharded engine to combine per-station goodput in station-index
    /// order (the counters are plain sums, so the merge is exact).
    pub fn merge(&mut self, other: &GoodputMonitor) {
        self.served += other.served;
        self.shed += other.shed;
        self.lost += other.lost;
        self.retries += other.retries;
    }

    fn rate(&self, count: u64, now: SimTime) -> f64 {
        let window = now.since(self.warmup);
        if window == 0.0 {
            return 0.0;
        }
        count as f64 / window
    }
}

/// Time-average queue length over the measurement window `[warmup, ∞)`.
#[derive(Debug, Clone, Copy)]
pub struct QueueLengthMonitor {
    warmup: SimTime,
    last: SimTime,
    current: f64,
    area: f64,
}

impl QueueLengthMonitor {
    /// Creates a monitor that starts integrating at `warmup`.
    pub fn new(warmup: SimTime) -> Self {
        Self {
            warmup,
            last: warmup,
            current: 0.0,
            area: 0.0,
        }
    }

    /// Reports that the tracked queue length changed to `length` at `now`.
    /// Updates are expected in non-decreasing time order; the portion of
    /// any interval before the warmup cutoff is discarded.
    pub fn update(&mut self, now: SimTime, length: usize) {
        if now > self.last && now > self.warmup {
            let from = self.last.max(self.warmup);
            self.area += now.since(from) * self.current;
        }
        self.last = self.last.max(now);
        self.current = length as f64;
    }

    /// Time-average queue length over `[warmup, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let window = now.since(self.warmup);
        if window == 0.0 {
            return 0.0;
        }
        let tail = now.since(self.last.max(self.warmup)) * self.current;
        (self.area + tail) / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn records_after_warmup_only() {
        let mut m = ResponseTimeMonitor::new(2, t(10.0));
        m.record(0, t(5.0), t(12.0)); // arrived during warmup: dropped
        m.record(0, t(10.0), t(13.0)); // boundary arrival: kept
        m.record(1, t(20.0), t(21.0));
        assert_eq!(m.count(0), 1);
        assert_eq!(m.count(1), 1);
        assert_eq!(m.total_count(), 2);
        assert!((m.user_mean(0) - 3.0).abs() < 1e-12);
        assert!((m.system_mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.user_means(), vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_user() {
        let mut m = ResponseTimeMonitor::new(1, SimTime::ZERO);
        m.record(1, t(0.0), t(1.0));
    }

    #[test]
    #[should_panic(expected = "before arriving")]
    fn rejects_time_travel() {
        let mut m = ResponseTimeMonitor::new(1, SimTime::ZERO);
        m.record(0, t(2.0), t(1.0));
    }

    #[test]
    fn empty_monitor_means_are_zero() {
        let m = ResponseTimeMonitor::new(3, SimTime::ZERO);
        assert_eq!(m.user_mean(2), 0.0);
        assert_eq!(m.system_mean(), 0.0);
        assert_eq!(m.user_accumulators().len(), 3);
    }

    #[test]
    fn monitor_merge_matches_single_stream() {
        let jobs = [
            (0usize, 12.0, 15.0),
            (1, 11.0, 12.5),
            (0, 20.0, 26.0),
            (1, 22.0, 23.0),
            (0, 30.0, 31.0),
        ];
        let mut all = ResponseTimeMonitor::new(2, t(10.0));
        for (u, a, d) in jobs {
            all.record(u, t(a), t(d));
        }
        let mut left = ResponseTimeMonitor::new(2, t(10.0));
        let mut right = ResponseTimeMonitor::new(2, t(10.0));
        for (k, (u, a, d)) in jobs.into_iter().enumerate() {
            if k < 2 {
                left.record(u, t(a), t(d));
            } else {
                right.record(u, t(a), t(d));
            }
        }
        left.merge(&right);
        assert_eq!(left.total_count(), all.total_count());
        for u in 0..2 {
            assert_eq!(left.count(u), all.count(u));
            assert!((left.user_mean(u) - all.user_mean(u)).abs() < 1e-12);
        }
        assert!((left.system_mean() - all.system_mean()).abs() < 1e-12);
    }

    #[test]
    fn goodput_merge_sums_counters() {
        let mut a = GoodputMonitor::new(t(0.0));
        a.record_served(t(1.0));
        a.record_shed(t(2.0));
        let mut b = GoodputMonitor::new(t(0.0));
        b.record_served(t(3.0));
        b.record_lost(t(4.0));
        b.record_retry(t(5.0));
        a.merge(&b);
        assert_eq!((a.served(), a.shed(), a.lost(), a.retries()), (2, 1, 1, 1));
    }

    #[test]
    fn goodput_monitor_separates_outcomes() {
        let mut g = GoodputMonitor::new(t(10.0));
        g.record_served(t(5.0)); // warmup: dropped
        g.record_shed(t(5.0)); // warmup: dropped
        g.record_served(t(10.0));
        g.record_served(t(15.0));
        g.record_shed(t(12.0));
        g.record_lost(t(14.0));
        g.record_retry(t(13.0));
        assert_eq!(g.served(), 2);
        assert_eq!(g.shed(), 1);
        assert_eq!(g.lost(), 1);
        assert_eq!(g.retries(), 1);
        assert!((g.goodput(t(20.0)) - 0.2).abs() < 1e-12);
        assert!((g.shed_rate(t(20.0)) - 0.1).abs() < 1e-12);
        assert!((g.loss_rate(t(20.0)) - 0.1).abs() < 1e-12);
        assert!((g.service_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_goodput_monitor_is_benign() {
        let g = GoodputMonitor::new(t(10.0));
        assert_eq!(g.goodput(t(10.0)), 0.0);
        assert_eq!(g.service_fraction(), 1.0);
    }

    #[test]
    fn queue_length_time_average() {
        let mut q = QueueLengthMonitor::new(SimTime::ZERO);
        q.update(t(0.0), 1); // [0,2): 1
        q.update(t(2.0), 3); // [2,3): 3
        q.update(t(3.0), 0); // [3,5): 0
                             // Mean over [0,5] = (2*1 + 1*3 + 2*0)/5 = 1.
        assert!((q.mean(t(5.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_monitor_discards_warmup_portion() {
        let mut q = QueueLengthMonitor::new(t(10.0));
        q.update(t(0.0), 4); // entirely pre-warmup
        q.update(t(12.0), 0); // [10,12): 4
                              // Mean over [10,14] = (2*4 + 2*0)/4 = 2.
        assert!((q.mean(t(14.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn queue_monitor_tail_counts_current_level() {
        let mut q = QueueLengthMonitor::new(SimTime::ZERO);
        q.update(t(0.0), 2);
        // No further updates: mean over [0,4] is 2.
        assert!((q.mean(t(4.0)) - 2.0).abs() < 1e-12);
        assert_eq!(q.mean(t(0.0)), 0.0);
    }
}
