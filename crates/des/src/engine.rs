//! The simulation engine: clock + calendar + event loop bounds.
//!
//! The engine is deliberately *pull-based*: model code owns the loop,
//! calling [`Engine::next_event`] and scheduling follow-up events in
//! response. This sidesteps handler-callback borrow gymnastics and keeps
//! the kernel reusable for any event type.
//!
//! ```
//! use lb_des::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut eng = Engine::new();
//! eng.schedule_in(1.0, Ev::Ping(0));
//! let mut pings = 0;
//! while let Some(ev) = eng.next_event() {
//!     let Ev::Ping(k) = ev;
//!     pings += 1;
//!     if k < 9 {
//!         eng.schedule_in(1.0, Ev::Ping(k + 1));
//!     }
//! }
//! assert_eq!(pings, 10);
//! assert_eq!(eng.now(), SimTime::new(10.0));
//! ```

use crate::calendar::{Calendar, EventId};
use crate::time::SimTime;
use lb_telemetry::{Collector, Span, SpanHandle};
use std::sync::Arc;

/// Default number of delivered events covered by one `des.batch` span.
pub const DEFAULT_BATCH_EVENTS: u64 = 4096;

/// Why a schedule request was rejected.
///
/// Scheduling bugs used to surface as panics deep inside [`SimTime`]
/// arithmetic (a negative or NaN delay reaching `now + delay`); the typed
/// error names the actual contract violation and lets model code that
/// computes delays from untrusted inputs handle it without corrupting the
/// calendar ordering. The panicking [`Engine::schedule_in`] /
/// [`Engine::schedule_at`] wrappers delegate to the `try_` variants, so
/// both paths enforce identical validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The relative delay was NaN or infinite.
    NonFiniteDelay {
        /// The offending delay, in seconds.
        delay: f64,
    },
    /// The relative delay was negative.
    NegativeDelay {
        /// The offending delay, in seconds.
        delay: f64,
    },
    /// The absolute delivery time precedes the current clock.
    IntoThePast {
        /// The requested delivery time, in seconds.
        time: f64,
        /// The engine clock at the time of the request, in seconds.
        now: f64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteDelay { delay } => {
                write!(f, "cannot schedule at a non-finite delay ({delay})")
            }
            Self::NegativeDelay { delay } => {
                write!(f, "cannot schedule at a negative delay ({delay})")
            }
            Self::IntoThePast { time, now } => {
                write!(f, "cannot schedule into the past: t={time} < now={now}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A discrete-event simulation engine over event payloads of type `E`.
pub struct Engine<E> {
    calendar: Calendar<E>,
    now: SimTime,
    processed: u64,
    scheduled: u64,
    horizon: Option<SimTime>,
    max_events: Option<u64>,
    collector: Option<Arc<dyn Collector>>,
    /// Parent for `des.batch` spans (see [`Engine::set_span_parent`]).
    span_parent: Option<SpanHandle>,
    /// The open `des.batch` span, when batch spans are armed.
    batch_span: Option<Span>,
    /// Events per batch span.
    batch_size: u64,
    /// Events remaining in the current batch; 0 disarms the per-event
    /// countdown entirely, so the unarmed hot path pays one integer
    /// compare per event.
    batch_left: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and no horizon.
    pub fn new() -> Self {
        Self {
            calendar: Calendar::new(),
            now: SimTime::ZERO,
            processed: 0,
            scheduled: 0,
            horizon: None,
            max_events: None,
            collector: None,
            span_parent: None,
            batch_span: None,
            batch_size: DEFAULT_BATCH_EVENTS,
            batch_left: 0,
        }
    }

    /// Attaches a telemetry collector. The engine emits `des.compact`
    /// whenever a cancellation triggers a calendar compaction (heap
    /// rebuild); all events are purely observational — simulation results
    /// are bit-identical with or without a collector.
    pub fn set_collector(&mut self, collector: Arc<dyn Collector>) {
        self.collector = Some(collector);
    }

    /// Arms per-batch causal spans: every [`Engine::batch_events`]
    /// delivered events close one `des.batch` span (carrying the event
    /// count, sim time, and calendar depth) and open the next, all
    /// parented under `parent` — typically the `sim.replication` or
    /// `sim.churn` span driving this engine. The final partial batch
    /// closes when [`Engine::next_event`] first returns `None`.
    ///
    /// Spans are observational only; delivery order and results are
    /// bit-identical whether or not batch spans are armed.
    pub fn set_span_parent(&mut self, parent: SpanHandle) {
        self.span_parent = Some(parent);
        self.arm_batch_spans();
    }

    /// Sets the batch-span granularity (events per `des.batch` span,
    /// clamped to ≥ 1). Takes effect from the next batch boundary, or
    /// immediately if batch spans are already armed.
    pub fn set_batch_events(&mut self, events: u64) {
        self.batch_size = events.max(1);
        if self.span_parent.is_some() {
            self.arm_batch_spans();
        }
    }

    /// The current batch-span granularity.
    pub fn batch_events(&self) -> u64 {
        self.batch_size
    }

    /// Closes any open batch span and opens a fresh one under the
    /// configured parent.
    fn arm_batch_spans(&mut self) {
        self.finish_batch_span();
        if let Some(parent) = &self.span_parent {
            self.batch_span = Some(parent.child(
                "des.batch",
                &[
                    ("batch", self.batch_size.into()),
                    ("start", self.processed.into()),
                ],
            ));
            self.batch_left = self.batch_size;
        }
    }

    /// Closes the current batch span (full batch) and rolls to the next.
    fn roll_batch_span(&mut self) {
        if let Some(span) = self.batch_span.take() {
            span.close_with(&[
                ("events", self.batch_size.into()),
                ("t", self.now.as_secs().into()),
                ("depth", (self.calendar.len_upper_bound() as u64).into()),
            ]);
        }
        if let Some(parent) = &self.span_parent {
            self.batch_span = Some(parent.child(
                "des.batch",
                &[
                    ("batch", self.batch_size.into()),
                    ("start", self.processed.into()),
                ],
            ));
            self.batch_left = self.batch_size;
        }
    }

    /// Closes the partial batch at end of delivery and disarms the
    /// countdown (re-arm with [`Engine::set_span_parent`]).
    fn finish_batch_span(&mut self) {
        if let Some(span) = self.batch_span.take() {
            let done = self.batch_size - self.batch_left;
            span.close_with(&[("events", done.into()), ("t", self.now.as_secs().into())]);
        }
        self.batch_left = 0;
    }

    /// Bounds the total number of delivered events — a runaway-model
    /// backstop (an event handler that always schedules more work would
    /// otherwise loop forever inside [`Engine::run_with`]).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = Some(max);
    }

    /// Sets the run horizon: events scheduled *after* this time are never
    /// delivered ([`Engine::next_event`] returns `None` once the next
    /// pending event lies beyond it, leaving the clock at the horizon).
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events accepted into the calendar so far (including
    /// later-cancelled ones — cancellation does not unschedule for
    /// accounting purposes).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Schedules an event at an absolute time, rejecting times that
    /// precede the current clock (delivering an event in the past would
    /// corrupt causality).
    pub fn try_schedule_at(&mut self, time: SimTime, event: E) -> Result<EventId, ScheduleError> {
        if time < self.now {
            return Err(ScheduleError::IntoThePast {
                time: time.as_secs(),
                now: self.now.as_secs(),
            });
        }
        self.scheduled += 1;
        Ok(self.calendar.schedule(time, event))
    }

    /// Schedules an event `delay` seconds from now, rejecting negative or
    /// non-finite delays before they reach [`SimTime`] arithmetic.
    pub fn try_schedule_in(&mut self, delay: f64, event: E) -> Result<EventId, ScheduleError> {
        if !delay.is_finite() {
            return Err(ScheduleError::NonFiniteDelay { delay });
        }
        if delay < 0.0 {
            return Err(ScheduleError::NegativeDelay { delay });
        }
        self.scheduled += 1;
        Ok(self.calendar.schedule(self.now + delay, event))
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current clock — delivering an event in
    /// the past would corrupt causality, and doing so is always a model bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        match self.try_schedule_at(time, event) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Schedules an event `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite delay.
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventId {
        match self.try_schedule_in(delay, event) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Bulk-schedules a block of events at absolute times in a single
    /// calendar operation (see [`Calendar::schedule_batch`]), amortizing
    /// per-event scheduling overhead for generator loops that produce
    /// whole arrival blocks at once. Returns the number of events
    /// scheduled. Batch entries are not individually cancellable.
    ///
    /// # Panics
    ///
    /// Panics if any time precedes the current clock (the same contract
    /// as [`Engine::schedule_at`]).
    pub fn schedule_batch<I: IntoIterator<Item = (SimTime, E)>>(&mut self, events: I) -> usize {
        let now = self.now;
        let count = self
            .calendar
            .schedule_batch(events.into_iter().inspect(|(time, _)| {
                assert!(
                    *time >= now,
                    "cannot schedule into the past: t={time} < now={now}"
                );
            }));
        self.scheduled += count as u64;
        count
    }

    /// Cancels a pending event; `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let before = self.calendar.compactions();
        let pending = self.calendar.cancel(id);
        if self.calendar.compactions() > before {
            if let Some(c) = lb_telemetry::enabled(self.collector.as_ref()) {
                c.emit(
                    "des.compact",
                    &[
                        ("t", self.now.as_secs().into()),
                        ("depth", self.calendar.len_upper_bound().into()),
                        ("tombstones", self.calendar.tombstone_count().into()),
                        ("compactions", self.calendar.compactions().into()),
                    ],
                );
            }
        }
        pending
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.calendar.peek_time()
    }

    /// Entries currently stored in the calendar (pending events plus
    /// not-yet-skipped tombstones) — see [`Calendar::len_upper_bound`].
    pub fn calendar_depth(&self) -> usize {
        self.calendar.len_upper_bound()
    }

    /// Tombstones currently buffered in the calendar.
    pub fn calendar_tombstones(&self) -> usize {
        self.calendar.tombstone_count()
    }

    /// Calendar compactions (heap rebuilds) performed so far.
    pub fn calendar_compactions(&self) -> u64 {
        self.calendar.compactions()
    }

    /// Advances the clock to the next pending event and returns its
    /// payload; `None` when the calendar is exhausted or the next event
    /// lies beyond the horizon (in which case the clock is left at the
    /// horizon so time-integrated statistics stay exact).
    pub fn next_event(&mut self) -> Option<E> {
        if let Some(max) = self.max_events {
            if self.processed >= max {
                self.finish_batch_span();
                return None;
            }
        }
        let Some(next) = self.calendar.peek_time() else {
            self.finish_batch_span();
            return None;
        };
        if let Some(h) = self.horizon {
            if next > h {
                self.now = self.now.max(h);
                self.finish_batch_span();
                return None;
            }
        }
        let (time, payload) = self.calendar.pop()?;
        self.now = time;
        self.processed += 1;
        if self.batch_left > 0 {
            self.batch_left -= 1;
            if self.batch_left == 0 {
                self.roll_batch_span();
            }
        }
        Some(payload)
    }

    /// Runs the engine to completion (or horizon), delivering every event
    /// to `handler` along with the engine itself for follow-up scheduling.
    /// Returns the number of events delivered by this call.
    pub fn run_with<F: FnMut(&mut Engine<E>, E)>(&mut self, mut handler: F) -> u64 {
        let start = self.processed;
        while let Some(ev) = self.next_event() {
            handler(self, ev);
        }
        self.processed - start
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut eng = Engine::new();
        eng.schedule_in(2.0, "b");
        eng.schedule_in(1.0, "a");
        assert_eq!(eng.now(), SimTime::ZERO);
        assert_eq!(eng.next_event(), Some("a"));
        assert_eq!(eng.now(), SimTime::new(1.0));
        assert_eq!(eng.next_event(), Some("b"));
        assert_eq!(eng.now(), SimTime::new(2.0));
        assert_eq!(eng.next_event(), None);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(1.0, ());
        eng.next_event();
        eng.schedule_at(SimTime::new(0.5), ());
    }

    #[test]
    fn invalid_delays_are_typed_errors_not_calendar_corruption() {
        let mut eng = Engine::new();
        eng.schedule_in(1.0, "ok");
        eng.next_event();
        assert!(matches!(
            eng.try_schedule_in(f64::NAN, "bad").unwrap_err(),
            ScheduleError::NonFiniteDelay { delay } if delay.is_nan()
        ));
        assert_eq!(
            eng.try_schedule_in(f64::INFINITY, "bad").unwrap_err(),
            ScheduleError::NonFiniteDelay {
                delay: f64::INFINITY
            }
        );
        assert_eq!(
            eng.try_schedule_in(-0.5, "bad").unwrap_err(),
            ScheduleError::NegativeDelay { delay: -0.5 }
        );
        assert_eq!(
            eng.try_schedule_at(SimTime::new(0.25), "bad").unwrap_err(),
            ScheduleError::IntoThePast {
                time: 0.25,
                now: 1.0
            }
        );
        // The rejected requests left the calendar untouched: only the
        // valid follow-up is delivered, in order.
        eng.try_schedule_in(0.5, "later").unwrap();
        assert_eq!(eng.next_event(), Some("later"));
        assert_eq!(eng.next_event(), None);
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_panics_with_the_typed_message() {
        let mut eng = Engine::new();
        eng.schedule_in(-1.0, ());
    }

    #[test]
    fn batch_scheduling_delivers_in_order_with_fifo_ties() {
        let mut one = Engine::new();
        let mut bulk = Engine::new();
        let times = [2.0, 1.0, 1.0, 3.0];
        for (i, x) in times.iter().enumerate() {
            one.schedule_at(SimTime::new(*x), i);
        }
        let n = bulk.schedule_batch(times.iter().enumerate().map(|(i, x)| (SimTime::new(*x), i)));
        assert_eq!(n, times.len());
        let drain = |eng: &mut Engine<usize>| {
            let mut seen = Vec::new();
            eng.run_with(|_, i| seen.push(i));
            seen
        };
        assert_eq!(drain(&mut one), drain(&mut bulk));
    }

    #[test]
    fn horizon_stops_delivery_and_pins_clock() {
        let mut eng = Engine::new();
        eng.set_horizon(SimTime::new(5.0));
        eng.schedule_in(1.0, 1);
        eng.schedule_in(10.0, 10);
        assert_eq!(eng.next_event(), Some(1));
        assert_eq!(eng.next_event(), None);
        assert_eq!(eng.now(), SimTime::new(5.0));
        // The late event is still pending but never delivered.
        assert_eq!(eng.peek_time(), Some(SimTime::new(10.0)));
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut eng = Engine::new();
        eng.set_horizon(SimTime::new(5.0));
        eng.schedule_in(5.0, "edge");
        assert_eq!(eng.next_event(), Some("edge"));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut eng = Engine::new();
        let id = eng.schedule_in(1.0, "gone");
        eng.schedule_in(2.0, "kept");
        assert!(eng.cancel(id));
        assert_eq!(eng.next_event(), Some("kept"));
    }

    #[test]
    fn run_with_drives_cascading_events() {
        // Each event spawns the next until a counter runs out.
        let mut eng = Engine::new();
        eng.schedule_in(0.5, 5u32);
        let mut seen = Vec::new();
        let n = eng.run_with(|eng, k| {
            seen.push(k);
            if k > 0 {
                eng.schedule_in(0.5, k - 1);
            }
        });
        assert_eq!(n, 6);
        assert_eq!(seen, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(eng.now(), SimTime::new(3.0));
    }

    #[test]
    fn max_events_bound_stops_runaway_models() {
        // An event that always reschedules itself would loop forever
        // without the bound.
        let mut eng = Engine::new();
        eng.set_max_events(100);
        eng.schedule_in(1.0, ());
        let n = eng.run_with(|eng, ()| {
            eng.schedule_in(1.0, ());
        });
        assert_eq!(n, 100);
        assert_eq!(eng.events_processed(), 100);
        assert_eq!(eng.next_event(), None);
    }

    #[test]
    fn collector_sees_compactions_without_perturbing_delivery() {
        use lb_telemetry::MemoryCollector;
        // Mass cancellation forces at least one calendar compaction; the
        // delivered event stream must be identical with and without a
        // collector attached.
        let run = |collector: Option<Arc<MemoryCollector>>| {
            let mut eng = Engine::new();
            if let Some(c) = &collector {
                eng.set_collector(c.clone());
            }
            let ids: Vec<_> = (0..1000)
                .map(|i| eng.schedule_in(1.0 + i as f64, i))
                .collect();
            for id in ids.iter().take(501) {
                eng.cancel(*id);
            }
            let mut seen = Vec::new();
            eng.run_with(|_, i| seen.push(i));
            seen
        };
        let plain = run(None);
        let mem = Arc::new(MemoryCollector::default());
        let traced = run(Some(mem.clone()));
        assert_eq!(plain, traced);
        assert!(mem.count("des.compact") >= 1, "no compaction observed");
        assert_eq!(traced.len(), 499);
    }

    #[test]
    fn batch_spans_partition_the_run_and_close_on_exhaustion() {
        use lb_telemetry::{FieldValue, MemoryCollector, SPAN_CLOSE, SPAN_OPEN};

        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        let root = Span::root(Some(&collector), "test.root", &[]).unwrap();

        let mut eng = Engine::new();
        eng.set_collector(Arc::clone(&collector));
        eng.set_batch_events(100);
        eng.set_span_parent(root.handle());
        for i in 0..250u32 {
            eng.schedule_in(1.0 + f64::from(i), i);
        }
        let delivered = eng.run_with(|_, _| {});
        assert_eq!(delivered, 250);
        root.close();

        // Three batch spans (100 + 100 + 50) plus the test root, all
        // closed, each parented under the root.
        assert_eq!(mem.count(SPAN_OPEN), 4);
        assert_eq!(mem.count(SPAN_CLOSE), 4);
        let events = mem.events();
        let field_u64 = |fields: &[lb_telemetry::Field], key: &str| -> Option<u64> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| match v {
                    FieldValue::U64(n) => *n,
                    other => panic!("field {key} was {other:?}"),
                })
        };
        let root_id = field_u64(&events[0].1, "span").unwrap();
        let mut batch_events = Vec::new();
        for (name, fields) in &events {
            if *name == SPAN_OPEN && field_u64(fields, "span") != Some(root_id) {
                assert_eq!(field_u64(fields, "parent"), Some(root_id));
            }
            if *name == SPAN_CLOSE && field_u64(fields, "span") != Some(root_id) {
                batch_events.push(field_u64(fields, "events").unwrap());
            }
        }
        assert_eq!(batch_events, vec![100, 100, 50]);
    }

    #[test]
    fn batch_spans_do_not_perturb_delivery() {
        use lb_telemetry::MemoryCollector;

        let run = |spans: bool| {
            let mem = Arc::new(MemoryCollector::default());
            let collector: Arc<dyn Collector> = mem.clone();
            let root = Span::root(Some(&collector), "test.root", &[]).unwrap();
            let mut eng = Engine::new();
            if spans {
                eng.set_collector(Arc::clone(&collector));
                eng.set_batch_events(7);
                eng.set_span_parent(root.handle());
            }
            for i in 0..100u32 {
                eng.schedule_in(1.0 + f64::from(i % 13), i);
            }
            let mut seen = Vec::new();
            eng.run_with(|_, i| seen.push(i));
            root.close();
            seen
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_tie_breaking_through_engine() {
        let mut eng = Engine::new();
        for i in 0..5 {
            eng.schedule_at(SimTime::new(1.0), i);
        }
        let mut order = Vec::new();
        eng.run_with(|_, i| order.push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
