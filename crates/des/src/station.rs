//! A single-server FCFS run-to-completion station — the paper's computer.
//!
//! "Jobs which have been dispatched to a particular computer are
//! run-to-completion (i.e. no preemption) in FCFS order" (§4.1). The
//! station is a passive state machine driven by the event loop: `arrive`
//! may start service immediately, `complete` finishes the job in service
//! and promotes the head of the queue. The station also exposes its
//! **run-queue length**, the observable the paper's users sample to
//! estimate available processing rates.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A job travelling through the simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Sequence number, unique per run.
    pub id: u64,
    /// Index of the user that generated the job.
    pub user: usize,
    /// Time the job entered the system (dispatch moment).
    pub arrival: SimTime,
    /// Service demand at the station it was routed to, in seconds.
    pub service_time: f64,
}

/// Outcome of a job arrival at a station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// The server was idle; service starts now and will complete at the
    /// contained time (schedule a completion event for it).
    StartService(SimTime),
    /// The server was busy; the job joined the queue.
    Queued,
}

/// A single-server FCFS station.
#[derive(Debug, Clone)]
pub struct FcfsStation {
    in_service: Option<Job>,
    queue: VecDeque<Job>,
    completed: u64,
    busy_since: Option<SimTime>,
    busy_time: f64,
    // Time-integral of the run-queue length, for time-average L.
    queue_area: f64,
    last_change: SimTime,
}

impl FcfsStation {
    /// Creates an idle, empty station (clock origin at zero).
    pub fn new() -> Self {
        Self {
            in_service: None,
            queue: VecDeque::new(),
            completed: 0,
            busy_since: None,
            busy_time: 0.0,
            queue_area: 0.0,
            last_change: SimTime::ZERO,
        }
    }

    /// Number of jobs present (in service + waiting) — the *run-queue
    /// length* users observe.
    pub fn run_queue_length(&self) -> usize {
        usize::from(self.in_service.is_some()) + self.queue.len()
    }

    /// Jobs fully served so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the server is currently serving a job.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Accumulates the queue-length integral up to `now`.
    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_change);
        self.queue_area += dt * self.run_queue_length() as f64;
        self.last_change = now;
    }

    /// Handles a job arrival at time `now`.
    ///
    /// Returns [`Arrival::StartService`] with the completion time when the
    /// server was idle (the caller must schedule the completion event), or
    /// [`Arrival::Queued`] when the job had to wait.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite service demand.
    pub fn arrive(&mut self, job: Job, now: SimTime) -> Arrival {
        assert!(
            job.service_time.is_finite() && job.service_time >= 0.0,
            "invalid service time {}",
            job.service_time
        );
        self.integrate_to(now);
        if self.in_service.is_none() {
            self.in_service = Some(job);
            self.busy_since = Some(now);
            Arrival::StartService(now + job.service_time)
        } else {
            self.queue.push_back(job);
            Arrival::Queued
        }
    }

    /// Completes the job in service at time `now`.
    ///
    /// Returns the finished job and, if the queue was non-empty, the next
    /// job together with *its* completion time (the caller schedules it).
    ///
    /// # Panics
    ///
    /// Panics if the server was idle — a completion event without a job in
    /// service means the event wiring is broken.
    pub fn complete(&mut self, now: SimTime) -> (Job, Option<(Job, SimTime)>) {
        self.integrate_to(now);
        let finished = self
            .in_service
            .take()
            .expect("completion event fired on an idle station");
        self.completed += 1;
        if let Some(start) = self.busy_since.take() {
            self.busy_time += now.since(start);
        }
        let next = self.queue.pop_front().map(|job| {
            self.in_service = Some(job);
            self.busy_since = Some(now);
            (job, now + job.service_time)
        });
        (finished, next)
    }

    /// Crashes the station at time `now`: the job in service is
    /// preempted and every queued job stranded. All of them are returned
    /// (preempted job first, then the queue in FCFS order) so the caller
    /// can retry them elsewhere or count them lost.
    ///
    /// The caller must also cancel any completion event it scheduled for
    /// the preempted job — the station cannot reach into the calendar.
    /// After `fail` the station is idle and empty, ready to accept
    /// arrivals again once the model declares it repaired.
    pub fn fail(&mut self, now: SimTime) -> Vec<Job> {
        self.integrate_to(now);
        let mut stranded = Vec::with_capacity(self.run_queue_length());
        if let Some(job) = self.in_service.take() {
            // The aborted partial service still occupied the server.
            if let Some(start) = self.busy_since.take() {
                self.busy_time += now.since(start);
            }
            stranded.push(job);
        }
        stranded.extend(self.queue.drain(..));
        stranded
    }

    /// Fraction of time the server has been busy up to `now` (utilization
    /// estimate). Counts an in-progress service up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let t = now.as_secs();
        if t == 0.0 {
            return 0.0;
        }
        let in_progress = self.busy_since.map(|s| now.since(s)).unwrap_or(0.0);
        (self.busy_time + in_progress) / t
    }

    /// Time-average run-queue length over `[0, now]` (integrates the final
    /// segment up to `now` without mutating state).
    pub fn mean_queue_length(&self, now: SimTime) -> f64 {
        let t = now.as_secs();
        if t == 0.0 {
            return 0.0;
        }
        let tail = now.since(self.last_change) * self.run_queue_length() as f64;
        (self.queue_area + tail) / t
    }
}

impl Default for FcfsStation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival: f64, service: f64) -> Job {
        Job {
            id,
            user: 0,
            arrival: SimTime::new(arrival),
            service_time: service,
        }
    }

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn idle_arrival_starts_service() {
        let mut st = FcfsStation::new();
        assert!(!st.busy());
        let a = st.arrive(job(1, 0.0, 2.0), t(0.0));
        assert_eq!(a, Arrival::StartService(t(2.0)));
        assert!(st.busy());
        assert_eq!(st.run_queue_length(), 1);
    }

    #[test]
    fn busy_arrival_queues_fifo() {
        let mut st = FcfsStation::new();
        st.arrive(job(1, 0.0, 5.0), t(0.0));
        assert_eq!(st.arrive(job(2, 1.0, 1.0), t(1.0)), Arrival::Queued);
        assert_eq!(st.arrive(job(3, 2.0, 1.0), t(2.0)), Arrival::Queued);
        assert_eq!(st.run_queue_length(), 3);

        let (done, next) = st.complete(t(5.0));
        assert_eq!(done.id, 1);
        let (next_job, next_done) = next.unwrap();
        assert_eq!(next_job.id, 2, "FCFS promotes in arrival order");
        assert_eq!(next_done, t(6.0));

        let (done, next) = st.complete(t(6.0));
        assert_eq!(done.id, 2);
        assert_eq!(next.unwrap().0.id, 3);

        let (done, next) = st.complete(t(7.0));
        assert_eq!(done.id, 3);
        assert!(next.is_none());
        assert!(!st.busy());
        assert_eq!(st.completed(), 3);
    }

    #[test]
    #[should_panic(expected = "idle station")]
    fn completing_idle_station_panics() {
        FcfsStation::new().complete(t(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid service time")]
    fn rejects_nan_service() {
        FcfsStation::new().arrive(job(1, 0.0, f64::NAN), t(0.0));
    }

    #[test]
    fn zero_service_job_completes_instantly() {
        let mut st = FcfsStation::new();
        let a = st.arrive(job(1, 0.0, 0.0), t(0.0));
        assert_eq!(a, Arrival::StartService(t(0.0)));
        let (done, next) = st.complete(t(0.0));
        assert_eq!(done.id, 1);
        assert!(next.is_none());
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut st = FcfsStation::new();
        st.arrive(job(1, 0.0, 2.0), t(0.0));
        st.complete(t(2.0));
        // Busy [0,2], idle [2,4].
        assert!((st.utilization(t(4.0)) - 0.5).abs() < 1e-12);
        // In-progress service counts.
        st.arrive(job(2, 4.0, 10.0), t(4.0));
        assert!((st.utilization(t(8.0)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_queue_length_integrates_piecewise() {
        let mut st = FcfsStation::new();
        // [0,1): empty (0). [1,3): one job (1). [3,5): two jobs (2).
        st.arrive(job(1, 1.0, 4.0), t(1.0));
        st.arrive(job(2, 3.0, 1.0), t(3.0));
        // Integral to 5: 0*1 + 1*2 + 2*2 = 6; mean = 6/5.
        assert!((st.mean_queue_length(t(5.0)) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn fail_returns_preempted_and_stranded_jobs_in_order() {
        let mut st = FcfsStation::new();
        st.arrive(job(1, 0.0, 5.0), t(0.0));
        st.arrive(job(2, 1.0, 1.0), t(1.0));
        st.arrive(job(3, 2.0, 1.0), t(2.0));
        let stranded = st.fail(t(3.0));
        assert_eq!(
            stranded.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(!st.busy());
        assert_eq!(st.run_queue_length(), 0);
        assert_eq!(st.completed(), 0, "preempted work is not a completion");
        // The aborted partial service [0,3) still counts as busy time.
        assert!((st.utilization(t(6.0)) - 0.5).abs() < 1e-12);
        // The station accepts work again after repair.
        assert_eq!(
            st.arrive(job(4, 6.0, 1.0), t(6.0)),
            Arrival::StartService(t(7.0))
        );
    }

    #[test]
    fn failing_an_idle_station_is_a_no_op() {
        let mut st = FcfsStation::new();
        assert!(st.fail(t(1.0)).is_empty());
        assert!(!st.busy());
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let st = FcfsStation::new();
        assert_eq!(st.utilization(t(0.0)), 0.0);
        assert_eq!(st.mean_queue_length(t(0.0)), 0.0);
    }
}
