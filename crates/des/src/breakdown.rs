//! Server breakdown/repair processes and job-retry policies.
//!
//! The paper's computers never fail; the churn extension models each
//! station as an alternating renewal process — exponentially distributed
//! up-times (mean MTBF) and repair times (mean MTTR) — the standard
//! machine-repair model. A crash preempts the job in service and strands
//! the queue ([`crate::station::FcfsStation::fail`] returns them); the
//! dispatcher re-submits those jobs under a capped exponential
//! [`RetryBackoff`], after which a job is counted *lost*, not served.
//!
//! Both pieces are policy objects only: they sample durations and compute
//! delays, while the event wiring (scheduling failures, repairs and
//! retries) stays in the model layer, keeping this crate's kernel
//! generic.

use crate::rng::RngStream;

/// An alternating up/down renewal process for one station: exponential
/// time-to-failure with mean `mtbf`, exponential repair with mean `mttr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownProcess {
    mtbf: f64,
    mttr: f64,
}

impl BreakdownProcess {
    /// Creates a process with the given mean time between failures and
    /// mean time to repair, both in seconds.
    ///
    /// # Panics
    ///
    /// Panics when either mean is non-positive or non-finite.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        assert!(
            mtbf.is_finite() && mtbf > 0.0,
            "MTBF must be positive and finite, got {mtbf}"
        );
        assert!(
            mttr.is_finite() && mttr > 0.0,
            "MTTR must be positive and finite, got {mttr}"
        );
        Self { mtbf, mttr }
    }

    /// Mean time between failures.
    pub fn mtbf(&self) -> f64 {
        self.mtbf
    }

    /// Mean time to repair.
    pub fn mttr(&self) -> f64 {
        self.mttr
    }

    /// Steady-state availability `MTBF / (MTBF + MTTR)` — the long-run
    /// fraction of time the station is up.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }

    /// Samples the next up-time (delay from repair completion — or start
    /// of the run — to the next failure).
    pub fn sample_uptime(&self, rng: &mut RngStream) -> f64 {
        rng.exponential(1.0 / self.mtbf)
    }

    /// Samples the next repair duration (delay from failure to the
    /// station coming back up).
    pub fn sample_repair(&self, rng: &mut RngStream) -> f64 {
        rng.exponential(1.0 / self.mttr)
    }
}

/// Capped exponential backoff for retrying jobs preempted by a crash:
/// attempt `k` (0-based) waits `min(base · factor^k, cap)` seconds;
/// after `max_attempts` retries the job is given up as lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBackoff {
    base: f64,
    factor: f64,
    cap: f64,
    max_attempts: u32,
}

impl RetryBackoff {
    /// Creates a policy with first delay `base`, multiplier `factor`,
    /// ceiling `cap`, and at most `max_attempts` retries per job.
    ///
    /// # Panics
    ///
    /// Panics when `base` or `cap` is non-positive/non-finite, when
    /// `factor < 1`, or when `cap < base`.
    pub fn new(base: f64, factor: f64, cap: f64, max_attempts: u32) -> Self {
        assert!(
            base.is_finite() && base > 0.0,
            "backoff base must be positive and finite, got {base}"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "backoff factor must be >= 1, got {factor}"
        );
        assert!(
            cap.is_finite() && cap >= base,
            "backoff cap must be finite and >= base, got {cap}"
        );
        Self {
            base,
            factor,
            cap,
            max_attempts,
        }
    }

    /// Maximum number of retries per job.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Delay before retry number `attempt` (0-based), or `None` when the
    /// retry budget is exhausted and the job must be counted lost.
    pub fn delay(&self, attempt: u32) -> Option<f64> {
        if attempt >= self.max_attempts {
            return None;
        }
        // factor^attempt can overflow to inf for large budgets; the cap
        // keeps the result finite either way.
        let d = self.base * self.factor.powi(attempt.min(1_000) as i32);
        Some(d.min(self.cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_mtbf_fraction() {
        let b = BreakdownProcess::new(90.0, 10.0);
        assert!((b.availability() - 0.9).abs() < 1e-12);
        assert_eq!(b.mtbf(), 90.0);
        assert_eq!(b.mttr(), 10.0);
    }

    #[test]
    fn samples_have_the_right_means() {
        let b = BreakdownProcess::new(50.0, 5.0);
        let mut rng = RngStream::new(42, 0);
        let n = 20_000;
        let up: f64 = (0..n).map(|_| b.sample_uptime(&mut rng)).sum::<f64>() / n as f64;
        let down: f64 = (0..n).map(|_| b.sample_repair(&mut rng)).sum::<f64>() / n as f64;
        assert!((up - 50.0).abs() < 2.0, "mean uptime {up}");
        assert!((down - 5.0).abs() < 0.2, "mean repair {down}");
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn rejects_bad_mtbf() {
        BreakdownProcess::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "MTTR")]
    fn rejects_bad_mttr() {
        BreakdownProcess::new(1.0, f64::NAN);
    }

    #[test]
    fn backoff_doubles_up_to_the_cap_then_gives_up() {
        let p = RetryBackoff::new(0.1, 2.0, 0.5, 4);
        assert_eq!(p.delay(0), Some(0.1));
        assert_eq!(p.delay(1), Some(0.2));
        assert_eq!(p.delay(2), Some(0.4));
        assert_eq!(p.delay(3), Some(0.5)); // capped
        assert_eq!(p.delay(4), None); // budget exhausted: job lost
        assert_eq!(p.max_attempts(), 4);
    }

    #[test]
    fn zero_budget_loses_immediately() {
        let p = RetryBackoff::new(1.0, 2.0, 8.0, 0);
        assert_eq!(p.delay(0), None);
    }

    #[test]
    fn huge_attempt_numbers_stay_finite() {
        let p = RetryBackoff::new(1.0, 2.0, 30.0, u32::MAX);
        assert_eq!(p.delay(100_000), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_shrinking_factor() {
        RetryBackoff::new(1.0, 0.5, 2.0, 3);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_cap_below_base() {
        RetryBackoff::new(1.0, 2.0, 0.5, 3);
    }
}
