//! Server breakdown/repair processes and job-retry policies.
//!
//! The paper's computers never fail; the churn extension models each
//! station as an alternating renewal process — exponentially distributed
//! up-times (mean MTBF) and repair times (mean MTTR) — the standard
//! machine-repair model. A crash preempts the job in service and strands
//! the queue ([`crate::station::FcfsStation::fail`] returns them); the
//! dispatcher re-submits those jobs under a capped exponential
//! [`RetryBackoff`], after which a job is counted *lost*, not served.
//!
//! Both pieces are policy objects only: they sample durations and compute
//! delays, while the event wiring (scheduling failures, repairs and
//! retries) stays in the model layer, keeping this crate's kernel
//! generic.

use crate::rng::RngStream;

// The retry policy proper lives in the shared `lb-retry` crate so the
// asynchronous equilibration runtime can reuse it for message retries;
// re-exported here because the DES churn model is its original home.
pub use lb_retry::RetryBackoff;

/// An alternating up/down renewal process for one station: exponential
/// time-to-failure with mean `mtbf`, exponential repair with mean `mttr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownProcess {
    mtbf: f64,
    mttr: f64,
}

impl BreakdownProcess {
    /// Creates a process with the given mean time between failures and
    /// mean time to repair, both in seconds.
    ///
    /// # Panics
    ///
    /// Panics when either mean is non-positive or non-finite.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        assert!(
            mtbf.is_finite() && mtbf > 0.0,
            "MTBF must be positive and finite, got {mtbf}"
        );
        assert!(
            mttr.is_finite() && mttr > 0.0,
            "MTTR must be positive and finite, got {mttr}"
        );
        Self { mtbf, mttr }
    }

    /// Mean time between failures.
    pub fn mtbf(&self) -> f64 {
        self.mtbf
    }

    /// Mean time to repair.
    pub fn mttr(&self) -> f64 {
        self.mttr
    }

    /// Steady-state availability `MTBF / (MTBF + MTTR)` — the long-run
    /// fraction of time the station is up.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }

    /// Samples the next up-time (delay from repair completion — or start
    /// of the run — to the next failure).
    pub fn sample_uptime(&self, rng: &mut RngStream) -> f64 {
        rng.exponential(1.0 / self.mtbf)
    }

    /// Samples the next repair duration (delay from failure to the
    /// station coming back up).
    pub fn sample_repair(&self, rng: &mut RngStream) -> f64 {
        rng.exponential(1.0 / self.mttr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_mtbf_fraction() {
        let b = BreakdownProcess::new(90.0, 10.0);
        assert!((b.availability() - 0.9).abs() < 1e-12);
        assert_eq!(b.mtbf(), 90.0);
        assert_eq!(b.mttr(), 10.0);
    }

    #[test]
    fn samples_have_the_right_means() {
        let b = BreakdownProcess::new(50.0, 5.0);
        let mut rng = RngStream::new(42, 0);
        let n = 20_000;
        let up: f64 = (0..n).map(|_| b.sample_uptime(&mut rng)).sum::<f64>() / n as f64;
        let down: f64 = (0..n).map(|_| b.sample_repair(&mut rng)).sum::<f64>() / n as f64;
        assert!((up - 50.0).abs() < 2.0, "mean uptime {up}");
        assert!((down - 5.0).abs() < 0.2, "mean repair {down}");
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn rejects_bad_mtbf() {
        BreakdownProcess::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "MTTR")]
    fn rejects_bad_mttr() {
        BreakdownProcess::new(1.0, f64::NAN);
    }

    /// The policy moved to `lb-retry`; the historical path must keep
    /// working for the churn model and downstream callers.
    #[test]
    fn reexported_backoff_behaves() {
        let p = RetryBackoff::new(0.1, 2.0, 0.5, 4);
        assert_eq!(p.delay(0), Some(0.1));
        assert_eq!(p.delay(3), Some(0.5)); // capped
        assert_eq!(p.delay(4), None); // budget exhausted: job lost
    }
}
