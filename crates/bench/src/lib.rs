//! # lb-bench — benchmark support
//!
//! The actual benchmarks live in `benches/` (Criterion harnesses, one per
//! paper table/figure plus design-choice ablations):
//!
//! * `best_reply` — the OPTIMAL algorithm's O(n log n) scaling vs the
//!   generic gradient solver (the paper's "complex algorithms" contrast).
//! * `nash_convergence` — Figures 2–3 workloads: NASH_0 vs NASH_P, user
//!   sweeps.
//! * `schemes` — Figures 4–6 workloads: per-scheme computation cost.
//! * `des_engine` — simulator throughput and event-calendar ablation.
//! * `ablations` — Gauss–Seidel vs Jacobi, GOS decompositions,
//!   distributed ring vs sequential solver.
//!
//! This library crate only hosts small shared helpers.

#![deny(missing_docs)]
#![warn(clippy::all)]

use lb_game::model::SystemModel;

/// A synthetic heterogeneous rate vector of length `n` cycling through
/// the Table-1 speed classes — used to scale benchmarks beyond 16
/// computers while keeping the paper's heterogeneity profile.
pub fn scaled_rates(n: usize) -> Vec<f64> {
    const CLASSES: [f64; 4] = [10.0, 20.0, 50.0, 100.0];
    (0..n).map(|i| CLASSES[i % CLASSES.len()]).collect()
}

/// A model with `n` computers (Table-1 speed classes) and `m` equal users
/// at the given utilization.
///
/// # Panics
///
/// Panics on invalid parameters (bench configuration error).
pub fn scaled_model(n: usize, m: usize, rho: f64) -> SystemModel {
    SystemModel::with_equal_users(scaled_rates(n), m, rho).expect("valid bench configuration")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rates_cycle_classes() {
        let r = scaled_rates(6);
        assert_eq!(r, vec![10.0, 20.0, 50.0, 100.0, 10.0, 20.0]);
    }

    #[test]
    fn scaled_model_is_valid() {
        let m = scaled_model(64, 8, 0.6);
        assert_eq!(m.num_computers(), 64);
        assert_eq!(m.num_users(), 8);
        assert!((m.system_utilization() - 0.6).abs() < 1e-12);
    }
}
