//! Cost of one best-reply computation (the OPTIMAL algorithm, Theorem
//! 2.1) as the system grows, against the generic exponentiated-gradient
//! solver — quantifying the paper's point that the closed form makes the
//! per-iteration work trivial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lb_bench::scaled_rates;
use lb_game::best_reply::{water_fill_flows, water_fill_flows_into, WaterFillScratch};
use lb_game::gradient::exponentiated_gradient_flows;
use std::hint::black_box;

fn bench_water_filling_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_water_filling");
    for n in [16, 64, 256, 1024, 4096] {
        let rates = scaled_rates(n);
        let demand = rates.iter().sum::<f64>() * 0.6;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| water_fill_flows(black_box(&rates), black_box(demand)).unwrap());
        });
    }
    group.finish();
}

fn bench_gradient_vs_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_reply_solvers_n16");
    let rates = scaled_rates(16);
    let demand = rates.iter().sum::<f64>() * 0.6;
    group.bench_function("water_filling_closed_form", |b| {
        b.iter(|| water_fill_flows(black_box(&rates), black_box(demand)).unwrap());
    });
    group.bench_function("exponentiated_gradient_2000_iters", |b| {
        b.iter(|| {
            exponentiated_gradient_flows(black_box(&rates), black_box(demand), 2000).unwrap()
        });
    });
    group.finish();
}

fn bench_scratch_reuse(c: &mut Criterion) {
    // The allocation-free entry point the solver hot loop uses, against
    // the allocating wrapper — the delta is exactly the per-call cost of
    // allocating the sort-index and output buffers.
    let mut group = c.benchmark_group("water_filling_scratch_reuse");
    for n in [16, 256, 4096] {
        let rates = scaled_rates(n);
        let demand = rates.iter().sum::<f64>() * 0.6;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("alloc_per_call", n), &n, |b, _| {
            b.iter(|| water_fill_flows(black_box(&rates), black_box(demand)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reused_scratch", n), &n, |b, _| {
            let mut scratch = WaterFillScratch::default();
            let mut out = Vec::new();
            b.iter(|| {
                water_fill_flows_into(black_box(&rates), black_box(demand), &mut scratch, &mut out)
                    .unwrap();
                out[0]
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_water_filling_scaling,
    bench_gradient_vs_closed_form,
    bench_scratch_reuse
);
criterion_main!(benches);
