//! Simulator performance: event-calendar operations (with a sorted-Vec
//! baseline ablation) and end-to-end M/M/1-bank throughput — the
//! substrate cost behind the paper's 1–2M-job runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lb_des::calendar::Calendar;
use lb_des::time::SimTime;
use lb_game::model::SystemModel;
use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};
use lb_sim::scenario::{run_replication, SimulationConfig};
use std::hint::black_box;

/// Deterministic pseudo-random times for calendar stress.
fn times(n: usize) -> Vec<f64> {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1e6
        })
        .collect()
}

/// The naive baseline: keep a Vec sorted by insertion (binary search +
/// shift). O(n) insert, O(1) pop — loses badly once the pending set grows.
struct SortedVecCalendar {
    entries: Vec<(f64, u64)>,
    seq: u64,
}

impl SortedVecCalendar {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, t: f64) {
        let key = (t, self.seq);
        self.seq += 1;
        // Descending so pop() takes the earliest from the back.
        let pos = self
            .entries
            .partition_point(|&(et, es)| (et, es) > (key.0, key.1));
        self.entries.insert(pos, key);
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        self.entries.pop()
    }
}

fn bench_calendar_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_calendar_10k_schedule_pop");
    let ts = times(10_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("binary_heap", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for &t in &ts {
                cal.schedule(SimTime::new(t), ());
            }
            while let Some(e) = cal.pop() {
                black_box(e);
            }
        });
    });
    group.bench_function("sorted_vec_baseline", |b| {
        b.iter(|| {
            let mut cal = SortedVecCalendar::new();
            for &t in &ts {
                cal.schedule(t);
            }
            while let Some(e) = cal.pop() {
                black_box(e);
            }
        });
    });
    group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_mm1_bank_jobs");
    group.sample_size(10);
    for jobs in [20_000u64, 100_000] {
        let model = SystemModel::table1_system(0.6).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let config = SimulationConfig {
            target_jobs: jobs,
            ..SimulationConfig::paper()
        };
        group.throughput(Throughput::Elements(jobs));
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, _| {
            b.iter(|| run_replication(black_box(&model), black_box(&profile), config, 42).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_calendar_ablation,
    bench_simulation_throughput
);
criterion_main!(benches);
