//! Ablations of the design choices DESIGN.md calls out:
//!
//! * update order — Gauss–Seidel (paper) vs Jacobi (simultaneous);
//! * GOS decomposition — Sequential (paper-like, unfair) vs Uniform;
//! * deployment — sequential in-process solver vs the threaded
//!   token-ring runtime (message-passing overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use lb_distributed::runtime::{DistributedNash, RingInit};
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver, UpdateOrder};
use lb_game::schemes::{Decomposition, GlobalOptimalScheme, LoadBalancingScheme};
use std::hint::black_box;

fn bench_update_order(c: &mut Criterion) {
    let model = SystemModel::table1_system(0.6).unwrap();
    let mut group = c.benchmark_group("ablation_update_order");
    group.bench_function("gauss_seidel", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::GaussSeidel)
                .tolerance(1e-4)
                .max_iterations(5000)
                .solve(black_box(&model))
                .unwrap()
        });
    });
    // Jacobi (simultaneous) updates DIVERGE on the 10-user paper system
    // (see `nash::tests::jacobi_diverges_beyond_two_users_here`): all
    // users pile onto the same machines each round until saturation.
    // Bench it on the largest configuration where it still converges
    // (two users), as a best-case comparison.
    let model_2u =
        SystemModel::with_equal_users(SystemModel::table1_rates(), 2, 0.6).expect("valid");
    group.bench_function("jacobi_2_users_best_case", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::Jacobi)
                .tolerance(1e-4)
                .max_iterations(5000)
                .solve(black_box(&model_2u))
                .unwrap()
        });
    });
    group.bench_function("gauss_seidel_2_users", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .tolerance(1e-4)
                .max_iterations(5000)
                .solve(black_box(&model_2u))
                .unwrap()
        });
    });
    group.bench_function("random_permutation", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::RandomPermutation(7))
                .tolerance(1e-4)
                .max_iterations(5000)
                .solve(black_box(&model))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_gos_decomposition(c: &mut Criterion) {
    let model = SystemModel::table1_system(0.6).unwrap();
    let mut group = c.benchmark_group("ablation_gos_decomposition");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            GlobalOptimalScheme::new(Decomposition::Sequential)
                .compute(black_box(&model))
                .unwrap()
        });
    });
    group.bench_function("uniform", |b| {
        b.iter(|| {
            GlobalOptimalScheme::new(Decomposition::Uniform)
                .compute(black_box(&model))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_deployment(c: &mut Criterion) {
    let model = SystemModel::table1_system(0.6).unwrap();
    let mut group = c.benchmark_group("ablation_deployment");
    group.sample_size(10);
    group.bench_function("sequential_solver", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .tolerance(1e-4)
                .solve(black_box(&model))
                .unwrap()
        });
    });
    group.bench_function("threaded_token_ring", |b| {
        b.iter(|| {
            DistributedNash::new()
                .init(RingInit::Proportional)
                .tolerance(1e-4)
                .run(black_box(&model))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_ring_scaling(c: &mut Criterion) {
    // Wall-clock of the threaded ring as the user population grows
    // (thread + channel overhead vs the sequential solver's loop).
    let mut group = c.benchmark_group("ablation_ring_scaling");
    group.sample_size(10);
    for m in [2usize, 8, 32] {
        let model =
            SystemModel::with_equal_users(SystemModel::table1_rates(), m, 0.6).expect("valid");
        group.bench_function(format!("{m}_users"), |b| {
            b.iter(|| {
                DistributedNash::new()
                    .init(RingInit::Proportional)
                    .tolerance(1e-4)
                    .max_rounds(5000)
                    .run(black_box(&model))
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_order,
    bench_gos_decomposition,
    bench_deployment,
    bench_ring_scaling
);
criterion_main!(benches);
