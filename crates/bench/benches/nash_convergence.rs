//! Figures 2–3 as benchmarks: wall-clock cost of computing the Nash
//! equilibrium with the NASH_0 and NASH_P initializations on the paper's
//! configurations (16 Table-1 computers; 10 heterogeneous or 4–32 equal
//! users; ε = 1e-4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use std::hint::black_box;

fn bench_fig2_initializations(c: &mut Criterion) {
    let model = SystemModel::table1_system(0.6).unwrap();
    let mut group = c.benchmark_group("fig2_nash_table1_rho60");
    group.bench_function("NASH_0", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Zero)
                .tolerance(1e-4)
                .solve(black_box(&model))
                .unwrap()
        });
    });
    group.bench_function("NASH_P", |b| {
        b.iter(|| {
            NashSolver::new(Initialization::Proportional)
                .tolerance(1e-4)
                .solve(black_box(&model))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_fig3_user_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_nash_vs_users");
    group.sample_size(10);
    for m in [4usize, 8, 16, 32] {
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), m, 0.6).unwrap();
        group.bench_with_input(BenchmarkId::new("NASH_P", m), &m, |b, _| {
            b.iter(|| {
                NashSolver::new(Initialization::Proportional)
                    .tolerance(1e-4)
                    .max_iterations(5000)
                    .solve(black_box(&model))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_utilization_effect(c: &mut Criterion) {
    // Convergence slows near saturation; quantify the cost growth.
    let mut group = c.benchmark_group("nash_vs_utilization");
    group.sample_size(10);
    for rho_pct in [30u32, 60, 90] {
        let model = SystemModel::table1_system(f64::from(rho_pct) / 100.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rho_pct), &rho_pct, |b, _| {
            b.iter(|| {
                NashSolver::new(Initialization::Proportional)
                    .tolerance(1e-4)
                    .max_iterations(5000)
                    .solve(black_box(&model))
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2_initializations,
    bench_fig3_user_sweep,
    bench_utilization_effect
);
criterion_main!(benches);
