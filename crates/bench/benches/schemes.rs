//! Figures 4–6 as benchmarks: the cost of computing each scheme's
//! profile on the paper's workloads (the Table-1 utilization sweep and
//! the heterogeneity sweep), plus full figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_experiments::{fig4, fig5, fig6};
use lb_game::model::SystemModel;
use lb_game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, NashScheme,
    ProportionalScheme,
};
use std::hint::black_box;

fn bench_fig4_workload_per_scheme(c: &mut Criterion) {
    let model = SystemModel::table1_system(0.6).unwrap();
    let schemes: Vec<Box<dyn LoadBalancingScheme>> = vec![
        Box::new(NashScheme::default()),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ];
    let mut group = c.benchmark_group("fig4_scheme_compute_rho60");
    for scheme in &schemes {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| scheme.compute(black_box(&model)).unwrap());
        });
    }
    group.finish();
}

fn bench_fig6_skew_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_nash_vs_skew");
    for skew in [1u32, 4, 20] {
        let model = SystemModel::skewed_system(f64::from(skew), 0.6).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(skew), &skew, |b, _| {
            b.iter(|| NashScheme::default().compute(black_box(&model)).unwrap());
        });
    }
    group.finish();
}

fn bench_full_figures_analytic(c: &mut Criterion) {
    // Regenerating the complete analytic figures (what the CLI does).
    let mut group = c.benchmark_group("figure_regeneration");
    group.sample_size(10);
    group.bench_function("fig4_full_sweep", |b| {
        b.iter(|| fig4::run(None).unwrap());
    });
    group.bench_function("fig5_per_user", |b| {
        b.iter(|| fig5::run(None).unwrap());
    });
    group.bench_function("fig6_full_sweep", |b| {
        b.iter(|| fig6::run(None).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_workload_per_scheme,
    bench_fig6_skew_workload,
    bench_full_figures_analytic
);
criterion_main!(benches);
