//! Property tests on the queueing formulas: parameter-free identities
//! that must hold for every stable configuration.

use lb_queueing::{mg1, mm1, FlowVector, Mg1, Mm1, Mmc, ParallelQueues};
use proptest::prelude::*;

/// A stable (lambda, mu) pair with utilization bounded away from 1.
fn arb_stable() -> impl Strategy<Value = (f64, f64)> {
    (0.01f64..100.0, 0.0f64..0.99).prop_map(|(mu, rho)| (mu * rho, mu))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mm1_littles_law_and_decompositions((lambda, mu) in arb_stable()) {
        let q = Mm1::new(lambda, mu).unwrap();
        // L = lambda T, Lq = lambda Wq, T = Wq + 1/mu, L - Lq = rho.
        prop_assert!((q.jobs_in_system() - lambda * q.response_time()).abs() < 1e-9 * (1.0 + q.jobs_in_system()));
        prop_assert!((q.jobs_in_queue() - lambda * q.waiting_time()).abs() < 1e-9 * (1.0 + q.jobs_in_queue()));
        prop_assert!((q.response_time() - q.waiting_time() - 1.0 / mu).abs() < 1e-9 * q.response_time());
        prop_assert!((q.jobs_in_system() - q.jobs_in_queue() - q.utilization()).abs() < 1e-7 * (1.0 + q.jobs_in_system()));
    }

    #[test]
    fn mm1_response_time_is_increasing_in_load(mu in 0.1f64..50.0, r1 in 0.0f64..0.95, r2 in 0.0f64..0.95) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let t_lo = mm1::response_time(lo * mu, mu);
        let t_hi = mm1::response_time(hi * mu, mu);
        prop_assert!(t_lo <= t_hi);
    }

    #[test]
    fn mmc_is_bounded_by_mm1_and_fast_mm1((lambda, mu) in arb_stable(), c in 1u32..16) {
        // An M/M/c of c servers of rate mu is better than c separate
        // M/M/1 queues each taking lambda/c, and worse than one M/M/1
        // server of rate c*mu (the classic sandwich).
        let lambda_total = lambda * f64::from(c);
        let pool = Mmc::new(lambda_total, mu, c).unwrap();
        let split = Mm1::new(lambda, mu).unwrap();
        let super_server = Mm1::new(lambda_total, mu * f64::from(c)).unwrap();
        prop_assert!(pool.response_time() <= split.response_time() + 1e-9);
        prop_assert!(pool.response_time() >= super_server.response_time() - 1e-9);
    }

    #[test]
    fn mg1_interpolates_in_scv((lambda, mu) in arb_stable(), scv in 0.0f64..8.0) {
        let q = Mg1::new(lambda, mu, scv).unwrap();
        let md1 = Mg1::new(lambda, mu, 0.0).unwrap();
        // Waiting time is exactly linear in (1 + scv).
        prop_assert!((q.waiting_time() - md1.waiting_time() * (1.0 + scv)).abs() < 1e-9 * (1.0 + q.waiting_time()));
        // And M/M/1 sits at scv = 1.
        let mm = Mm1::new(lambda, mu).unwrap();
        let at_one = mg1::response_time(lambda, mu, 1.0);
        prop_assert!((at_one - mm.response_time()).abs() < 1e-9 * mm.response_time());
    }

    #[test]
    fn flow_vector_add_is_commutative_and_conserves(
        a in prop::collection::vec(0.0f64..10.0, 1..8),
        b in prop::collection::vec(0.0f64..10.0, 1..8),
    ) {
        let n = a.len().min(b.len());
        let fa = FlowVector::new(a[..n].to_vec()).unwrap();
        let fb = FlowVector::new(b[..n].to_vec()).unwrap();
        let ab = fa.add(&fb).unwrap();
        let ba = fb.add(&fa).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        prop_assert!((ab.total() - fa.total() - fb.total()).abs() < 1e-9 * (1.0 + ab.total()));
    }

    #[test]
    fn proportional_flows_always_stable_and_uniform(
        mu in prop::collection::vec(0.1f64..100.0, 1..10),
        rho in 0.01f64..0.99,
    ) {
        let sys = ParallelQueues::new(mu).unwrap();
        let phi = sys.arrival_rate_for_utilization(rho).unwrap();
        let f = sys.proportional_flows(phi).unwrap();
        f.check_stability(sys.rates()).unwrap();
        for u in f.utilizations(sys.rates()).unwrap() {
            prop_assert!((u - rho).abs() < 1e-9);
        }
    }

    #[test]
    fn sojourn_percentiles_are_monotone((lambda, mu) in arb_stable(), p1 in 0.01f64..0.99, p2 in 0.01f64..0.99) {
        let q = Mm1::new(lambda, mu).unwrap();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let t_lo = q.response_time_percentile(lo).unwrap();
        let t_hi = q.response_time_percentile(hi).unwrap();
        prop_assert!(t_lo <= t_hi);
    }
}
