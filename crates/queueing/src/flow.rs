//! Flow vectors: job-rate allocations across computers with the paper's
//! feasibility constraints.
//!
//! The paper's constraints on a user strategy (and, in aggregate, on total
//! flows) are:
//!
//! * **Positivity** — every component is `>= 0`;
//! * **Conservation** — components sum to the allocated total rate;
//! * **Stability** — the flow at each computer stays strictly below its
//!   processing rate.
//!
//! [`FlowVector`] packages an allocation in *rate* units (jobs/sec) together
//! with validated constructors and the functionals used everywhere above it
//! (total response time, per-queue utilization).

use crate::error::QueueingError;
use crate::mm1;
use crate::FEASIBILITY_EPS;

/// An allocation of job flow (jobs per unit time) across `n` computers.
///
/// # Examples
///
/// ```
/// use lb_queueing::FlowVector;
/// let f = FlowVector::new(vec![1.0, 2.0, 0.0]).unwrap();
/// assert_eq!(f.total(), 3.0);
/// assert_eq!(f.support(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowVector {
    flows: Vec<f64>,
    total: f64,
}

impl FlowVector {
    /// Builds a flow vector from per-computer rates, validating positivity.
    /// Tiny negative values within [`FEASIBILITY_EPS`] are clamped to zero.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::EmptySystem`] for an empty vector.
    /// * [`QueueingError::NegativeFlow`] for a component below `-eps`.
    /// * [`QueueingError::InvalidRate`] for non-finite components.
    pub fn new(flows: Vec<f64>) -> Result<Self, QueueingError> {
        if flows.is_empty() {
            return Err(QueueingError::EmptySystem);
        }
        let mut clamped = flows;
        for (i, x) in clamped.iter_mut().enumerate() {
            if !x.is_finite() {
                return Err(QueueingError::InvalidRate {
                    name: "flow",
                    value: *x,
                });
            }
            if *x < 0.0 {
                if *x < -FEASIBILITY_EPS {
                    return Err(QueueingError::NegativeFlow {
                        index: i,
                        value: *x,
                    });
                }
                *x = 0.0;
            }
        }
        let total = clamped.iter().sum();
        Ok(Self {
            flows: clamped,
            total,
        })
    }

    /// Builds a flow vector and additionally checks conservation against an
    /// expected total rate (up to a tolerance scaled by the magnitude of the
    /// total).
    ///
    /// # Errors
    ///
    /// Everything [`FlowVector::new`] raises, plus
    /// [`QueueingError::ConservationViolated`].
    pub fn with_total(flows: Vec<f64>, expected_total: f64) -> Result<Self, QueueingError> {
        let v = Self::new(flows)?;
        let tol = FEASIBILITY_EPS * (1.0 + expected_total.abs());
        if (v.total - expected_total).abs() > tol.max(1e-7 * expected_total.abs()) {
            return Err(QueueingError::ConservationViolated {
                sum: v.total,
                expected: expected_total,
            });
        }
        Ok(v)
    }

    /// A zero flow vector of dimension `n`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::EmptySystem`] when `n == 0`.
    pub fn zeros(n: usize) -> Result<Self, QueueingError> {
        Self::new(vec![0.0; n])
    }

    /// Number of computers (dimension).
    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the vector has dimension zero (never true for a constructed
    /// value; provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flow at computer `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.flows[i]
    }

    /// All per-computer flows.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.flows
    }

    /// Total allocated rate (sum of components).
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Indices of computers receiving strictly positive flow.
    pub fn support(&self) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks the stability constraint against processing rates `mu`:
    /// every component must stay strictly below its computer's rate.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::DimensionMismatch`] on length mismatch.
    /// * [`QueueingError::Unstable`] naming the first overloaded computer's
    ///   flow and rate.
    pub fn check_stability(&self, mu: &[f64]) -> Result<(), QueueingError> {
        if mu.len() != self.flows.len() {
            return Err(QueueingError::DimensionMismatch {
                expected: self.flows.len(),
                actual: mu.len(),
            });
        }
        for (&f, &m) in self.flows.iter().zip(mu) {
            if f >= m {
                return Err(QueueingError::Unstable {
                    arrival_rate: f,
                    capacity: m,
                });
            }
        }
        Ok(())
    }

    /// Aggregate expected response time of jobs routed by this flow vector
    /// through computers of rates `mu`, i.e. the time-average over jobs:
    ///
    /// ```text
    /// T = (1/Λ) · Σ_i λ_i / (μ_i − λ_i),     Λ = Σ_i λ_i
    /// ```
    ///
    /// Returns `0` for a zero flow vector and `+∞` if any used computer is
    /// saturated.
    ///
    /// # Errors
    ///
    /// [`QueueingError::DimensionMismatch`] on length mismatch.
    pub fn mean_response_time(&self, mu: &[f64]) -> Result<f64, QueueingError> {
        if mu.len() != self.flows.len() {
            return Err(QueueingError::DimensionMismatch {
                expected: self.flows.len(),
                actual: mu.len(),
            });
        }
        if self.total == 0.0 {
            return Ok(0.0);
        }
        let mut acc = 0.0;
        for (&f, &m) in self.flows.iter().zip(mu) {
            if f > 0.0 {
                acc += f * mm1::response_time(f, m);
            }
        }
        Ok(acc / self.total)
    }

    /// Per-computer utilizations `λ_i/μ_i`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::DimensionMismatch`] on length mismatch.
    pub fn utilizations(&self, mu: &[f64]) -> Result<Vec<f64>, QueueingError> {
        if mu.len() != self.flows.len() {
            return Err(QueueingError::DimensionMismatch {
                expected: self.flows.len(),
                actual: mu.len(),
            });
        }
        Ok(self.flows.iter().zip(mu).map(|(&f, &m)| f / m).collect())
    }

    /// Adds another flow vector componentwise (e.g. aggregating users).
    ///
    /// # Errors
    ///
    /// [`QueueingError::DimensionMismatch`] on length mismatch.
    pub fn add(&self, other: &FlowVector) -> Result<FlowVector, QueueingError> {
        if other.len() != self.len() {
            return Err(QueueingError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        FlowVector::new(
            self.flows
                .iter()
                .zip(&other.flows)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Scales every component by `factor >= 0`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidRate`] for a negative or non-finite factor.
    pub fn scale(&self, factor: f64) -> Result<FlowVector, QueueingError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "factor",
                value: factor,
            });
        }
        FlowVector::new(self.flows.iter().map(|x| x * factor).collect())
    }

    /// L1 distance to another flow vector, `Σ_i |λ_i − λ'_i|`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::DimensionMismatch`] on length mismatch.
    pub fn l1_distance(&self, other: &FlowVector) -> Result<f64, QueueingError> {
        if other.len() != self.len() {
            return Err(QueueingError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .flows
            .iter()
            .zip(&other.flows)
            .map(|(a, b)| (a - b).abs())
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_negative() {
        assert!(matches!(
            FlowVector::new(vec![]),
            Err(QueueingError::EmptySystem)
        ));
        assert!(matches!(
            FlowVector::new(vec![1.0, -0.5]),
            Err(QueueingError::NegativeFlow { index: 1, .. })
        ));
        assert!(FlowVector::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn clamps_tiny_negatives() {
        let f = FlowVector::new(vec![1.0, -1e-12]).unwrap();
        assert_eq!(f.get(1), 0.0);
    }

    #[test]
    fn conservation_check() {
        assert!(FlowVector::with_total(vec![1.0, 2.0], 3.0).is_ok());
        assert!(matches!(
            FlowVector::with_total(vec![1.0, 2.0], 4.0),
            Err(QueueingError::ConservationViolated { .. })
        ));
    }

    #[test]
    fn support_and_total() {
        let f = FlowVector::new(vec![0.0, 2.0, 0.0, 1.0]).unwrap();
        assert_eq!(f.support(), vec![1, 3]);
        assert_eq!(f.total(), 3.0);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn stability_check_detects_overload() {
        let f = FlowVector::new(vec![1.0, 5.0]).unwrap();
        assert!(f.check_stability(&[2.0, 6.0]).is_ok());
        assert!(matches!(
            f.check_stability(&[2.0, 5.0]),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(matches!(
            f.check_stability(&[2.0]),
            Err(QueueingError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mean_response_time_weights_by_flow() {
        // Two queues: flow 1 at mu=2 (T=1), flow 3 at mu=6 (T=1/3).
        let f = FlowVector::new(vec![1.0, 3.0]).unwrap();
        let t = f.mean_response_time(&[2.0, 6.0]).unwrap();
        let expected = (1.0 * 1.0 + 3.0 * (1.0 / 3.0)) / 4.0;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn mean_response_time_zero_flow_is_zero() {
        let f = FlowVector::zeros(3).unwrap();
        assert_eq!(f.mean_response_time(&[1.0, 1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn mean_response_time_saturated_is_infinite() {
        let f = FlowVector::new(vec![2.0]).unwrap();
        assert!(f.mean_response_time(&[2.0]).unwrap().is_infinite());
    }

    #[test]
    fn add_scale_distance() {
        let a = FlowVector::new(vec![1.0, 2.0]).unwrap();
        let b = FlowVector::new(vec![0.5, 0.5]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.as_slice(), &[1.5, 2.5]);
        let doubled = a.scale(2.0).unwrap();
        assert_eq!(doubled.as_slice(), &[2.0, 4.0]);
        assert!((a.l1_distance(&b).unwrap() - 2.0).abs() < 1e-12);
        assert!(a.scale(-1.0).is_err());
        let c = FlowVector::new(vec![1.0]).unwrap();
        assert!(a.add(&c).is_err());
        assert!(a.l1_distance(&c).is_err());
    }

    #[test]
    fn utilizations_match_definition() {
        let f = FlowVector::new(vec![1.0, 3.0]).unwrap();
        let u = f.utilizations(&[4.0, 6.0]).unwrap();
        assert!((u[0] - 0.25).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
    }
}
