//! # lb-queueing — M/M/1 queueing-theory substrate
//!
//! The load-balancing game of Grosu & Chronopoulos (IPDPS/APDCM 2002) models
//! every computer in the distributed system as an **M/M/1 queue**: Poisson
//! job arrivals, exponentially distributed service times, a single server,
//! FCFS discipline, run-to-completion. This crate provides the closed-form
//! queueing theory that the game sits on:
//!
//! * [`mm1`] — single M/M/1 station formulas (utilization, expected response
//!   time, queue lengths, waiting time, sojourn-time percentiles).
//! * [`mmc`] — M/M/c (Erlang-C) formulas, used by extension experiments that
//!   replace each computer with a small multicore pool.
//! * [`mg1`] — M/G/1 Pollaczek–Khinchine formulas, the theory behind the
//!   service-distribution robustness extension.
//! * [`gim1`] — exact GI/M/1 response times (root of `σ = A*(μ(1−σ))`),
//!   the theory behind the arrival-burstiness extension.
//! * [`flow`] — [`flow::FlowVector`], an allocation of job flow across
//!   computers with the paper's feasibility constraints (positivity,
//!   conservation, stability) as first-class checks.
//! * [`network`] — [`network::ParallelQueues`], a bank of heterogeneous
//!   M/M/1 queues in parallel: the "distributed system" of the paper, with
//!   aggregate expected-response-time functionals.
//!
//! Everything here is deterministic, allocation-light and `f64`-based; the
//! stochastic counterpart lives in `lb-des` (the discrete-event simulator).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod flow;
pub mod gim1;
pub mod mg1;
pub mod mm1;
pub mod mmc;
pub mod network;

pub use error::QueueingError;
pub use flow::FlowVector;
pub use mg1::Mg1;
pub use mm1::Mm1;
pub use mmc::Mmc;
pub use network::ParallelQueues;

/// Absolute tolerance used by feasibility checks throughout the workspace.
///
/// Flow conservation and positivity are validated up to this slack so that
/// profiles produced by floating-point solvers (water-filling, projected
/// gradient) round-trip through validation.
pub const FEASIBILITY_EPS: f64 = 1e-9;
