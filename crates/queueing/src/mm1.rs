//! Single-station M/M/1 queue: the model of one computer in the paper.
//!
//! A computer with processing rate `μ` receiving a Poisson job stream of
//! rate `λ < μ` behaves as an M/M/1 queue. The quantity the load-balancing
//! game optimizes is the **expected response (sojourn) time**
//!
//! ```text
//! F(λ) = 1 / (μ − λ)
//! ```
//!
//! (paper Eq. (1), with `λ = Σ_k s_ki φ_k` the total flow directed at the
//! computer by all users). The remaining formulas (queue lengths, waiting
//! time, percentiles) are standard Kleinrock Vol. 1 results and are used by
//! the simulator's validation layer.

use crate::error::QueueingError;

/// A single M/M/1 station with service rate `mu` and offered Poisson
/// arrival rate `lambda`.
///
/// Invariants enforced at construction: `mu > 0`, `lambda >= 0`, both
/// finite, and `lambda < mu` (stability).
///
/// # Examples
///
/// ```
/// use lb_queueing::Mm1;
/// let q = Mm1::new(0.5, 1.0).unwrap();
/// assert!((q.utilization() - 0.5).abs() < 1e-12);
/// assert!((q.response_time() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    lambda: f64,
    mu: f64,
}

impl Mm1 {
    /// Builds a stable M/M/1 queue with arrival rate `lambda` and service
    /// rate `mu`.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidRate`] if `mu <= 0`, `lambda < 0`, or either
    ///   is not finite.
    /// * [`QueueingError::Unstable`] if `lambda >= mu`.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, QueueingError> {
        if !mu.is_finite() || mu <= 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "mu",
                value: mu,
            });
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "lambda",
                value: lambda,
            });
        }
        if lambda >= mu {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity: mu,
            });
        }
        Ok(Self { lambda, mu })
    }

    /// Arrival rate `λ` (jobs per unit time).
    #[inline]
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Service rate `μ` (jobs per unit time).
    #[inline]
    pub fn service_rate(&self) -> f64 {
        self.mu
    }

    /// Server utilization `ρ = λ/μ ∈ [0, 1)`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Expected response (sojourn) time `F = 1/(μ − λ)` — paper Eq. (1).
    #[inline]
    pub fn response_time(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Expected waiting time in queue (excluding service):
    /// `W_q = ρ/(μ − λ)`.
    #[inline]
    pub fn waiting_time(&self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// Expected number of jobs in the system `L = ρ/(1 − ρ)` (Little's law
    /// applied to the response time).
    #[inline]
    pub fn jobs_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Expected number of jobs waiting in queue `L_q = ρ²/(1 − ρ)`.
    #[inline]
    pub fn jobs_in_queue(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Stationary probability of exactly `n` jobs in the system:
    /// `P(N = n) = (1 − ρ) ρⁿ`.
    pub fn prob_n_jobs(&self, n: u64) -> f64 {
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n.min(i32::MAX as u64) as i32)
    }

    /// Probability that the sojourn time exceeds `t`:
    /// `P(T > t) = exp(−(μ − λ) t)` (the sojourn time is exponential).
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidRate`] if `t` is negative or non-finite.
    pub fn prob_response_exceeds(&self, t: f64) -> Result<f64, QueueingError> {
        if !t.is_finite() || t < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "t",
                value: t,
            });
        }
        Ok((-(self.mu - self.lambda) * t).exp())
    }

    /// `p`-percentile of the sojourn-time distribution:
    /// `T_p = −ln(1 − p)/(μ − λ)`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidProbability`] unless `0 < p < 1`.
    pub fn response_time_percentile(&self, p: f64) -> Result<f64, QueueingError> {
        if !(0.0..1.0).contains(&p) || p <= 0.0 {
            return Err(QueueingError::InvalidProbability { value: p });
        }
        Ok(-(1.0 - p).ln() / (self.mu - self.lambda))
    }

    /// The *available* (residual) processing rate `μ − λ` seen by an
    /// additional infinitesimal stream — the quantity the paper's users
    /// estimate from run-queue lengths.
    #[inline]
    pub fn residual_rate(&self) -> f64 {
        self.mu - self.lambda
    }
}

/// Expected M/M/1 response time `1/(μ − λ)` without constructing a queue.
///
/// Returns `f64::INFINITY` when `λ >= μ` (saturated) so that optimizers can
/// use it as a penalty; both arguments are assumed finite.
///
/// # Examples
///
/// ```
/// use lb_queueing::mm1::response_time;
/// assert_eq!(response_time(0.0, 2.0), 0.5);
/// assert!(response_time(2.0, 2.0).is_infinite());
/// ```
#[inline]
pub fn response_time(lambda: f64, mu: f64) -> f64 {
    if lambda >= mu {
        f64::INFINITY
    } else {
        1.0 / (mu - lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructor_validates_rates() {
        assert!(matches!(
            Mm1::new(1.0, 0.0),
            Err(QueueingError::InvalidRate { name: "mu", .. })
        ));
        assert!(matches!(
            Mm1::new(1.0, -2.0),
            Err(QueueingError::InvalidRate { name: "mu", .. })
        ));
        assert!(matches!(
            Mm1::new(-1.0, 2.0),
            Err(QueueingError::InvalidRate { name: "lambda", .. })
        ));
        assert!(matches!(
            Mm1::new(f64::NAN, 2.0),
            Err(QueueingError::InvalidRate { .. })
        ));
        assert!(matches!(
            Mm1::new(1.0, f64::INFINITY),
            Err(QueueingError::InvalidRate { .. })
        ));
    }

    #[test]
    fn constructor_rejects_saturation() {
        assert!(matches!(
            Mm1::new(2.0, 2.0),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(matches!(
            Mm1::new(3.0, 2.0),
            Err(QueueingError::Unstable { .. })
        ));
    }

    #[test]
    fn zero_load_queue_is_pure_service() {
        let q = Mm1::new(0.0, 4.0).unwrap();
        assert!((q.response_time() - 0.25).abs() < EPS);
        assert_eq!(q.utilization(), 0.0);
        assert_eq!(q.waiting_time(), 0.0);
        assert_eq!(q.jobs_in_system(), 0.0);
        assert_eq!(q.jobs_in_queue(), 0.0);
    }

    #[test]
    fn textbook_values_at_half_utilization() {
        // Kleinrock Vol. 1: rho = 0.5 gives L = 1, Lq = 0.5, T = 2/mu.
        let q = Mm1::new(1.0, 2.0).unwrap();
        assert!((q.utilization() - 0.5).abs() < EPS);
        assert!((q.jobs_in_system() - 1.0).abs() < EPS);
        assert!((q.jobs_in_queue() - 0.5).abs() < EPS);
        assert!((q.response_time() - 1.0).abs() < EPS);
        assert!((q.waiting_time() - 0.5).abs() < EPS);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(7.3, 11.9).unwrap();
        // L = lambda * T and Lq = lambda * Wq.
        assert!((q.jobs_in_system() - q.arrival_rate() * q.response_time()).abs() < 1e-9);
        assert!((q.jobs_in_queue() - q.arrival_rate() * q.waiting_time()).abs() < 1e-9);
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let q = Mm1::new(3.0, 5.0).unwrap();
        let total: f64 = (0..200).map(|n| q.prob_n_jobs(n)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    #[test]
    fn mean_from_state_probabilities_matches_l() {
        let q = Mm1::new(3.0, 5.0).unwrap();
        let mean: f64 = (0..500).map(|n| n as f64 * q.prob_n_jobs(n)).sum();
        assert!((mean - q.jobs_in_system()).abs() < 1e-6);
    }

    #[test]
    fn sojourn_tail_and_percentile_are_inverses() {
        let q = Mm1::new(2.0, 5.0).unwrap();
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let t = q.response_time_percentile(p).unwrap();
            let tail = q.prob_response_exceeds(t).unwrap();
            assert!((tail - (1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn median_sojourn_below_mean() {
        // Exponential distribution: median = ln(2) * mean < mean.
        let q = Mm1::new(2.0, 5.0).unwrap();
        let median = q.response_time_percentile(0.5).unwrap();
        assert!(median < q.response_time());
        assert!((median - q.response_time() * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn percentile_rejects_bad_probabilities() {
        let q = Mm1::new(1.0, 2.0).unwrap();
        assert!(q.response_time_percentile(0.0).is_err());
        assert!(q.response_time_percentile(1.0).is_err());
        assert!(q.response_time_percentile(-0.5).is_err());
        assert!(q.response_time_percentile(f64::NAN).is_err());
    }

    #[test]
    fn tail_rejects_bad_times() {
        let q = Mm1::new(1.0, 2.0).unwrap();
        assert!(q.prob_response_exceeds(-1.0).is_err());
        assert!(q.prob_response_exceeds(f64::NAN).is_err());
        assert_eq!(q.prob_response_exceeds(0.0).unwrap(), 1.0);
    }

    #[test]
    fn free_function_matches_struct_and_saturates() {
        let q = Mm1::new(1.0, 3.0).unwrap();
        assert!((response_time(1.0, 3.0) - q.response_time()).abs() < EPS);
        assert!(response_time(3.0, 3.0).is_infinite());
        assert!(response_time(4.0, 3.0).is_infinite());
    }

    #[test]
    fn response_time_blows_up_near_saturation() {
        let t1 = response_time(0.9, 1.0);
        let t2 = response_time(0.99, 1.0);
        let t3 = response_time(0.999, 1.0);
        assert!(t1 < t2 && t2 < t3);
        assert!((t2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn residual_rate_is_mu_minus_lambda() {
        let q = Mm1::new(2.5, 10.0).unwrap();
        assert!((q.residual_rate() - 7.5).abs() < EPS);
    }
}
