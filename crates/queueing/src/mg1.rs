//! M/G/1 queue: Pollaczek–Khinchine mean-value formulas.
//!
//! The paper's model assumes exponential service (M/M/1). The workspace's
//! robustness extension re-simulates the equilibria under general service
//! distributions; this module provides the matching theory: for Poisson
//! arrivals of rate `λ` and i.i.d. service times with mean `1/μ` and
//! squared coefficient of variation `c²`,
//!
//! ```text
//! E[W_q] = λ (1 + c²) / (2 μ² (1 − ρ)),    E[T] = 1/μ + E[W_q].
//! ```
//!
//! At `c² = 1` this is exactly M/M/1; at `c² = 0` (deterministic service,
//! M/D/1) queueing delay halves; heavy-tailed service (`c² > 1`) inflates
//! it linearly.

use crate::error::QueueingError;

/// A stable M/G/1 queue parameterized by arrival rate, service *rate*
/// (reciprocal mean service time) and the service-time squared
/// coefficient of variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1 {
    lambda: f64,
    mu: f64,
    scv: f64,
}

impl Mg1 {
    /// Builds a stable M/G/1 queue.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidRate`] for non-positive/non-finite rates
    ///   or a negative/non-finite `scv`.
    /// * [`QueueingError::Unstable`] when `lambda >= mu`.
    pub fn new(lambda: f64, mu: f64, scv: f64) -> Result<Self, QueueingError> {
        if !mu.is_finite() || mu <= 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "mu",
                value: mu,
            });
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "lambda",
                value: lambda,
            });
        }
        if !scv.is_finite() || scv < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "scv",
                value: scv,
            });
        }
        if lambda >= mu {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity: mu,
            });
        }
        Ok(Self { lambda, mu, scv })
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Service rate `μ` (mean service time `1/μ`).
    pub fn service_rate(&self) -> f64 {
        self.mu
    }

    /// Squared coefficient of variation of the service time.
    pub fn scv(&self) -> f64 {
        self.scv
    }

    /// Utilization `ρ = λ/μ`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Pollaczek–Khinchine expected waiting time in queue.
    pub fn waiting_time(&self) -> f64 {
        let rho = self.utilization();
        self.lambda * (1.0 + self.scv) / (2.0 * self.mu * self.mu * (1.0 - rho))
    }

    /// Expected response (sojourn) time `E[T] = 1/μ + E[W_q]`.
    pub fn response_time(&self) -> f64 {
        1.0 / self.mu + self.waiting_time()
    }

    /// Expected number in system (Little's law).
    pub fn jobs_in_system(&self) -> f64 {
        self.lambda * self.response_time()
    }
}

/// Free-function form of the P-K expected response time, `+∞` at or past
/// saturation — mirrors [`crate::mm1::response_time`] for optimizer use.
pub fn response_time(lambda: f64, mu: f64, scv: f64) -> f64 {
    if lambda >= mu {
        f64::INFINITY
    } else {
        1.0 / mu + lambda * (1.0 + scv) / (2.0 * mu * mu * (1.0 - lambda / mu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn validates_parameters() {
        assert!(Mg1::new(1.0, 0.0, 1.0).is_err());
        assert!(Mg1::new(-1.0, 2.0, 1.0).is_err());
        assert!(Mg1::new(1.0, 2.0, -0.5).is_err());
        assert!(Mg1::new(2.0, 2.0, 1.0).is_err());
        assert!(Mg1::new(1.0, 2.0, f64::NAN).is_err());
    }

    #[test]
    fn scv_one_recovers_mm1() {
        for &(l, m) in &[(0.3, 1.0), (1.5, 2.0), (8.0, 10.0)] {
            let mg1 = Mg1::new(l, m, 1.0).unwrap();
            let mm1 = Mm1::new(l, m).unwrap();
            assert!((mg1.response_time() - mm1.response_time()).abs() < 1e-12);
            assert!((mg1.waiting_time() - mm1.waiting_time()).abs() < 1e-12);
        }
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        let md1 = Mg1::new(1.5, 2.0, 0.0).unwrap();
        let mm1 = Mm1::new(1.5, 2.0).unwrap();
        assert!((md1.waiting_time() - 0.5 * mm1.waiting_time()).abs() < 1e-12);
        assert!(md1.response_time() < mm1.response_time());
    }

    #[test]
    fn waiting_grows_linearly_in_scv() {
        let w = |scv: f64| Mg1::new(1.0, 2.0, scv).unwrap().waiting_time();
        let w0 = w(0.0);
        let w1 = w(1.0);
        let w4 = w(4.0);
        assert!((w1 - 2.0 * w0).abs() < 1e-12);
        assert!((w4 - 5.0 * w0).abs() < 1e-12);
    }

    #[test]
    fn littles_law() {
        let q = Mg1::new(2.0, 3.0, 2.5).unwrap();
        assert!((q.jobs_in_system() - q.arrival_rate() * q.response_time()).abs() < 1e-12);
    }

    #[test]
    fn free_function_matches_and_saturates() {
        let q = Mg1::new(1.0, 4.0, 2.0).unwrap();
        assert!((response_time(1.0, 4.0, 2.0) - q.response_time()).abs() < 1e-12);
        assert!(response_time(4.0, 4.0, 1.0).is_infinite());
    }
}
