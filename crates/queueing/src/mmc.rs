//! M/M/c (Erlang-C) queue: a multicore extension of the paper's model.
//!
//! The paper models each computer as a single-server M/M/1 queue. A natural
//! modern extension — exercised by the workspace's ablation benches — swaps
//! each computer for a small pool of `c` identical cores fed by one queue.
//! The Erlang-C formula gives the probability of queueing and the expected
//! response time; at `c = 1` everything degenerates to M/M/1 exactly, which
//! the tests verify.

use crate::error::QueueingError;

/// A stable M/M/c queue: Poisson arrivals at rate `lambda`, `c` identical
/// servers each of rate `mu`, one shared FCFS queue.
///
/// # Examples
///
/// ```
/// use lb_queueing::{Mmc, Mm1};
/// let pool = Mmc::new(0.8, 1.0, 2).unwrap();
/// assert!(pool.response_time() > 1.0 / 1.0); // queueing adds delay
/// // c = 1 degenerates to M/M/1:
/// let a = Mmc::new(0.5, 1.0, 1).unwrap().response_time();
/// let b = Mm1::new(0.5, 1.0).unwrap().response_time();
/// assert!((a - b).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmc {
    lambda: f64,
    mu: f64,
    servers: u32,
}

impl Mmc {
    /// Builds a stable M/M/c queue.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidRate`] for non-positive/non-finite rates or
    ///   `c = 0`.
    /// * [`QueueingError::Unstable`] when `lambda >= c·mu`.
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Self, QueueingError> {
        if servers == 0 {
            return Err(QueueingError::InvalidRate {
                name: "servers",
                value: 0.0,
            });
        }
        if !mu.is_finite() || mu <= 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "mu",
                value: mu,
            });
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "lambda",
                value: lambda,
            });
        }
        let capacity = mu * f64::from(servers);
        if lambda >= capacity {
            return Err(QueueingError::Unstable {
                arrival_rate: lambda,
                capacity,
            });
        }
        Ok(Self {
            lambda,
            mu,
            servers,
        })
    }

    /// Arrival rate `λ`.
    #[inline]
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Per-server service rate `μ`.
    #[inline]
    pub fn service_rate(&self) -> f64 {
        self.mu
    }

    /// Number of servers `c`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Offered load in Erlangs, `a = λ/μ`.
    #[inline]
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization `ρ = λ/(c·μ) ∈ [0, 1)`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / (self.mu * f64::from(self.servers))
    }

    /// Erlang-C probability that an arriving job must wait (all servers
    /// busy). Computed with the numerically stable iterative form of the
    /// Erlang-B recursion followed by the B→C conversion.
    pub fn prob_wait(&self) -> f64 {
        if self.lambda == 0.0 {
            return 0.0;
        }
        let a = self.offered_load();
        let c = self.servers;
        // Erlang-B via the stable recursion B(0) = 1, B(k) = aB/(k + aB).
        let mut b = 1.0_f64;
        for k in 1..=c {
            b = a * b / (f64::from(k) + a * b);
        }
        let rho = self.utilization();
        // Erlang-C from Erlang-B.
        b / (1.0 - rho * (1.0 - b))
    }

    /// Expected waiting time in queue `W_q = C(c, a) / (c·μ − λ)`.
    pub fn waiting_time(&self) -> f64 {
        self.prob_wait() / (self.mu * f64::from(self.servers) - self.lambda)
    }

    /// Expected response time `T = W_q + 1/μ`.
    pub fn response_time(&self) -> f64 {
        self.waiting_time() + 1.0 / self.mu
    }

    /// Expected number of jobs in the system (Little's law).
    pub fn jobs_in_system(&self) -> f64 {
        self.lambda * self.response_time()
    }

    /// Expected number of jobs waiting in queue (Little's law).
    pub fn jobs_in_queue(&self) -> f64 {
        self.lambda * self.waiting_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn rejects_zero_servers_and_bad_rates() {
        assert!(Mmc::new(1.0, 1.0, 0).is_err());
        assert!(Mmc::new(-1.0, 1.0, 2).is_err());
        assert!(Mmc::new(1.0, 0.0, 2).is_err());
        assert!(Mmc::new(1.0, f64::NAN, 2).is_err());
    }

    #[test]
    fn rejects_saturation_against_total_capacity() {
        assert!(Mmc::new(2.0, 1.0, 2).is_err());
        assert!(Mmc::new(1.99, 1.0, 2).is_ok());
    }

    #[test]
    fn single_server_matches_mm1_exactly() {
        for &(l, m) in &[(0.1, 1.0), (0.5, 1.0), (0.9, 1.0), (3.0, 7.0)] {
            let mmc = Mmc::new(l, m, 1).unwrap();
            let mm1 = Mm1::new(l, m).unwrap();
            assert!(
                (mmc.response_time() - mm1.response_time()).abs() < 1e-12,
                "response mismatch at ({l}, {m})"
            );
            assert!((mmc.waiting_time() - mm1.waiting_time()).abs() < 1e-12);
            assert!((mmc.jobs_in_system() - mm1.jobs_in_system()).abs() < 1e-9);
            // For M/M/1, P(wait) = rho.
            assert!((mmc.prob_wait() - mm1.utilization()).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic call-center example: a = 8 Erlangs, c = 10 servers.
        // Erlang-C ~ 0.4092 (standard tables).
        let q = Mmc::new(8.0, 1.0, 10).unwrap();
        assert!(
            (q.prob_wait() - 0.4092).abs() < 5e-4,
            "C = {}",
            q.prob_wait()
        );
    }

    #[test]
    fn zero_load_has_no_wait() {
        let q = Mmc::new(0.0, 1.0, 4).unwrap();
        assert_eq!(q.prob_wait(), 0.0);
        assert_eq!(q.waiting_time(), 0.0);
        assert!((q.response_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_beats_separate_queues() {
        // A pooled M/M/2 always has lower response time than two separate
        // M/M/1 queues each receiving half the traffic.
        let pooled = Mmc::new(1.6, 1.0, 2).unwrap().response_time();
        let split = Mm1::new(0.8, 1.0).unwrap().response_time();
        assert!(pooled < split, "pooled {pooled} vs split {split}");
    }

    #[test]
    fn more_servers_reduce_delay() {
        let t2 = Mmc::new(1.5, 1.0, 2).unwrap().response_time();
        let t3 = Mmc::new(1.5, 1.0, 3).unwrap().response_time();
        let t8 = Mmc::new(1.5, 1.0, 8).unwrap().response_time();
        assert!(t2 > t3 && t3 > t8);
        // With many servers the response time approaches pure service.
        assert!((t8 - 1.0) < 0.05);
    }

    #[test]
    fn littles_law_consistency() {
        let q = Mmc::new(5.0, 2.0, 4).unwrap();
        assert!((q.jobs_in_system() - q.arrival_rate() * q.response_time()).abs() < 1e-12);
        assert!((q.jobs_in_queue() - q.arrival_rate() * q.waiting_time()).abs() < 1e-12);
        assert!(
            (q.jobs_in_system() - q.jobs_in_queue() - q.offered_load()).abs() < 1e-9,
            "L - Lq should equal expected busy servers a = lambda/mu"
        );
    }
}
