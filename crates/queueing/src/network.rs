//! A bank of heterogeneous M/M/1 queues in parallel — the "distributed
//! system" of the paper (Figure 1).
//!
//! [`ParallelQueues`] owns the vector of processing rates `μ_1 … μ_n` and
//! provides the aggregate functionals used by every load-balancing scheme:
//! total capacity, utilization under a total offered rate, the system
//! expected response time under a [`FlowVector`], and the classic
//! *speed-skewness* heterogeneity measure used in the paper's §4.2.3.

use crate::error::QueueingError;
use crate::flow::FlowVector;

/// A parallel bank of `n` heterogeneous M/M/1 computers.
///
/// Rates are stored in the caller's order; helpers expose a
/// descending-by-rate index permutation, which is what the paper's
/// water-filling algorithms need.
///
/// # Examples
///
/// ```
/// use lb_queueing::ParallelQueues;
/// let sys = ParallelQueues::new(vec![10.0, 20.0, 50.0]).unwrap();
/// assert_eq!(sys.total_capacity(), 80.0);
/// assert_eq!(sys.speed_skewness(), 5.0);
/// assert_eq!(sys.descending_order(), vec![2, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelQueues {
    mu: Vec<f64>,
    total: f64,
}

impl ParallelQueues {
    /// Builds the bank from per-computer processing rates.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::EmptySystem`] for an empty rate vector.
    /// * [`QueueingError::InvalidRate`] for a non-positive or non-finite
    ///   rate.
    pub fn new(mu: Vec<f64>) -> Result<Self, QueueingError> {
        if mu.is_empty() {
            return Err(QueueingError::EmptySystem);
        }
        for &m in &mu {
            if !m.is_finite() || m <= 0.0 {
                return Err(QueueingError::InvalidRate {
                    name: "mu",
                    value: m,
                });
            }
        }
        let total = mu.iter().sum();
        Ok(Self { mu, total })
    }

    /// Number of computers.
    #[inline]
    pub fn len(&self) -> usize {
        self.mu.len()
    }

    /// Always false for a constructed bank; for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mu.is_empty()
    }

    /// Processing rate of computer `i`.
    #[inline]
    pub fn rate(&self, i: usize) -> f64 {
        self.mu[i]
    }

    /// All processing rates, in caller order.
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.mu
    }

    /// Aggregate capacity `Σ_i μ_i`.
    #[inline]
    pub fn total_capacity(&self) -> f64 {
        self.total
    }

    /// System utilization `ρ = Φ / Σ μ_i` for a total offered rate `Φ`
    /// (paper §4.2.2).
    #[inline]
    pub fn system_utilization(&self, total_arrival_rate: f64) -> f64 {
        total_arrival_rate / self.total
    }

    /// The total arrival rate that produces system utilization `rho`
    /// (inverse of [`Self::system_utilization`]).
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidProbability`] unless `0 <= rho < 1`.
    pub fn arrival_rate_for_utilization(&self, rho: f64) -> Result<f64, QueueingError> {
        if !rho.is_finite() || !(0.0..1.0).contains(&rho) {
            return Err(QueueingError::InvalidProbability { value: rho });
        }
        Ok(rho * self.total)
    }

    /// Speed skewness: `max_i μ_i / min_i μ_i` (paper §4.2.3's
    /// heterogeneity measure).
    pub fn speed_skewness(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0_f64;
        for &m in &self.mu {
            min = min.min(m);
            max = max.max(m);
        }
        max / min
    }

    /// Indices sorted by processing rate, fastest first; ties broken by
    /// original index so the order is deterministic.
    pub fn descending_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.mu.len()).collect();
        idx.sort_by(|&a, &b| {
            self.mu[b]
                .partial_cmp(&self.mu[a])
                .expect("rates are finite")
                .then(a.cmp(&b))
        });
        idx
    }

    /// Checks that a total offered rate keeps the system stable
    /// (`Φ < Σ μ_i`, the paper's standing assumption).
    ///
    /// # Errors
    ///
    /// [`QueueingError::Unstable`] when `Φ >= Σ μ_i`.
    pub fn check_offered_rate(&self, total_arrival_rate: f64) -> Result<(), QueueingError> {
        if total_arrival_rate.partial_cmp(&self.total) != Some(std::cmp::Ordering::Less) {
            return Err(QueueingError::Unstable {
                arrival_rate: total_arrival_rate,
                capacity: self.total,
            });
        }
        Ok(())
    }

    /// System expected response time under an aggregate flow allocation
    /// (delegates to [`FlowVector::mean_response_time`]).
    ///
    /// # Errors
    ///
    /// [`QueueingError::DimensionMismatch`] on length mismatch.
    pub fn mean_response_time(&self, flows: &FlowVector) -> Result<f64, QueueingError> {
        flows.mean_response_time(&self.mu)
    }

    /// Builds the *proportional* aggregate allocation of a total rate
    /// `Φ`: `λ_i = Φ · μ_i / Σ μ_k`. This is the flow pattern of the
    /// paper's PS baseline; it keeps every computer at identical
    /// utilization `ρ`.
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidRate`] for a negative or non-finite rate.
    pub fn proportional_flows(&self, total_arrival_rate: f64) -> Result<FlowVector, QueueingError> {
        if !total_arrival_rate.is_finite() || total_arrival_rate < 0.0 {
            return Err(QueueingError::InvalidRate {
                name: "total_arrival_rate",
                value: total_arrival_rate,
            });
        }
        FlowVector::new(
            self.mu
                .iter()
                .map(|m| total_arrival_rate * m / self.total)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_rates() -> Vec<f64> {
        // The paper's Table 1: 6 computers at 10 jobs/s, 5 at 20, 3 at 50,
        // 2 at 100.
        let mut v = vec![10.0; 6];
        v.extend(vec![20.0; 5]);
        v.extend(vec![50.0; 3]);
        v.extend(vec![100.0; 2]);
        v
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(ParallelQueues::new(vec![]).is_err());
        assert!(ParallelQueues::new(vec![1.0, 0.0]).is_err());
        assert!(ParallelQueues::new(vec![1.0, -3.0]).is_err());
        assert!(ParallelQueues::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn table1_capacity_and_skewness() {
        let sys = ParallelQueues::new(table1_rates()).unwrap();
        assert_eq!(sys.len(), 16);
        assert!((sys.total_capacity() - 510.0).abs() < 1e-12);
        assert!((sys.speed_skewness() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_round_trip() {
        let sys = ParallelQueues::new(table1_rates()).unwrap();
        let phi = sys.arrival_rate_for_utilization(0.6).unwrap();
        assert!((phi - 306.0).abs() < 1e-9);
        assert!((sys.system_utilization(phi) - 0.6).abs() < 1e-12);
        assert!(sys.arrival_rate_for_utilization(1.0).is_err());
        assert!(sys.arrival_rate_for_utilization(-0.1).is_err());
    }

    #[test]
    fn descending_order_is_stable() {
        let sys = ParallelQueues::new(vec![20.0, 50.0, 20.0, 100.0]).unwrap();
        assert_eq!(sys.descending_order(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn offered_rate_check() {
        let sys = ParallelQueues::new(vec![2.0, 3.0]).unwrap();
        assert!(sys.check_offered_rate(4.9).is_ok());
        assert!(sys.check_offered_rate(5.0).is_err());
        assert!(sys.check_offered_rate(f64::NAN).is_err());
    }

    #[test]
    fn proportional_flows_equalize_utilization() {
        let sys = ParallelQueues::new(vec![10.0, 20.0, 50.0]).unwrap();
        let f = sys.proportional_flows(40.0).unwrap();
        assert!((f.total() - 40.0).abs() < 1e-9);
        let u = f.utilizations(sys.rates()).unwrap();
        for x in u {
            assert!((x - 0.5).abs() < 1e-12);
        }
        assert!(sys.proportional_flows(-1.0).is_err());
    }

    #[test]
    fn mean_response_time_delegates() {
        let sys = ParallelQueues::new(vec![2.0, 2.0]).unwrap();
        let f = FlowVector::new(vec![1.0, 1.0]).unwrap();
        assert!((sys.mean_response_time(&f).unwrap() - 1.0).abs() < 1e-12);
    }
}
