//! GI/M/1 queue: renewal arrivals, exponential service.
//!
//! The arrival-burstiness extension replaces the Poisson job streams with
//! general renewal processes. For a *single* queue the exact theory is
//! classical: the stationary waiting time depends on the root `σ ∈ (0,1)`
//! of
//!
//! ```text
//! σ = A*(μ(1 − σ))
//! ```
//!
//! where `A*` is the Laplace–Stieltjes transform of the interarrival
//! distribution; then `E[T] = 1/(μ(1 − σ))`. At exponential interarrivals
//! `σ = ρ`, recovering M/M/1 exactly.

use crate::error::QueueingError;

/// Interarrival-time distributions with known LSTs (all with mean
/// `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interarrival {
    /// Exponential (Poisson arrivals) — SCV 1.
    Exponential,
    /// Erlang-k — SCV `1/k`.
    Erlang {
        /// Phases.
        k: u32,
    },
    /// Balanced-means two-phase hyperexponential — SCV `scv > 1`.
    HyperExponential {
        /// Target squared coefficient of variation.
        scv: f64,
    },
    /// Deterministic — SCV 0.
    Deterministic,
}

impl Interarrival {
    /// The LST `A*(s) = E[exp(−sA)]` for arrival rate `lambda`.
    fn lst(&self, lambda: f64, s: f64) -> f64 {
        match *self {
            Interarrival::Exponential => lambda / (lambda + s),
            Interarrival::Erlang { k } => {
                let rate = f64::from(k) * lambda;
                (rate / (rate + s)).powi(k as i32)
            }
            Interarrival::HyperExponential { scv } => {
                let d = ((scv - 1.0) / (scv + 1.0)).sqrt();
                let p = 0.5 * (1.0 + d);
                let ra = 2.0 * p * lambda;
                let rb = 2.0 * (1.0 - p) * lambda;
                p * ra / (ra + s) + (1.0 - p) * rb / (rb + s)
            }
            Interarrival::Deterministic => (-s / lambda).exp(),
        }
    }

    /// Squared coefficient of variation of the family.
    pub fn scv(&self) -> f64 {
        match *self {
            Interarrival::Exponential => 1.0,
            Interarrival::Erlang { k } => 1.0 / f64::from(k.max(1)),
            Interarrival::HyperExponential { scv } => scv,
            Interarrival::Deterministic => 0.0,
        }
    }
}

/// Solves `σ = A*(μ(1−σ))` on `(0, 1)` by damped fixed-point iteration
/// with a bisection fallback.
fn solve_sigma(arrival: Interarrival, lambda: f64, mu: f64) -> f64 {
    let g = |sigma: f64| arrival.lst(lambda, mu * (1.0 - sigma));
    // g is increasing in sigma; g(0) > 0 and g(1) = 1, and stability
    // guarantees a unique root below 1. Bisect on h(σ) = g(σ) − σ, which
    // is positive at 0 and negative just below 1 for stable queues.
    let (mut lo, mut hi) = (0.0_f64, 1.0 - 1e-12);
    // Guard: at σ→1⁻, h→0⁻ only for ρ<1; step hi inward until h(hi) < 0.
    while g(hi) - hi >= 0.0 && hi > 0.5 {
        hi = 0.5 + 0.5 * (hi - 0.5);
        if hi - 0.5 < 1e-9 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) - mid > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Exact GI/M/1 expected response time `E[T] = 1/(μ(1−σ))`.
///
/// # Errors
///
/// [`QueueingError::InvalidRate`] for non-positive rates;
/// [`QueueingError::Unstable`] when `lambda >= mu`.
pub fn response_time(arrival: Interarrival, lambda: f64, mu: f64) -> Result<f64, QueueingError> {
    if !mu.is_finite() || mu <= 0.0 {
        return Err(QueueingError::InvalidRate {
            name: "mu",
            value: mu,
        });
    }
    if !lambda.is_finite() || lambda <= 0.0 {
        return Err(QueueingError::InvalidRate {
            name: "lambda",
            value: lambda,
        });
    }
    if lambda >= mu {
        return Err(QueueingError::Unstable {
            arrival_rate: lambda,
            capacity: mu,
        });
    }
    let sigma = solve_sigma(arrival, lambda, mu);
    Ok(1.0 / (mu * (1.0 - sigma)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1;

    #[test]
    fn exponential_interarrivals_recover_mm1() {
        for &(l, m) in &[(0.5, 1.0), (3.0, 10.0), (8.0, 9.0)] {
            let t = response_time(Interarrival::Exponential, l, m).unwrap();
            let exact = mm1::response_time(l, m);
            assert!(
                (t - exact).abs() < 1e-9 * exact,
                "({l},{m}): {t} vs {exact}"
            );
        }
    }

    #[test]
    fn dm1_known_value() {
        // D/M/1 at rho = 0.5: sigma solves sigma = exp(-2(1-sigma));
        // sigma ~ 0.20319, E[T] = 1/(mu(1-sigma)) ~ 1.2550/mu.
        let t = response_time(Interarrival::Deterministic, 0.5, 1.0).unwrap();
        assert!((t - 1.0 / (1.0 - 0.203_188)).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn response_time_is_monotone_in_arrival_scv() {
        let (l, m) = (0.7, 1.0);
        let det = response_time(Interarrival::Deterministic, l, m).unwrap();
        let er4 = response_time(Interarrival::Erlang { k: 4 }, l, m).unwrap();
        let exp = response_time(Interarrival::Exponential, l, m).unwrap();
        let hyp = response_time(Interarrival::HyperExponential { scv: 4.0 }, l, m).unwrap();
        assert!(
            det < er4 && er4 < exp && exp < hyp,
            "{det} {er4} {exp} {hyp}"
        );
    }

    #[test]
    fn smoother_arrivals_always_at_least_service_time() {
        for fam in [
            Interarrival::Deterministic,
            Interarrival::Erlang { k: 2 },
            Interarrival::HyperExponential { scv: 9.0 },
        ] {
            let t = response_time(fam, 1.0, 4.0).unwrap();
            assert!(t >= 0.25, "{fam:?}: {t}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(response_time(Interarrival::Exponential, 0.0, 1.0).is_err());
        assert!(response_time(Interarrival::Exponential, 1.0, 1.0).is_err());
        assert!(response_time(Interarrival::Exponential, 1.0, -1.0).is_err());
    }

    #[test]
    fn erlang_scv_accessor() {
        assert_eq!(Interarrival::Erlang { k: 4 }.scv(), 0.25);
        assert_eq!(Interarrival::Deterministic.scv(), 0.0);
        assert_eq!(Interarrival::Exponential.scv(), 1.0);
        assert_eq!(Interarrival::HyperExponential { scv: 3.0 }.scv(), 3.0);
    }
}
