//! Error types for queueing-theory computations.

use std::fmt;

/// Errors raised by queueing-theory constructors and evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueingError {
    /// A rate parameter (arrival or service) was not strictly positive
    /// and finite where required.
    InvalidRate {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The queue (or network) is unstable: offered load reaches or exceeds
    /// capacity, so stationary quantities do not exist.
    Unstable {
        /// Total arrival rate offered.
        arrival_rate: f64,
        /// Capacity it was compared against.
        capacity: f64,
    },
    /// A vector argument had the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A flow vector violated positivity (a component was negative beyond
    /// tolerance).
    NegativeFlow {
        /// Index of the offending component.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// A flow vector violated conservation (components do not sum to the
    /// declared total beyond tolerance).
    ConservationViolated {
        /// Sum of components.
        sum: f64,
        /// Declared total.
        expected: f64,
    },
    /// An empty system (zero computers) was supplied where at least one is
    /// required.
    EmptySystem,
    /// A probability or percentile argument fell outside `(0, 1)`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRate { name, value } => {
                write!(f, "rate `{name}` must be positive and finite, got {value}")
            }
            Self::Unstable {
                arrival_rate,
                capacity,
            } => write!(
                f,
                "unstable system: arrival rate {arrival_rate} >= capacity {capacity}"
            ),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Self::NegativeFlow { index, value } => {
                write!(f, "flow component {index} is negative: {value}")
            }
            Self::ConservationViolated { sum, expected } => {
                write!(
                    f,
                    "flow conservation violated: sum {sum} != expected {expected}"
                )
            }
            Self::EmptySystem => write!(f, "system must contain at least one computer"),
            Self::InvalidProbability { value } => {
                write!(f, "probability must lie in (0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = QueueingError::InvalidRate {
            name: "mu",
            value: -1.0,
        };
        assert!(e.to_string().contains("mu"));
        assert!(e.to_string().contains("-1"));

        let e = QueueingError::Unstable {
            arrival_rate: 5.0,
            capacity: 4.0,
        };
        assert!(e.to_string().contains("unstable"));

        let e = QueueingError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));

        let e = QueueingError::NegativeFlow {
            index: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("component 1"));

        let e = QueueingError::ConservationViolated {
            sum: 0.9,
            expected: 1.0,
        };
        assert!(e.to_string().contains("conservation"));

        assert!(QueueingError::EmptySystem
            .to_string()
            .contains("at least one"));

        let e = QueueingError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("(0, 1)"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<QueueingError>();
    }
}
