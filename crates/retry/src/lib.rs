//! # lb-retry — shared retry policies
//!
//! Two policy objects used anywhere the workspace retries failed work:
//!
//! * [`RetryBackoff`] — capped *deterministic* exponential backoff
//!   (attempt `k` waits `min(base · factor^k, cap)`), used by the DES
//!   churn model to re-submit jobs preempted by a server crash.
//! * [`DecorrelatedJitter`] — capped exponential backoff with seeded
//!   *decorrelated jitter* (attempt `k` waits
//!   `min(cap, uniform(base, 3 · prev))`), used by the asynchronous
//!   equilibration runtime to retry unacknowledged messages without
//!   synchronizing retry storms across senders. The jitter stream is a
//!   splitmix64 sequence keyed by an explicit seed, so the full retry
//!   schedule is a pure function of `(policy, seed)` — chaos tests can
//!   replay it bit-for-bit.
//!
//! Both are policy objects only: they compute delays; scheduling the
//! retries stays with the caller.

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Capped exponential backoff for retrying failed work: attempt `k`
/// (0-based) waits `min(base · factor^k, cap)` seconds; after
/// `max_attempts` retries the work is given up as lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBackoff {
    base: f64,
    factor: f64,
    cap: f64,
    max_attempts: u32,
}

impl RetryBackoff {
    /// Creates a policy with first delay `base`, multiplier `factor`,
    /// ceiling `cap`, and at most `max_attempts` retries per job.
    ///
    /// # Panics
    ///
    /// Panics when `base` or `cap` is non-positive/non-finite, when
    /// `factor < 1`, or when `cap < base`.
    pub fn new(base: f64, factor: f64, cap: f64, max_attempts: u32) -> Self {
        assert!(
            base.is_finite() && base > 0.0,
            "backoff base must be positive and finite, got {base}"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "backoff factor must be >= 1, got {factor}"
        );
        assert!(
            cap.is_finite() && cap >= base,
            "backoff cap must be finite and >= base, got {cap}"
        );
        Self {
            base,
            factor,
            cap,
            max_attempts,
        }
    }

    /// Maximum number of retries per job.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Delay before retry number `attempt` (0-based), or `None` when the
    /// retry budget is exhausted and the job must be counted lost.
    pub fn delay(&self, attempt: u32) -> Option<f64> {
        if attempt >= self.max_attempts {
            return None;
        }
        // factor^attempt can overflow to inf for large budgets; the cap
        // keeps the result finite either way.
        let d = self.base * self.factor.powi(attempt.min(1_000) as i32);
        Some(d.min(self.cap))
    }
}

/// Sequential splitmix64 — the workspace's standard cheap deterministic
/// mixer (same construction as the observer and DES RNG streams).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the top 53 bits of a splitmix output.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Capped backoff with *decorrelated jitter* (the AWS Architecture Blog
/// scheme): the first delay is `base`, and each subsequent delay is drawn
/// uniformly from `[base, 3 · previous]`, clamped to `cap`. Jitter keeps
/// concurrent senders from retrying in lockstep; decorrelation keeps the
/// expected delay growing geometrically without the full-window variance
/// of plain "full jitter".
///
/// The draw stream is a splitmix64 sequence keyed by the seed passed to
/// [`DecorrelatedJitter::new`], so the schedule is fully deterministic:
/// the same `(base, cap, max_attempts, seed)` always yields the same
/// delays, and two policies with different seeds decorrelate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecorrelatedJitter {
    base: f64,
    cap: f64,
    max_attempts: u32,
    attempt: u32,
    prev: f64,
    state: u64,
}

impl DecorrelatedJitter {
    /// Creates a policy with minimum delay `base`, ceiling `cap`, at most
    /// `max_attempts` retries, and the given jitter seed.
    ///
    /// # Panics
    ///
    /// Panics when `base` is non-positive/non-finite or `cap < base`.
    pub fn new(base: f64, cap: f64, max_attempts: u32, seed: u64) -> Self {
        assert!(
            base.is_finite() && base > 0.0,
            "backoff base must be positive and finite, got {base}"
        );
        assert!(
            cap.is_finite() && cap >= base,
            "backoff cap must be finite and >= base, got {cap}"
        );
        Self {
            base,
            cap,
            max_attempts,
            attempt: 0,
            prev: base,
            state: seed ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Maximum number of retries.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Retries already issued (calls to [`Self::next_delay`] that
    /// returned `Some`).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Draws the delay before the next retry, advancing the jitter
    /// stream, or returns `None` when the retry budget is exhausted.
    ///
    /// The first delay is exactly `base` (no jitter: there is nothing to
    /// decorrelate from yet); delay `k+1` is uniform in
    /// `[base, 3 · delay_k]` clamped to `cap`.
    pub fn next_delay(&mut self) -> Option<f64> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let d = if self.attempt == 0 {
            self.base
        } else {
            let hi = (self.prev * 3.0).min(self.cap).max(self.base);
            self.base + unit(&mut self.state) * (hi - self.base)
        };
        self.attempt += 1;
        self.prev = d;
        Some(d)
    }

    /// The full remaining schedule as a vector (consumes the budget).
    /// Convenience for tests and planning.
    pub fn schedule(mut self) -> Vec<f64> {
        let mut out = Vec::new();
        while let Some(d) = self.next_delay() {
            out.push(d);
        }
        out
    }

    /// Resets the policy to attempt 0 with a fresh seed, keeping the
    /// delay parameters. Used when a peer acks and a later loss starts a
    /// new retry episode.
    pub fn reset(&mut self, seed: u64) {
        self.attempt = 0;
        self.prev = self.base;
        self.state = seed ^ 0xD1B5_4A32_D192_ED03;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_up_to_the_cap_then_gives_up() {
        let p = RetryBackoff::new(0.1, 2.0, 0.5, 4);
        assert_eq!(p.delay(0), Some(0.1));
        assert_eq!(p.delay(1), Some(0.2));
        assert_eq!(p.delay(2), Some(0.4));
        assert_eq!(p.delay(3), Some(0.5)); // capped
        assert_eq!(p.delay(4), None); // budget exhausted: job lost
        assert_eq!(p.max_attempts(), 4);
    }

    #[test]
    fn zero_budget_loses_immediately() {
        let p = RetryBackoff::new(1.0, 2.0, 8.0, 0);
        assert_eq!(p.delay(0), None);
    }

    #[test]
    fn huge_attempt_numbers_stay_finite() {
        let p = RetryBackoff::new(1.0, 2.0, 30.0, u32::MAX);
        assert_eq!(p.delay(100_000), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_shrinking_factor() {
        RetryBackoff::new(1.0, 0.5, 2.0, 3);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_cap_below_base() {
        RetryBackoff::new(1.0, 2.0, 0.5, 3);
    }

    #[test]
    fn jitter_same_seed_same_schedule() {
        let a = DecorrelatedJitter::new(0.05, 2.0, 8, 42).schedule();
        let b = DecorrelatedJitter::new(0.05, 2.0, 8, 42).schedule();
        assert_eq!(a.len(), 8);
        // Bit-for-bit equality, not approximate: the schedule is a pure
        // function of the seed.
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn jitter_different_seeds_decorrelate() {
        let a = DecorrelatedJitter::new(0.05, 2.0, 8, 1).schedule();
        let b = DecorrelatedJitter::new(0.05, 2.0, 8, 2).schedule();
        // First delay is deterministic `base` for both; some later delay
        // must differ.
        assert_eq!(a[0], b[0]);
        assert!(a.iter().zip(&b).any(|(x, y)| x.to_bits() != y.to_bits()));
    }

    #[test]
    fn jitter_stays_within_bounds_and_grows_toward_cap() {
        let mut p = DecorrelatedJitter::new(0.1, 1.0, 64, 7);
        let mut prev = 0.1_f64;
        while let Some(d) = p.next_delay() {
            assert!((0.1..=1.0).contains(&d), "delay {d} outside [base, cap]");
            assert!(d <= (prev * 3.0).clamp(0.1, 1.0) + 1e-12);
            prev = d;
        }
        assert_eq!(p.attempts(), 64);
        assert_eq!(p.next_delay(), None);
    }

    #[test]
    fn jitter_reset_replays_from_scratch() {
        let p = DecorrelatedJitter::new(0.05, 2.0, 4, 9);
        let first: Vec<f64> = p.schedule();
        let mut q = DecorrelatedJitter::new(0.05, 2.0, 4, 1234);
        q.next_delay();
        q.reset(9);
        let replay: Vec<f64> = q.schedule();
        assert!(first
            .iter()
            .zip(&replay)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    #[should_panic(expected = "base")]
    fn jitter_rejects_bad_base() {
        DecorrelatedJitter::new(0.0, 1.0, 3, 1);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn jitter_rejects_cap_below_base() {
        DecorrelatedJitter::new(1.0, 0.5, 3, 1);
    }
}
