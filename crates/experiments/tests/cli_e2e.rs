//! End-to-end tests of the `experiments` binary: spawn the real
//! executable, check exit codes, stdout shape, and CSV artifacts.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lb_cli_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn table1_prints_and_writes_csv() {
    let out = temp_out("table1");
    let output = bin()
        .args(["table1", "--out", out.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("processing rate"));
    let csv = std::fs::read_to_string(out.join("table1.csv")).expect("csv written");
    assert!(csv.lines().count() >= 3);
    assert!(csv.contains("100"));
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn fig3_csv_has_the_user_sweep() {
    let out = temp_out("fig3");
    let output = bin()
        .args(["fig3", "--out", out.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let csv = std::fs::read_to_string(out.join("fig3.csv")).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "users,NASH_0 iterations,NASH_P iterations"
    );
    // 8 sweep points, each with NASH_P < NASH_0.
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 8);
    for row in rows {
        let cells: Vec<u32> = row.split(',').map(|c| c.parse().unwrap()).collect();
        assert!(cells[2] < cells[1], "row {row}");
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn trace_writes_a_schema_valid_log_and_prints_the_report() {
    let out = temp_out("trace");
    let output = bin()
        .args(["trace", "--out", out.to_str().unwrap(), "--verbose"])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("NASH solver convergence"), "{stdout}");
    assert!(stdout.contains("token-ring fault timeline"), "{stdout}");
    assert!(stdout.contains("event counts"), "{stdout}");
    assert!(stdout.contains("schema v4"), "{stdout}");
    // --verbose mirrors events to stderr as they happen.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("solver.sweep"), "stderr: {stderr}");
    assert!(stderr.contains("ring.hop"), "stderr: {stderr}");
    // The log parses under the versioned schema.
    let text = std::fs::read_to_string(out.join("trace_table1.jsonl")).unwrap();
    let log = lb_telemetry::parse_log(&text).expect("schema-valid log");
    assert_eq!(log.version, lb_telemetry::SCHEMA_VERSION);
    assert!(log.count("solver.sweep") > 0);
    assert!(log.count("ring.hop") > 0);
    assert!(std::fs::metadata(out.join("trace_metrics.json")).is_ok());
    assert!(std::fs::metadata(out.join("trace_metrics.prom")).is_ok());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn analyze_profiles_a_trace_and_writes_the_artifacts() {
    let out = temp_out("analyze");
    // First produce a trace, then profile it with an explicit log path
    // and the --out-dir alias.
    let trace = bin()
        .args(["trace", "--out-dir", out.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        trace.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&trace.stderr)
    );
    let log = out.join("trace_table1.jsonl");
    let output = bin()
        .args([
            "analyze",
            log.to_str().unwrap(),
            "--out-dir",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("span forest"), "{stdout}");
    assert!(stdout.contains("per-name attribution"), "{stdout}");
    assert!(stdout.contains("solver.solve"), "{stdout}");
    // Zero orphans on a clean trace.
    let orphan_line = stdout
        .lines()
        .find(|l| l.contains("orphans"))
        .expect("orphans row");
    assert!(orphan_line.trim_end().ends_with('0'), "{orphan_line}");
    let chrome = std::fs::read_to_string(out.join("trace_table1_chrome.json")).unwrap();
    lb_telemetry::json::parse(&chrome).expect("chrome JSON parses");
    let folded = std::fs::read_to_string(out.join("trace_table1_folded.txt")).unwrap();
    assert!(folded.lines().count() > 5, "{folded}");
    assert!(std::fs::metadata(out.join("trace_table1_spans.csv")).is_ok());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn watch_serves_replays_and_reports_the_slo_verdicts() {
    let out = temp_out("watch");
    let output = bin()
        .args([
            "watch",
            "--port",
            "0",
            "--iterations",
            "12",
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("[watch] serving http://127.0.0.1:"),
        "{stdout}"
    );
    assert!(stdout.contains("SLO verdicts"), "{stdout}");
    assert!(stdout.contains("OVERLOAD"), "{stdout}");
    assert!(stdout.contains("alert fire(s)"), "{stdout}");
    // The watch trace parses under the versioned schema and carries
    // the live signals.
    let text = std::fs::read_to_string(out.join("watch_trace.jsonl")).unwrap();
    let log = lb_telemetry::parse_log(&text).expect("schema-valid log");
    assert_eq!(log.version, lb_telemetry::SCHEMA_VERSION);
    assert!(log.count("watch.gap") > 0);
    assert!(log.count("xspan.send") > 0);
    assert!(log.count("alert.fire") > 0, "overload must fire an alert");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = bin().arg("fig99").output().expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn missing_command_fails() {
    let output = bin().output().expect("binary runs");
    assert!(!output.status.success());
}

#[test]
fn bad_flag_value_fails() {
    let output = bin()
        .args(["fig2", "--jobs", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--jobs"));
}
