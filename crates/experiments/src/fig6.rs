//! Figure 6 — effect of heterogeneity: expected response time and
//! fairness vs speed skewness (2 fast + 14 slow computers, ρ = 60%).
//!
//! Shape to reproduce: with growing skewness GOS and NASH converge to the
//! same response time ("in highly heterogeneous systems the NASH scheme
//! is very effective"); PS stays poor (it overloads the slowest
//! computers); IOS approaches NASH/GOS at high skewness but lags at low
//! skewness.

use crate::config::{MEDIUM_LOAD, SKEW_SWEEP};
use crate::fig4::{evaluate_schemes, SchemeRow, SimOptions};
use crate::report::{fmt, Table};
use lb_game::error::GameError;
use lb_game::model::SystemModel;

/// One skewness level of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Speed skewness (fast rate / slow rate).
    pub skew: f64,
    /// Metrics of the four schemes.
    pub rows: Vec<SchemeRow>,
}

impl Fig6Point {
    /// Metrics row for a named scheme.
    ///
    /// # Panics
    ///
    /// Panics for an unknown name (test helper).
    pub fn scheme(&self, name: &str) -> &SchemeRow {
        self.rows
            .iter()
            .find(|r| r.scheme == name)
            .unwrap_or_else(|| panic!("unknown scheme {name}"))
    }
}

/// Runs the Figure 6 sweep at the paper's 60% utilization.
///
/// # Errors
///
/// Propagates model/scheme/simulation failures.
pub fn run(sim: Option<SimOptions>) -> Result<Vec<Fig6Point>, GameError> {
    // Independent skew points fan out like the Figure 4 sweep; index-order
    // merge keeps the output identical to the sequential loop.
    lb_sim::parallel::ParallelRunner::from_env().try_run(SKEW_SWEEP.len(), |idx| {
        let skew = SKEW_SWEEP[idx];
        let model = SystemModel::skewed_system(skew, MEDIUM_LOAD)?;
        Ok(Fig6Point {
            skew,
            rows: evaluate_schemes(&model, sim)?,
        })
    })
}

/// Renders the response-time panel (simulated columns appended when the
/// sweep was run with simulation).
pub fn render_times(points: &[Fig6Point]) -> Table {
    let simulated = points
        .first()
        .map(|p| p.rows.iter().all(|r| r.simulated_time.is_some()))
        .unwrap_or(false);
    let mut header: Vec<String> = ["skew", "NASH", "GOS", "IOS", "PS"]
        .iter()
        .map(ToString::to_string)
        .collect();
    if simulated {
        for s in ["NASH", "GOS", "IOS", "PS"] {
            header.push(format!("{s} (sim)"));
        }
    }
    let mut t = Table::new(
        "Figure 6a: expected response time (sec) vs speed skewness (rho=60%)".to_string(),
        header,
    );
    for p in points {
        let mut cells = vec![format!("{:.0}", p.skew)];
        for name in ["NASH", "GOS", "IOS", "PS"] {
            cells.push(fmt(p.scheme(name).overall_time));
        }
        if simulated {
            for name in ["NASH", "GOS", "IOS", "PS"] {
                cells.push(fmt(p.scheme(name).simulated_time.unwrap_or(f64::NAN)));
            }
        }
        t.row(cells);
    }
    t
}

/// Renders the fairness panel.
pub fn render_fairness(points: &[Fig6Point]) -> Table {
    let mut t = Table::new(
        "Figure 6b: fairness index vs speed skewness (rho=60%)",
        vec!["skew", "NASH", "GOS", "IOS", "PS"],
    );
    for p in points {
        t.row(vec![
            format!("{:.0}", p.skew),
            fmt(p.scheme("NASH").fairness),
            fmt(p.scheme("GOS").fairness),
            fmt(p.scheme("IOS").fairness),
            fmt(p.scheme("PS").fairness),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<Fig6Point> {
        run(None).unwrap()
    }

    #[test]
    fn homogeneous_system_equalizes_all_schemes() {
        // At skew 1 every scheme splits evenly across 16 identical
        // computers, so all four coincide.
        let points = sweep();
        let p = &points[0];
        let gos = p.scheme("GOS").overall_time;
        for name in ["NASH", "IOS", "PS"] {
            let d = p.scheme(name).overall_time;
            assert!(
                (d - gos).abs() / gos < 1e-6,
                "{name} differs at skew 1: {d} vs {gos}"
            );
        }
    }

    #[test]
    fn nash_tracks_gos_at_high_skewness() {
        let points = sweep();
        let p = points.last().unwrap(); // skew 20
        let nash = p.scheme("NASH").overall_time;
        let gos = p.scheme("GOS").overall_time;
        assert!(
            (nash - gos) / gos < 0.05,
            "NASH {nash} should track GOS {gos} at skew 20"
        );
    }

    #[test]
    fn ps_is_the_worst_under_heterogeneity() {
        let points = sweep();
        for p in &points[1..] {
            let ps = p.scheme("PS").overall_time;
            for name in ["NASH", "GOS", "IOS"] {
                assert!(
                    ps >= p.scheme(name).overall_time - 1e-9,
                    "{name} worse than PS at skew {}",
                    p.skew
                );
            }
        }
    }

    #[test]
    fn ios_closes_the_gap_as_skewness_grows() {
        // IOS/GOS ratio at skew 2..4 exceeds the ratio at skew 20.
        let points = sweep();
        let ratio = |p: &Fig6Point| p.scheme("IOS").overall_time / p.scheme("GOS").overall_time;
        let low = ratio(&points[1]).max(ratio(&points[2]));
        let high = ratio(points.last().unwrap());
        assert!(
            low > high,
            "IOS should lag more at low skew: low {low} vs high {high}"
        );
    }

    #[test]
    fn fairness_stays_high_for_nash_and_perfect_for_ps_ios() {
        for p in sweep() {
            assert!((p.scheme("PS").fairness - 1.0).abs() < 1e-9);
            assert!((p.scheme("IOS").fairness - 1.0).abs() < 1e-9);
            assert!(p.scheme("NASH").fairness > 0.95, "NASH at skew {}", p.skew);
        }
    }

    #[test]
    fn render_covers_the_sweep() {
        let points = sweep();
        assert_eq!(render_times(&points).len(), SKEW_SWEEP.len());
        assert_eq!(render_fairness(&points).len(), SKEW_SWEEP.len());
    }
}
