//! Figure 3 — iterations to reach equilibrium vs the number of users
//! (16 Table-1 computers, 4…32 equal-rate users, 60% utilization).
//!
//! "NASH_P significantly outperforms NASH_0, reducing the number of
//! iterations needed to reach the equilibrium in all the cases."

use crate::config::{EPSILON, MEDIUM_LOAD, USER_SWEEP};
use crate::report::Table;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use lb_game::StoppingRule;

/// One sweep point of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig3Point {
    /// Number of users.
    pub users: usize,
    /// Iterations for NASH_0.
    pub nash0_iterations: u32,
    /// Iterations for NASH_P.
    pub nashp_iterations: u32,
}

/// Runs the Figure 3 sweep.
///
/// # Errors
///
/// Propagates model/solver failures.
pub fn run() -> Result<Vec<Fig3Point>, GameError> {
    run_sweep(&USER_SWEEP, MEDIUM_LOAD, EPSILON)
}

/// Parameterized sweep used by benches.
///
/// # Errors
///
/// Propagates model/solver failures.
pub fn run_sweep(users: &[usize], rho: f64, eps: f64) -> Result<Vec<Fig3Point>, GameError> {
    users
        .iter()
        .map(|&m| {
            let model = SystemModel::with_equal_users(SystemModel::table1_rates(), m, rho)?;
            // Iteration counts are the figure's payload: pin the
            // paper's absolute-norm criterion for byte-identical repro.
            let nash0 = NashSolver::new(Initialization::Zero)
                .stopping_rule(StoppingRule::AbsoluteNorm)
                .tolerance(eps)
                .solve(&model)?;
            let nashp = NashSolver::new(Initialization::Proportional)
                .stopping_rule(StoppingRule::AbsoluteNorm)
                .tolerance(eps)
                .solve(&model)?;
            Ok(Fig3Point {
                users: m,
                nash0_iterations: nash0.iterations(),
                nashp_iterations: nashp.iterations(),
            })
        })
        .collect()
}

/// Renders the sweep as the paper's series.
pub fn render(points: &[Fig3Point]) -> Table {
    let mut t = Table::new(
        "Figure 3: iterations to converge vs number of users (16 computers, rho=60%)",
        vec!["users", "NASH_0 iterations", "NASH_P iterations"],
    );
    for p in points {
        t.row(vec![
            p.users.to_string(),
            p.nash0_iterations.to_string(),
            p.nashp_iterations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nashp_wins_at_every_user_count() {
        for p in run().unwrap() {
            assert!(
                p.nashp_iterations < p.nash0_iterations,
                "{} users: NASH_P {} !< NASH_0 {}",
                p.users,
                p.nashp_iterations,
                p.nash0_iterations
            );
        }
    }

    #[test]
    fn convergence_holds_up_to_32_users() {
        // The open question the paper probes experimentally: best-reply
        // dynamics converge well beyond two users.
        let points = run().unwrap();
        assert_eq!(points.len(), USER_SWEEP.len());
        assert_eq!(points.last().unwrap().users, 32);
    }

    #[test]
    fn render_matches_sweep() {
        let points = run_sweep(&[4, 8], 0.6, 1e-3).unwrap();
        assert_eq!(render(&points).len(), 2);
    }
}
