//! The `analyze` subcommand: offline causal-profile analysis of a
//! schema-v2/v3 JSONL trace (normally `trace_table1.jsonl` produced
//! by the `trace` subcommand).
//!
//! The flat `span_open`/`span_close` event stream is reconstructed
//! into a forest of [`SpanNode`]s, then distilled four ways:
//!
//! 1. **Critical path** — a backward walk from each root's close time
//!    that repeatedly descends into the last-finishing child, charging
//!    the gaps between children to the parent. The per-name charges
//!    sum to the wall time (the sum of root durations) *exactly*, so
//!    the attribution table always accounts for 100% of the run.
//! 2. **Self time** — per-span duration minus the time covered by its
//!    children (clamped at zero for parallel fan-out, where children
//!    on worker threads can jointly exceed the parent's interval).
//! 3. **Chrome trace JSON** — `chrome://tracing` / Perfetto "X"
//!    complete events, with a greedy lane (tid) assignment that keeps
//!    every lane properly nested so overlapping siblings render on
//!    separate tracks.
//! 4. **Folded stacks** — `root;child;leaf self_us` lines, the input
//!    format of standard flamegraph tooling, aggregated per stack.
//!
//! Spans still open at end-of-log (a truncated run) are legal in the
//! schema; the analyzer extends them to the last timestamp in the log
//! and reports how many it had to. Orphans — spans naming a parent the
//! log never opened — are impossible in a log that passes
//! [`parse_log`] validation, but are counted defensively anyway.
//!
//! Schema-v3 logs additionally carry cross-node `xspan.send` /
//! `xspan.recv` hops from the virtual network. When present, the
//! analyzer appends a **staleness attribution** table: per network
//! link, how many causal hops were delivered, lost (a send with no
//! matching recv — the drop roll or a partition ate it), or
//! duplicated, the delay the link charged (virtual µs between send and
//! first delivery), and how much of that charge sits on *certifying*
//! chains — traces an `async.quiesce` event names as the cause of a
//! certificate closing. Legacy v2 logs simply skip the table.

use crate::report::{fmt, Table};
use lb_telemetry::{json, EventLog, Json, SPAN_CLOSE, SPAN_OPEN};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span id from the log.
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `solver.sweep`.
    pub name: String,
    /// Collector timestamp of the `span_open` event.
    pub open_t_us: u64,
    /// Collector timestamp of the `span_close` event; `None` when the
    /// span was still open at end-of-log.
    pub close_t_us: Option<u64>,
    /// Open-time fields (minus the structural `span`/`parent`/`name`).
    pub open_fields: Vec<(String, Json)>,
    /// Close-time fields (minus the structural `span`).
    pub close_fields: Vec<(String, Json)>,
    /// Indices of child nodes, in open order.
    pub children: Vec<usize>,
    /// Tree depth (roots are 0).
    pub depth: usize,
}

/// The reconstructed span forest.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// All spans, in open order.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans, in open order.
    pub roots: Vec<usize>,
    /// Spans whose named parent never appeared (0 for any log that
    /// passes schema validation).
    pub orphans: usize,
    /// Spans still open at end-of-log.
    pub open_at_eof: usize,
    /// Timestamp of the last event in the log (close bound for spans
    /// left open).
    pub end_t_us: u64,
}

impl SpanTree {
    /// The effective close time of a node (end-of-log for open spans).
    pub fn close_of(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        node.close_t_us.unwrap_or(self.end_t_us).max(node.open_t_us)
    }

    /// Duration of a node in microseconds.
    pub fn duration_us(&self, idx: usize) -> u64 {
        self.close_of(idx) - self.nodes[idx].open_t_us
    }
}

/// Builds the span forest from a parsed log.
pub fn build_tree(log: &EventLog) -> SpanTree {
    let end_t_us = log.events.last().map_or(0, |e| e.t_us);
    let mut nodes: Vec<SpanNode> = Vec::new();
    let mut roots = Vec::new();
    let mut orphans = 0usize;
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in &log.events {
        match ev.name.as_str() {
            SPAN_OPEN => {
                let Some(id) = ev.field("span").and_then(Json::as_u64) else {
                    continue;
                };
                let name = ev
                    .field("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let parent = ev.field("parent").and_then(Json::as_u64);
                let idx = nodes.len();
                let (parent, depth) = match parent {
                    Some(p) => match by_id.get(&p) {
                        Some(&pidx) => {
                            nodes[pidx].children.push(idx);
                            (Some(p), nodes[pidx].depth + 1)
                        }
                        None => {
                            // Parent never opened: impossible after
                            // schema validation, but keep the span as
                            // a root rather than dropping data.
                            orphans += 1;
                            roots.push(idx);
                            (Some(p), 0)
                        }
                    },
                    None => {
                        roots.push(idx);
                        (None, 0)
                    }
                };
                nodes.push(SpanNode {
                    id,
                    parent,
                    name,
                    open_t_us: ev.t_us,
                    close_t_us: None,
                    open_fields: ev
                        .fields
                        .iter()
                        .filter(|(k, _)| !matches!(k.as_str(), "span" | "parent" | "name"))
                        .cloned()
                        .collect(),
                    close_fields: Vec::new(),
                    children: Vec::new(),
                    depth,
                });
                by_id.insert(id, idx);
            }
            SPAN_CLOSE => {
                let Some(id) = ev.field("span").and_then(Json::as_u64) else {
                    continue;
                };
                if let Some(&idx) = by_id.get(&id) {
                    nodes[idx].close_t_us = Some(ev.t_us);
                    nodes[idx].close_fields = ev
                        .fields
                        .iter()
                        .filter(|(k, _)| k != "span")
                        .cloned()
                        .collect();
                }
            }
            _ => {}
        }
    }
    let open_at_eof = nodes.iter().filter(|n| n.close_t_us.is_none()).count();
    SpanTree {
        nodes,
        roots,
        orphans,
        open_at_eof,
        end_t_us,
    }
}

/// Per-name aggregate over the forest.
#[derive(Debug, Clone)]
pub struct NameStat {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: usize,
    /// Summed durations (overlapping spans double-count; this is CPU-ish
    /// volume, not wall time).
    pub total_us: u64,
    /// Summed self time (duration minus child-covered time, clamped).
    pub self_us: u64,
    /// Wall time this name is responsible for on the critical path.
    pub critical_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// The full analysis of one trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The reconstructed forest.
    pub tree: SpanTree,
    /// Per-name aggregates, sorted by critical-path share descending.
    pub stats: Vec<NameStat>,
    /// Wall time: the sum of root-span durations.
    pub wall_us: u64,
    /// Total critical-path attribution (equals `wall_us` by
    /// construction; kept separate so the invariant is checkable).
    pub critical_us: u64,
    /// Deepest nesting level observed.
    pub max_depth: usize,
}

/// Analyzes a parsed log: reconstructs the forest and computes the
/// critical-path and self-time attributions.
pub fn analyze(log: &EventLog) -> Analysis {
    let tree = build_tree(log);
    let mut critical: BTreeMap<&str, u64> = BTreeMap::new();
    let mut wall_us = 0u64;
    for &root in &tree.roots {
        wall_us += tree.duration_us(root);
        walk_critical(&tree, root, tree.close_of(root), &mut critical);
    }
    let critical_us = critical.values().sum();

    let mut by_name: BTreeMap<&str, NameStat> = BTreeMap::new();
    for (idx, node) in tree.nodes.iter().enumerate() {
        let dur = tree.duration_us(idx);
        let covered: u64 = node
            .children
            .iter()
            .map(|&c| {
                // Clamp the child into the parent's interval so a
                // straggler can't push self time negative.
                let o = tree.nodes[c].open_t_us.max(node.open_t_us);
                let c_end = tree.close_of(c).min(tree.close_of(idx)).max(o);
                c_end - o
            })
            .sum();
        let stat = by_name.entry(node.name.as_str()).or_insert(NameStat {
            name: node.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
            critical_us: 0,
            max_us: 0,
        });
        stat.count += 1;
        stat.total_us += dur;
        stat.self_us += dur.saturating_sub(covered);
        stat.max_us = stat.max_us.max(dur);
    }
    for (name, us) in &critical {
        if let Some(stat) = by_name.get_mut(name) {
            stat.critical_us = *us;
        }
    }
    let mut stats: Vec<NameStat> = by_name.into_values().collect();
    stats.sort_by(|a, b| b.critical_us.cmp(&a.critical_us).then(a.name.cmp(&b.name)));
    let max_depth = tree.nodes.iter().map(|n| n.depth).max().unwrap_or(0);
    Analysis {
        tree,
        stats,
        wall_us,
        critical_us,
        max_depth,
    }
}

/// Backward critical-path walk over `idx` clipped to
/// `[open, window_end]`: repeatedly descend into the last-finishing
/// child at or before the cursor, charging inter-child gaps to `idx`'s
/// own name. Children that ran concurrently with the chain walked so
/// far (their interval already covered) do not extend the path; a
/// partially covered child recurses with a tightened window. The
/// charges sum to exactly `min(close, window_end) - open`, so the
/// whole-forest attribution equals the wall time.
fn walk_critical<'a>(
    tree: &'a SpanTree,
    idx: usize,
    window_end: u64,
    out: &mut BTreeMap<&'a str, u64>,
) {
    let node = &tree.nodes[idx];
    let open = node.open_t_us;
    let mut cursor = tree.close_of(idx).min(window_end).max(open);
    // Children sorted by effective close, latest first.
    let mut kids: Vec<usize> = node.children.clone();
    kids.sort_by_key(|&c| std::cmp::Reverse(tree.close_of(c)));
    let mut own = 0u64;
    for c in kids {
        let c_open = tree.nodes[c].open_t_us.max(open);
        if c_open >= cursor {
            continue; // Fully covered by the chain walked so far.
        }
        let c_close = tree.close_of(c).min(cursor).max(c_open);
        own += cursor - c_close;
        walk_critical(tree, c, c_close, out);
        cursor = c_open;
    }
    own += cursor - open;
    *out.entry(node.name.as_str()).or_insert(0) += own;
}

/// Serializes the forest as Chrome trace-event JSON (`chrome://tracing`
/// or Perfetto): one `"X"` complete event per span, `ts`/`dur` in
/// microseconds, and a greedy lane (`tid`) assignment that keeps every
/// lane properly nested — a span shares its parent's lane when it fits,
/// and overlapping siblings (parallel workers) spill onto fresh lanes.
pub fn chrome_trace(a: &Analysis) -> String {
    let lanes = assign_lanes(&a.tree);
    let lane_count = lanes.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = String::with_capacity(128 * a.tree.nodes.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for lane in 0..lane_count {
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        );
    }
    for (idx, node) in a.tree.nodes.iter().enumerate() {
        emit_sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        json::escape_str(&mut out, &node.name);
        let _ = write!(
            out,
            ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            node.open_t_us,
            a.tree.duration_us(idx),
            lanes[idx]
        );
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"span\":{}", node.id);
        if node.close_t_us.is_none() {
            out.push_str(",\"open_at_eof\":true");
        }
        for (k, v) in node.open_fields.iter().chain(node.close_fields.iter()) {
            out.push(',');
            json::escape_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn emit_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Greedy lane assignment: processing spans in open order, each span
/// takes its parent's lane when the lane's innermost open interval
/// still contains it, otherwise the lowest lane where it nests
/// cleanly, otherwise a fresh lane.
fn assign_lanes(tree: &SpanTree) -> Vec<u64> {
    let mut lanes: Vec<u64> = vec![0; tree.nodes.len()];
    // Per lane: stack of close times of intervals currently covering
    // the scan position, outermost first.
    let mut stacks: Vec<Vec<u64>> = Vec::new();
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for (idx, node) in tree.nodes.iter().enumerate() {
        let open = node.open_t_us;
        let close = tree.close_of(idx);
        let preferred = node
            .parent
            .and_then(|p| by_id.get(&p))
            .map(|&pidx| lanes[pidx] as usize);
        let candidates = preferred.into_iter().chain(0..=stacks.len());
        let mut placed = None;
        for lane in candidates {
            if lane == stacks.len() {
                stacks.push(Vec::new());
            }
            let stack = &mut stacks[lane];
            while stack.last().is_some_and(|&c| c <= open) {
                stack.pop();
            }
            if stack.last().is_none_or(|&c| c >= close) {
                stack.push(close);
                placed = Some(lane as u64);
                break;
            }
        }
        lanes[idx] = placed.unwrap_or_else(|| {
            stacks.push(vec![close]);
            (stacks.len() - 1) as u64
        });
        by_id.insert(node.id, idx);
    }
    lanes
}

/// Folded-stack lines (`root;child;leaf self_us`), aggregated per
/// unique stack and sorted — the input format of flamegraph tooling.
pub fn folded_stacks(a: &Analysis) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for &root in &a.tree.roots {
        fold_into(a, root, String::new(), &mut agg);
    }
    let mut out = String::new();
    for (stack, us) in agg {
        let _ = writeln!(out, "{stack} {us}");
    }
    out
}

fn fold_into(a: &Analysis, idx: usize, prefix: String, agg: &mut BTreeMap<String, u64>) {
    let node = &a.tree.nodes[idx];
    let stack = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix};{}", node.name)
    };
    let dur = a.tree.duration_us(idx);
    let covered: u64 = node
        .children
        .iter()
        .map(|&c| {
            let o = a.tree.nodes[c].open_t_us.max(node.open_t_us);
            (a.tree.close_of(c).min(a.tree.close_of(idx)).max(o)) - o
        })
        .sum();
    *agg.entry(stack.clone()).or_insert(0) += dur.saturating_sub(covered);
    for &c in &node.children {
        fold_into(a, c, stack.clone(), agg);
    }
}

/// Renders an ASCII timeline of the forest: one indented row per span
/// (pre-order, capped at `max_rows`), with a bar showing its interval
/// on a shared time axis of `width` characters. Non-root spans too
/// short to cover one axis cell are pruned (with their subtrees) so
/// the structure stays readable when leaf spans are microseconds on a
/// multi-second axis; a trailing note counts everything hidden.
pub fn render_timeline(a: &Analysis, width: usize, max_rows: usize) -> String {
    let t0 = a
        .tree
        .roots
        .iter()
        .map(|&r| a.tree.nodes[r].open_t_us)
        .min()
        .unwrap_or(0);
    let t1 = a
        .tree
        .roots
        .iter()
        .map(|&r| a.tree.close_of(r))
        .max()
        .unwrap_or(t0)
        .max(t0 + 1);
    let span_us = t1 - t0;
    let mut rows: Vec<(usize, usize)> = Vec::new(); // (depth, idx)
    let mut hidden = 0usize;
    let mut stack: Vec<(usize, usize)> = a.tree.roots.iter().rev().map(|&r| (0usize, r)).collect();
    while let Some((depth, idx)) = stack.pop() {
        // Prune sub-cell spans (and their subtrees) below the roots.
        if depth > 0 && (a.tree.duration_us(idx) as u128 * width as u128) < span_us as u128 {
            hidden += 1 + descendants(&a.tree, idx);
            continue;
        }
        rows.push((depth, idx));
        for &c in a.tree.nodes[idx].children.iter().rev() {
            stack.push((depth + 1, c));
        }
    }
    let total = rows.len();
    rows.truncate(max_rows);
    let label_w = rows
        .iter()
        .map(|&(d, i)| 2 * d + a.tree.nodes[i].name.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<label_w$}  |{}|  span of {:.3} ms",
        "span",
        "-".repeat(width),
        us_to_ms(span_us)
    );
    for (depth, idx) in rows {
        let node = &a.tree.nodes[idx];
        let open = node.open_t_us - t0;
        let close = a.tree.close_of(idx) - t0;
        let lo = (open as u128 * width as u128 / span_us as u128) as usize;
        let hi = ((close as u128 * width as u128).div_ceil(span_us as u128) as usize)
            .clamp(lo + 1, width);
        let mut bar = String::with_capacity(width);
        for i in 0..width {
            bar.push(if i >= lo && i < hi { '#' } else { '.' });
        }
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        let _ = writeln!(
            out,
            "{label:<label_w$}  |{bar}|  {:>9.3} ms{}",
            us_to_ms(a.tree.duration_us(idx)),
            if node.close_t_us.is_none() {
                "  (open at eof)"
            } else {
                ""
            }
        );
    }
    if total > max_rows {
        let _ = writeln!(out, "... ({} more spans)", total - max_rows);
    }
    if hidden > 0 {
        let _ = writeln!(out, "({hidden} sub-cell spans hidden)");
    }
    out
}

/// Number of descendants of `idx` (excluding `idx` itself).
fn descendants(tree: &SpanTree, idx: usize) -> usize {
    tree.nodes[idx]
        .children
        .iter()
        .map(|&c| 1 + descendants(tree, c))
        .sum()
}

#[allow(clippy::cast_precision_loss)]
fn us_to_ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Everything the `analyze` subcommand produced.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// The trace that was analyzed.
    pub log_path: PathBuf,
    /// Path of the Chrome trace-event JSON export.
    pub chrome_path: PathBuf,
    /// Path of the folded-stack flamegraph text.
    pub folded_path: PathBuf,
    /// Path of the per-name attribution CSV.
    pub csv_path: PathBuf,
    /// Rendered ASCII timeline.
    pub timeline: String,
    /// Summary tables (tree shape, per-name attribution, and — for
    /// schema-v3 logs with cross-node hops — per-link staleness
    /// attribution).
    pub tables: Vec<Table>,
    /// The analysis itself, for programmatic use.
    pub analysis: Analysis,
}

/// Runs the analyzer: reads and schema-validates `log_path` (default:
/// `<out>/trace_table1.jsonl`), reconstructs the span forest, and
/// writes the Chrome JSON, folded stacks, and attribution CSV next to
/// the other artifacts in `out`.
///
/// # Errors
///
/// I/O failures, a schema-invalid log, a log without span events, or a
/// Chrome JSON export that fails to re-parse (encoder bug).
pub fn run(log_path: Option<&Path>, out: &Path) -> Result<AnalyzeReport, String> {
    let log_path = log_path.map_or_else(|| out.join("trace_table1.jsonl"), Path::to_path_buf);
    // Stream the log line by line: validation never buffers the raw
    // text, so multi-GB traces cost only the parsed events we keep.
    let reader = lb_telemetry::LogReader::open(&log_path)
        .map_err(|e| format!("{}: {e}", log_path.display()))?;
    let version = reader.version();
    let events = reader
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", log_path.display()))?;
    let log = EventLog { version, events };
    let a = analyze(&log);
    if a.tree.nodes.is_empty() {
        return Err(format!(
            "{}: no span events (schema v{} log without spans — \
             re-run `experiments trace` to regenerate)",
            log_path.display(),
            log.version
        ));
    }

    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let stem = log_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace");
    let chrome = chrome_trace(&a);
    // Round-trip the export through the same parser that validates the
    // event log: a Chrome file we cannot re-parse is an encoder bug.
    json::parse(&chrome).map_err(|e| format!("chrome trace export is not valid JSON: {e}"))?;
    let chrome_path = out.join(format!("{stem}_chrome.json"));
    std::fs::write(&chrome_path, &chrome)
        .map_err(|e| format!("writing {}: {e}", chrome_path.display()))?;
    let folded_path = out.join(format!("{stem}_folded.txt"));
    std::fs::write(&folded_path, folded_stacks(&a))
        .map_err(|e| format!("writing {}: {e}", folded_path.display()))?;

    let mut tables = vec![render_shape(&a, &log), render_attribution(&a)];
    if let Some(staleness) = render_staleness(&log) {
        tables.push(staleness);
    }
    if let Some(sampling) = render_sampling(&log) {
        tables.push(sampling);
    }
    let csv_path = out.join(format!("{stem}_spans.csv"));
    tables[1]
        .write_csv(&csv_path)
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    let timeline = render_timeline(&a, 60, 24);
    Ok(AnalyzeReport {
        log_path,
        chrome_path,
        folded_path,
        csv_path,
        timeline,
        tables,
        analysis: a,
    })
}

/// Sampling reweighting table — present only for head-sampled traces
/// (those carrying `sample.digest` aggregates). Kept counts come from
/// the surviving events; dropped counts from the digests; their sum is
/// the exact emitted total per event type, so attribution over a
/// sampled trace is reweightable without guessing at the rate.
fn render_sampling(log: &EventLog) -> Option<Table> {
    let dropped = crate::trace::digest_counts(log);
    if dropped.is_empty() {
        return None;
    }
    let mut t = Table::new(
        "Analyze: sampling reweighting (kept + dropped = emitted)".to_string(),
        vec![
            "event".to_string(),
            "kept".to_string(),
            "dropped".to_string(),
            "emitted".to_string(),
            "kept %".to_string(),
        ],
    );
    for (name, drop_count) in &dropped {
        let kept = log.count(name) as u64;
        let emitted = kept + drop_count;
        #[allow(clippy::cast_precision_loss)]
        let share = if emitted == 0 {
            100.0
        } else {
            100.0 * kept as f64 / emitted as f64
        };
        t.row(vec![
            name.clone(),
            kept.to_string(),
            drop_count.to_string(),
            emitted.to_string(),
            fmt(share),
        ]);
    }
    Some(t)
}

/// The forest-shape summary table.
fn render_shape(a: &Analysis, log: &EventLog) -> Table {
    let mut t = Table::new(
        "Analyze: span forest".to_string(),
        vec!["metric".to_string(), "value".to_string()],
    );
    let row = |t: &mut Table, k: &str, v: String| t.row(vec![k.to_string(), v]);
    row(&mut t, "events", log.events.len().to_string());
    row(&mut t, "spans", a.tree.nodes.len().to_string());
    row(&mut t, "roots", a.tree.roots.len().to_string());
    row(&mut t, "orphans", a.tree.orphans.to_string());
    row(&mut t, "open at eof", a.tree.open_at_eof.to_string());
    row(&mut t, "max depth", a.max_depth.to_string());
    row(&mut t, "wall (ms)", fmt(us_to_ms(a.wall_us)));
    row(&mut t, "critical path (ms)", fmt(us_to_ms(a.critical_us)));
    #[allow(clippy::cast_precision_loss)]
    let coverage = if a.wall_us == 0 {
        100.0
    } else {
        100.0 * a.critical_us as f64 / a.wall_us as f64
    };
    row(&mut t, "critical coverage (%)", fmt(coverage));
    t
}

/// The per-name attribution table, critical-path share first.
fn render_attribution(a: &Analysis) -> Table {
    let mut t = Table::new(
        "Analyze: per-name attribution (critical path first)".to_string(),
        vec![
            "span".to_string(),
            "count".to_string(),
            "critical ms".to_string(),
            "critical %".to_string(),
            "self ms".to_string(),
            "total ms".to_string(),
            "max ms".to_string(),
        ],
    );
    for s in &a.stats {
        #[allow(clippy::cast_precision_loss)]
        let share = if a.wall_us == 0 {
            0.0
        } else {
            100.0 * s.critical_us as f64 / a.wall_us as f64
        };
        t.row(vec![
            s.name.clone(),
            s.count.to_string(),
            fmt(us_to_ms(s.critical_us)),
            fmt(share),
            fmt(us_to_ms(s.self_us)),
            fmt(us_to_ms(s.total_us)),
            fmt(us_to_ms(s.max_us)),
        ]);
    }
    t
}

/// Accumulated charges for one directed network link.
#[derive(Default)]
struct LinkCharge {
    sends: u64,
    delivered: u64,
    lost: u64,
    dup_extras: u64,
    delay_us: u64,
    max_delay_us: u64,
    /// Delay charged to certifying chains (traces named by an
    /// `async.quiesce` event).
    cert_delay_us: u64,
    /// Hops of certifying chains this link lost (each one forced a
    /// retry or an anti-entropy round before the certificate could
    /// close).
    cert_lost: u64,
}

/// The per-link staleness attribution table, or `None` when the log
/// carries no cross-node hops (a legacy v2 trace, or a scenario
/// without the virtual network).
fn render_staleness(log: &EventLog) -> Option<Table> {
    // First pass: every send decision, keyed by its unique span id.
    // (t_us, from, to, trace, recv count, first-delivery t_us)
    let mut hops: BTreeMap<u64, (u64, u64, u64, u64, u64, u64)> = BTreeMap::new();
    let mut cert_traces: Vec<u64> = Vec::new();
    let u = |ev: &lb_telemetry::LogEvent, key: &str| ev.field(key).and_then(Json::as_u64);
    for ev in &log.events {
        match ev.name.as_str() {
            "xspan.send" => {
                if let (Some(span), Some(t), Some(from), Some(to), Some(trace)) = (
                    u(ev, "span"),
                    u(ev, "t_us"),
                    u(ev, "from"),
                    u(ev, "to"),
                    u(ev, "trace"),
                ) {
                    hops.insert(span, (t, from, to, trace, 0, 0));
                }
            }
            "xspan.recv" => {
                if let (Some(span), Some(t)) = (u(ev, "span"), u(ev, "t_us")) {
                    if let Some(h) = hops.get_mut(&span) {
                        if h.4 == 0 {
                            h.5 = t;
                        }
                        h.4 += 1;
                    }
                }
            }
            "async.quiesce" => {
                if let Some(trace) = u(ev, "trace") {
                    if trace != 0 {
                        cert_traces.push(trace);
                    }
                }
            }
            _ => {}
        }
    }
    if hops.is_empty() {
        return None;
    }

    // Second pass: fold the hops into per-link charges.
    let mut links: BTreeMap<(u64, u64), LinkCharge> = BTreeMap::new();
    for (t_send, from, to, trace, recvs, t_first) in hops.values() {
        let link = links.entry((*from, *to)).or_default();
        link.sends += 1;
        let certifying = cert_traces.contains(trace);
        if *recvs == 0 {
            link.lost += 1;
            if certifying {
                link.cert_lost += 1;
            }
        } else {
            link.delivered += 1;
            link.dup_extras += recvs - 1;
            let delay = t_first.saturating_sub(*t_send);
            link.delay_us += delay;
            link.max_delay_us = link.max_delay_us.max(delay);
            if certifying {
                link.cert_delay_us += delay;
            }
        }
    }

    let mut t = Table::new(
        "Analyze: per-link staleness attribution (xspan hops)".to_string(),
        vec![
            "link".to_string(),
            "sends".to_string(),
            "delivered".to_string(),
            "lost".to_string(),
            "loss %".to_string(),
            "dup extras".to_string(),
            "mean delay (ms)".to_string(),
            "max delay (ms)".to_string(),
            "cert delay (ms)".to_string(),
            "cert lost".to_string(),
        ],
    );
    for ((from, to), link) in &links {
        #[allow(clippy::cast_precision_loss)]
        let loss_pct = 100.0 * link.lost as f64 / link.sends as f64;
        #[allow(clippy::cast_precision_loss)]
        let mean_delay = if link.delivered == 0 {
            0.0
        } else {
            us_to_ms(link.delay_us) / link.delivered as f64
        };
        t.row(vec![
            format!("{from}->{to}"),
            link.sends.to_string(),
            link.delivered.to_string(),
            link.lost.to_string(),
            fmt(loss_pct),
            link.dup_extras.to_string(),
            fmt(mean_delay),
            fmt(us_to_ms(link.max_delay_us)),
            fmt(us_to_ms(link.cert_delay_us)),
            link.cert_lost.to_string(),
        ]);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_telemetry::schema::{encode_event_line, header_line};
    use lb_telemetry::FieldValue;

    type EventRow<'a> = (u64, &'a str, &'a [(&'static str, FieldValue)]);

    /// Builds a log from (t_us, open?, id, parent, name) tuples plus
    /// close rows as (t_us, id).
    fn log_from(events: &[EventRow<'_>]) -> EventLog {
        let mut text = format!("{}\n", header_line());
        for (seq, (t, name, fields)) in events.iter().enumerate() {
            let fields: Vec<(&'static str, FieldValue)> = fields.to_vec();
            text.push_str(&encode_event_line(seq as u64, *t, name, &fields));
            text.push('\n');
        }
        lb_telemetry::parse_log(&text).unwrap()
    }

    fn open(id: u64, name: &'static str) -> Vec<(&'static str, FieldValue)> {
        vec![("span", FieldValue::U64(id)), ("name", name.into())]
    }

    fn open_in(id: u64, parent: u64, name: &'static str) -> Vec<(&'static str, FieldValue)> {
        vec![
            ("span", FieldValue::U64(id)),
            ("parent", FieldValue::U64(parent)),
            ("name", name.into()),
        ]
    }

    fn close(id: u64) -> Vec<(&'static str, FieldValue)> {
        vec![("span", FieldValue::U64(id))]
    }

    /// root [0,100] with parallel children a [10,60] and b [20,90]:
    /// the backward walk charges root for [90,100], b for [20,90], then
    /// a for its uncovered tail [10,20], and root for [0,10].
    #[test]
    fn critical_path_walks_the_last_finishing_chain() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "a");
        let o3 = open_in(3, 1, "b");
        let log = log_from(&[
            (0, SPAN_OPEN, &o1),
            (10, SPAN_OPEN, &o2),
            (20, SPAN_OPEN, &o3),
            (60, SPAN_CLOSE, &close(2)),
            (90, SPAN_CLOSE, &close(3)),
            (100, SPAN_CLOSE, &close(1)),
        ]);
        let a = analyze(&log);
        assert_eq!(a.tree.nodes.len(), 3);
        assert_eq!(a.tree.roots.len(), 1);
        assert_eq!(a.tree.orphans, 0);
        assert_eq!(a.wall_us, 100);
        assert_eq!(a.critical_us, a.wall_us, "attribution is exact");
        let by: BTreeMap<&str, u64> = a
            .stats
            .iter()
            .map(|s| (s.name.as_str(), s.critical_us))
            .collect();
        assert_eq!(by["root"], 20, "gaps [90,100] and [0,10]");
        assert_eq!(by["b"], 70);
        assert_eq!(by["a"], 10, "only the tail [10,20] b does not cover");
        // Self time: root covered 50+70=120 > 100 → clamps to 0.
        let root_stat = a.stats.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root_stat.self_us, 0);
        assert_eq!(root_stat.total_us, 100);
        assert_eq!(a.max_depth, 1);
    }

    #[test]
    fn sequential_children_attribute_gaps_to_the_parent() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "step");
        let o3 = open_in(3, 1, "step");
        let log = log_from(&[
            (0, SPAN_OPEN, &o1),
            (10, SPAN_OPEN, &o2),
            (30, SPAN_CLOSE, &close(2)),
            (40, SPAN_OPEN, &o3),
            (70, SPAN_CLOSE, &close(3)),
            (100, SPAN_CLOSE, &close(1)),
        ]);
        let a = analyze(&log);
        let by: BTreeMap<&str, u64> = a
            .stats
            .iter()
            .map(|s| (s.name.as_str(), s.critical_us))
            .collect();
        assert_eq!(by["root"], 50, "gaps [0,10], [30,40], [70,100]");
        assert_eq!(by["step"], 50);
        assert_eq!(a.critical_us, 100);
        let root_stat = a.stats.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root_stat.self_us, 50);
    }

    #[test]
    fn open_at_eof_spans_extend_to_log_end() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "child");
        let log = log_from(&[(0, SPAN_OPEN, &o1), (10, SPAN_OPEN, &o2), (50, "tick", &[])]);
        let a = analyze(&log);
        assert_eq!(a.tree.open_at_eof, 2);
        assert_eq!(a.wall_us, 50);
        assert_eq!(a.critical_us, 50);
        assert_eq!(a.tree.duration_us(1), 40);
    }

    #[test]
    fn chrome_trace_round_trips_and_separates_overlapping_siblings() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "a");
        let o3 = open_in(3, 1, "b");
        let o4 = open_in(4, 2, "a.inner");
        let log = log_from(&[
            (0, SPAN_OPEN, &o1),
            (10, SPAN_OPEN, &o2),
            (20, SPAN_OPEN, &o3),
            (25, SPAN_OPEN, &o4),
            (40, SPAN_CLOSE, &close(4)),
            (60, SPAN_CLOSE, &close(2)),
            (90, SPAN_CLOSE, &close(3)),
            (100, SPAN_CLOSE, &close(1)),
        ]);
        let a = analyze(&log);
        let text = chrome_trace(&a);
        let parsed = json::parse(&text).expect("chrome JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4, "one X event per span");
        let tid_of = |name: &str| {
            xs.iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("tid"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        // a nests inside root's lane; b overlaps a so it spills; a.inner
        // nests inside a.
        assert_eq!(tid_of("root"), tid_of("a"));
        assert_eq!(tid_of("a"), tid_of("a.inner"));
        assert_ne!(tid_of("root"), tid_of("b"));
        // Durations survive the round trip.
        let root_ev = xs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("root"))
            .unwrap();
        assert_eq!(root_ev.get("ts").and_then(Json::as_u64), Some(0));
        assert_eq!(root_ev.get("dur").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn folded_stacks_aggregate_self_time_per_stack() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "step");
        let o3 = open_in(3, 1, "step");
        let log = log_from(&[
            (0, SPAN_OPEN, &o1),
            (10, SPAN_OPEN, &o2),
            (30, SPAN_CLOSE, &close(2)),
            (40, SPAN_OPEN, &o3),
            (70, SPAN_CLOSE, &close(3)),
            (100, SPAN_CLOSE, &close(1)),
        ]);
        let a = analyze(&log);
        let folded = folded_stacks(&a);
        assert!(folded.contains("root 50\n"), "{folded}");
        assert!(folded.contains("root;step 50\n"), "{folded}");
    }

    #[test]
    fn timeline_renders_a_bar_per_span_and_caps_rows() {
        let o1 = open(1, "root");
        let o2 = open_in(2, 1, "child");
        let log = log_from(&[
            (0, SPAN_OPEN, &o1),
            (25, SPAN_OPEN, &o2),
            (75, SPAN_CLOSE, &close(2)),
            (100, SPAN_CLOSE, &close(1)),
        ]);
        let a = analyze(&log);
        let text = render_timeline(&a, 20, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 spans: {text}");
        assert!(lines[1].contains("root"));
        assert!(lines[1].contains("####################"), "{text}");
        assert!(lines[2].contains("  child"));
        let capped = render_timeline(&a, 20, 1);
        assert!(capped.contains("(1 more spans)"), "{capped}");
    }

    #[test]
    fn analyze_reconstructs_a_real_trace_end_to_end() {
        let dir = std::env::temp_dir().join(format!("lb_analyze_test_{}", std::process::id()));
        let report = crate::trace::run(&dir, false).unwrap();
        let out = run(Some(&report.log_path), &dir).unwrap();
        let a = &out.analysis;
        assert_eq!(a.tree.orphans, 0, "every span's parent resolves");
        assert_eq!(a.tree.open_at_eof, 0, "clean shutdown closes all spans");
        assert!(a.critical_us >= a.wall_us * 95 / 100, "coverage >= 95%");
        assert!(a.max_depth >= 2, "solver/ring/sim trees all nest");
        let names: Vec<&str> = a.stats.iter().map(|s| s.name.as_str()).collect();
        for expect in [
            "solver.solve",
            "solver.sweep",
            "solver.best_reply",
            "ring.run",
            "ring.round",
            "ring.hold",
            "sim.run",
            "runner.pool",
            "runner.worker",
            "sim.replication",
            "des.batch",
            "sim.churn",
            "sim.phase_run",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        assert!(out.chrome_path.exists());
        assert!(out.folded_path.exists());
        assert!(out.csv_path.exists());
        // The v3 trace carries cross-node hops, so the staleness
        // attribution table rides along (shape, attribution, staleness).
        assert_eq!(out.tables.len(), 3);
        assert!(
            out.tables[2].render().contains("staleness attribution"),
            "{}",
            out.tables[2].render()
        );
        assert!(!out.tables[2].is_empty(), "at least one link row");
        let chrome = std::fs::read_to_string(&out.chrome_path).unwrap();
        let parsed = json::parse(&chrome).expect("chrome JSON re-parses");
        let n_x = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(n_x, a.tree.nodes.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staleness_attribution_charges_links_for_loss_delay_and_certification() {
        let send = |span: u64, trace: u64, t: u64, from: u64, to: u64| {
            vec![
                ("t_us", FieldValue::U64(t)),
                ("trace", FieldValue::U64(trace)),
                ("span", FieldValue::U64(span)),
                ("parent", FieldValue::U64(0)),
                ("from", FieldValue::U64(from)),
                ("to", FieldValue::U64(to)),
            ]
        };
        let recv = |span: u64, trace: u64, t: u64, from: u64, to: u64| {
            vec![
                ("t_us", FieldValue::U64(t)),
                ("trace", FieldValue::U64(trace)),
                ("span", FieldValue::U64(span)),
                ("from", FieldValue::U64(from)),
                ("to", FieldValue::U64(to)),
            ]
        };
        // Link 1->0 carries three hops: one duplicated (two deliveries
        // of span 11, delay 250 us), one lost (span 12), one delivered
        // on the certifying trace 200 (span 13, delay 100 us). Link
        // 2->0 delivers span 14 cleanly.
        let quiesce = vec![
            ("t_us", FieldValue::U64(5_000)),
            ("trace", FieldValue::U64(200)),
        ];
        let s11 = send(11, 100, 1_000, 1, 0);
        let r11a = recv(11, 100, 1_250, 1, 0);
        let r11b = recv(11, 100, 1_400, 1, 0);
        let s12 = send(12, 100, 2_000, 1, 0);
        let s13 = send(13, 200, 3_000, 1, 0);
        let r13 = recv(13, 200, 3_100, 1, 0);
        let s14 = send(14, 300, 4_000, 2, 0);
        let r14 = recv(14, 300, 4_400, 2, 0);
        let log = log_from(&[
            (1_000, "xspan.send", &s11),
            (1_250, "xspan.recv", &r11a),
            (1_400, "xspan.recv", &r11b),
            (2_000, "xspan.send", &s12),
            (3_000, "xspan.send", &s13),
            (3_100, "xspan.recv", &r13),
            (4_000, "xspan.send", &s14),
            (4_400, "xspan.recv", &r14),
            (5_000, "async.quiesce", &quiesce),
        ]);
        let t = render_staleness(&log).expect("xspan hops present");
        assert_eq!(t.len(), 2, "one row per link");
        let rendered = t.render();
        // Link 1->0: 3 sends, 2 delivered, 1 lost (33.3%), 1 dup
        // extra, mean delay (250+100)/2 = 175 us, max 250 us; the
        // certifying trace was charged 100 us and lost nothing.
        assert!(rendered.contains("1->0"), "{rendered}");
        assert!(rendered.contains("33.3333"), "{rendered}");
        assert!(rendered.contains("0.1750"), "{rendered}");
        assert!(rendered.contains("0.2500"), "{rendered}");
        assert!(rendered.contains("0.1000"), "{rendered}");
        assert!(rendered.contains("2->0"), "{rendered}");

        // A log without hops produces no table.
        let plain = log_from(&[(0, "solver.start", &[])]);
        assert!(render_staleness(&plain).is_none());
    }

    #[test]
    fn run_rejects_span_free_logs() {
        let dir = std::env::temp_dir().join(format!("lb_analyze_nospan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.jsonl");
        let text = format!(
            "{}\n{}\n",
            header_line(),
            encode_event_line(0, 0, "solver.start", &[])
        );
        std::fs::write(&path, text).unwrap();
        let err = run(Some(&path), &dir).unwrap_err();
        assert!(err.contains("no span events"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
