//! # lb-experiments — regenerating every table and figure of the paper
//!
//! One module per experiment, each exposing a `run*` function returning a
//! structured result (consumed by tests and benches) and a rendering into
//! the paper's rows (consumed by the `experiments` CLI binary):
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — system configuration |
//! | [`fig2`] | Figure 2 — norm vs iterations, NASH_0 vs NASH_P |
//! | [`fig3`] | Figure 3 — iterations to converge vs number of users |
//! | [`fig4`] | Figure 4 — response time & fairness vs utilization |
//! | [`fig5`] | Figure 5 — per-user response times at 60% load |
//! | [`fig6`] | Figure 6 — response time & fairness vs speed skewness |
//!
//! [`beyond`] adds four extension experiments grounded in the paper's
//! future-work section (service-distribution robustness, Stackelberg
//! leaders, dynamic re-equilibration, observation noise). [`bench`] is
//! the `bench` subcommand: a curated perf harness over the criterion
//! shim that writes the machine-readable `BENCH_nash.json` summary.
//! [`trace`] replays a Table-1 scenario with telemetry on; [`analyze`]
//! reconstructs the resulting span forest into a causal profile
//! (critical path, self time, Chrome trace JSON, folded stacks);
//! [`watch`] is the live observability runtime — an observed replay
//! with streaming SLO windows served over a scrapeable HTTP endpoint.
//!
//! Every experiment has an **analytic** path (closed-form response times
//! under the computed profiles; deterministic) and, where the paper used
//! simulation, an optional **simulation** path (the DES with the paper's
//! five-replication methodology). EXPERIMENTS.md records the outputs
//! against the paper's reported shapes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analyze;
pub mod bench;
pub mod beyond;
pub mod cli;
pub mod config;
pub mod diff;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod report;
pub mod table1;
pub mod trace;
pub mod watch;
