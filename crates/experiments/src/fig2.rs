//! Figure 2 — convergence norm vs number of iterations for the NASH_0
//! and NASH_P variants (16 Table-1 computers, 10 users, 60% utilization).
//!
//! The paper's observation: starting from the proportional allocation
//! (NASH_P) the initial point is close to the equilibrium and the
//! iteration count drops to less than half of NASH_0's.

use crate::config::{EPSILON, MEDIUM_LOAD};
use crate::report::{fmt, Table};
use lb_game::diagnostics::ConvergenceReport;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use lb_game::StoppingRule;
use lb_stats::IterationTrace;

/// The two norm traces of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Per-iteration norm of NASH_0.
    pub nash0: Vec<f64>,
    /// Per-iteration norm of NASH_P.
    pub nashp: Vec<f64>,
}

impl Fig2Result {
    /// Iterations NASH_0 needed.
    pub fn iterations_nash0(&self) -> usize {
        self.nash0.len()
    }

    /// Iterations NASH_P needed.
    pub fn iterations_nashp(&self) -> usize {
        self.nashp.len()
    }

    /// Convergence diagnostics of both traces: `(nash0, nashp)`.
    pub fn diagnostics(&self) -> (ConvergenceReport, ConvergenceReport) {
        let t0: IterationTrace = self.nash0.iter().copied().collect();
        let tp: IterationTrace = self.nashp.iter().copied().collect();
        (
            ConvergenceReport::from_trace(&t0).expect("non-empty trace"),
            ConvergenceReport::from_trace(&tp).expect("non-empty trace"),
        )
    }
}

/// Runs the Figure 2 experiment at tolerance ε on the medium-load
/// Table-1 system.
///
/// # Errors
///
/// Propagates solver failures (cannot occur for the paper configuration).
pub fn run() -> Result<Fig2Result, GameError> {
    run_at(MEDIUM_LOAD, EPSILON)
}

/// Parameterized variant used by benches/tests.
///
/// # Errors
///
/// Propagates model-construction and solver failures.
pub fn run_at(rho: f64, eps: f64) -> Result<Fig2Result, GameError> {
    // Figure 2 *is* the paper's norm trace, so it pins the paper's
    // absolute-norm criterion; the solver default is the certified rule.
    let model = SystemModel::table1_system(rho)?;
    let nash0 = NashSolver::new(Initialization::Zero)
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(eps)
        .solve(&model)?;
    let nashp = NashSolver::new(Initialization::Proportional)
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(eps)
        .solve(&model)?;
    Ok(Fig2Result {
        nash0: nash0.trace().values().to_vec(),
        nashp: nashp.trace().values().to_vec(),
    })
}

/// Renders the two series side by side (blank cells once a variant has
/// converged).
pub fn render(r: &Fig2Result) -> Table {
    let mut t = Table::new(
        "Figure 2: norm vs number of iterations (16 computers, 10 users, rho=60%)",
        vec!["iteration", "NASH_0 norm", "NASH_P norm"],
    );
    let len = r.nash0.len().max(r.nashp.len());
    for i in 0..len {
        t.row(vec![
            (i + 1).to_string(),
            r.nash0.get(i).map(|&x| fmt(x)).unwrap_or_default(),
            r.nashp.get(i).map(|&x| fmt(x)).unwrap_or_default(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nashp_outperforms_nash0() {
        let r = run().unwrap();
        // Paper: NASH_P "significantly outperforms" NASH_0. In our
        // reproduction the win is consistent but smaller than the paper's
        // ">2x" headline (see EXPERIMENTS.md): the asymptotic contraction
        // rate of best-reply dynamics is initialization-independent, so a
        // closer start buys a constant number of iterations.
        assert!(
            r.iterations_nashp() < r.iterations_nash0(),
            "NASH_P {} vs NASH_0 {}",
            r.iterations_nashp(),
            r.iterations_nash0()
        );
        // The "closer to the equilibrium point" claim itself: the initial
        // proportional profile starts with a much smaller norm.
        assert!(
            r.nashp[0] < 0.5 * r.nash0[0],
            "initial norms: NASH_P {} vs NASH_0 {}",
            r.nashp[0],
            r.nash0[0]
        );
    }

    #[test]
    fn norms_decay_below_epsilon() {
        let r = run().unwrap();
        assert!(*r.nash0.last().unwrap() <= EPSILON);
        assert!(*r.nashp.last().unwrap() <= EPSILON);
        // Early NASH_0 norms are large (far-from-equilibrium start).
        assert!(r.nash0[0] > r.nash0[r.nash0.len() - 1] * 10.0);
    }

    #[test]
    fn diagnostics_expose_the_contraction_rate() {
        let r = run().unwrap();
        let (d0, dp) = r.diagnostics();
        let r0 = d0.tail_rate.unwrap();
        let rp = dp.tail_rate.unwrap();
        // Both initializations share (approximately) the same asymptotic
        // contraction rate — the EXPERIMENTS.md argument for why NASH_P's
        // win is a constant offset, not a constant factor.
        assert!((r0 - rp).abs() < 0.1, "tail rates {r0} vs {rp}");
        assert!(r0 > 0.5 && r0 < 1.0);
        assert!(d0.initial_norm > dp.initial_norm);
    }

    #[test]
    fn render_has_one_row_per_iteration() {
        let r = run().unwrap();
        let t = render(&r);
        assert_eq!(t.len(), r.iterations_nash0().max(r.iterations_nashp()));
    }
}
