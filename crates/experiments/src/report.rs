//! Plain-text tables and CSV artifacts for the experiment drivers.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: Vec<S>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header (driver bug).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or writing.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(fs::File::create(path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

/// Formats a float with 4 significant decimals for table cells.
pub fn fmt(x: f64) -> String {
    if x.is_nan() {
        "n/a".into()
    } else if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", vec!["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_enforced() {
        let mut t = Table::new("x", vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("lb_experiments_test");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(f64::NAN), "n/a");
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.5000");
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(0.0000012).contains('e'));
    }
}
