//! Figure 5 — expected response time of *each user* under every scheme at
//! medium load (Table-1 system, ρ = 60%).
//!
//! Shape to reproduce: PS and IOS give all users the same time (PS's much
//! higher); GOS shows large per-user differences; NASH gives every user a
//! low time with only a small spread — "from the users' perspective NASH
//! is the most desirable scheme".

use crate::config::MEDIUM_LOAD;
use crate::fig4::{evaluate_schemes, SchemeRow, SimOptions};
use crate::report::{fmt, Table};
use lb_game::error::GameError;
use lb_game::model::SystemModel;

/// The Figure 5 data: per-user response times per scheme.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Scheme rows (NASH, GOS, IOS, PS) with per-user times.
    pub rows: Vec<SchemeRow>,
    /// Number of users.
    pub users: usize,
}

impl Fig5Result {
    /// The row of a named scheme.
    ///
    /// # Panics
    ///
    /// Panics for an unknown scheme name (test helper).
    pub fn scheme(&self, name: &str) -> &SchemeRow {
        self.rows
            .iter()
            .find(|r| r.scheme == name)
            .unwrap_or_else(|| panic!("unknown scheme {name}"))
    }
}

/// Runs Figure 5 at the paper's medium load.
///
/// # Errors
///
/// Propagates model/scheme/simulation failures.
pub fn run(sim: Option<SimOptions>) -> Result<Fig5Result, GameError> {
    run_at(MEDIUM_LOAD, sim)
}

/// Parameterized variant.
///
/// # Errors
///
/// Propagates model/scheme/simulation failures.
pub fn run_at(rho: f64, sim: Option<SimOptions>) -> Result<Fig5Result, GameError> {
    let model = SystemModel::table1_system(rho)?;
    Ok(Fig5Result {
        rows: evaluate_schemes(&model, sim)?,
        users: model.num_users(),
    })
}

/// Renders the per-user table (users as rows, schemes as columns). When
/// the result carries simulated system means, a footer row compares them
/// with the analytic system means.
pub fn render(r: &Fig5Result) -> Table {
    let mut t = Table::new(
        "Figure 5: expected response time (sec) per user (rho=60%)",
        vec!["user", "NASH", "GOS", "IOS", "PS"],
    );
    for j in 0..r.users {
        t.row(vec![
            (j + 1).to_string(),
            fmt(r.scheme("NASH").user_times[j]),
            fmt(r.scheme("GOS").user_times[j]),
            fmt(r.scheme("IOS").user_times[j]),
            fmt(r.scheme("PS").user_times[j]),
        ]);
    }
    if r.rows.iter().all(|row| row.simulated_time.is_some()) {
        let mut cells = vec!["sys(sim)".to_string()];
        for name in ["NASH", "GOS", "IOS", "PS"] {
            cells.push(fmt(r.scheme(name).simulated_time.unwrap_or(f64::NAN)));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_and_ios_give_identical_times_to_all_users() {
        let r = run(None).unwrap();
        for name in ["PS", "IOS"] {
            let times = &r.scheme(name).user_times;
            let t0 = times[0];
            for &t in times {
                assert!((t - t0).abs() < 1e-9, "{name} user spread");
            }
        }
        // PS's common time exceeds IOS's.
        assert!(r.scheme("PS").user_times[0] > r.scheme("IOS").user_times[0]);
    }

    #[test]
    fn gos_has_large_user_spread_nash_small() {
        let r = run(None).unwrap();
        let spread = |times: &[f64]| {
            let max = times.iter().cloned().fold(f64::MIN, f64::max);
            let min = times.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        let gos = spread(&r.scheme("GOS").user_times);
        let nash = spread(&r.scheme("NASH").user_times);
        assert!(gos > 1.5, "GOS spread {gos} should be large");
        assert!(nash < 1.3, "NASH spread {nash} should be modest");
        assert!(nash < gos / 2.0, "NASH spread {nash} vs GOS spread {gos}");
    }

    #[test]
    fn every_user_prefers_nash_to_ps_and_ios() {
        // The user-optimality story: each user's Nash time beats what the
        // fair-but-suboptimal schemes give it at this load.
        let r = run(None).unwrap();
        let nash = &r.scheme("NASH").user_times;
        let ios = &r.scheme("IOS").user_times;
        let ps = &r.scheme("PS").user_times;
        for j in 0..r.users {
            assert!(nash[j] <= ios[j] + 1e-9, "user {j}: NASH vs IOS");
            assert!(nash[j] < ps[j], "user {j}: NASH vs PS");
        }
    }

    #[test]
    fn render_has_one_row_per_user() {
        let r = run(None).unwrap();
        assert_eq!(render(&r).len(), 10);
    }
}
