//! CLI reproducing the paper's tables and figures (and the extension
//! experiments). See `lb_experiments::cli` for the accepted arguments.
//!
//! Analytic results print immediately; `--simulate` adds the paper's
//! discrete-event methodology (5 replications × 1M jobs by default).
//! Tables are printed and also written as CSV under `--out`
//! (default `results/`).

use lb_experiments::cli::{self, Options};
use lb_experiments::fig4::SimOptions;
use lb_experiments::report::Table;
use lb_experiments::{
    analyze, bench, beyond, config, diff, fig2, fig3, fig4, fig5, fig6, table1, trace, watch,
};
use lb_sim::scenario::SimFidelity;
use std::path::Path;
use std::process::ExitCode;

fn emit(table: &Table, out: &Path, name: &str) -> Result<(), String> {
    println!("{}", table.render());
    let path = out.join(format!("{name}.csv"));
    table
        .write_csv(&path)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("[csv] {}\n", path.display());
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    let sim = if opts.simulate {
        Some(SimOptions {
            target_jobs: opts.jobs,
            replications: opts.replications,
            fidelity: if opts.analytic {
                SimFidelity::Analytic
            } else {
                SimFidelity::Full
            },
        })
    } else {
        None
    };
    for cmd in cli::expand_command(&opts.command) {
        match cmd {
            "table1" => emit(&table1::render(), &opts.out, "table1")?,
            "fig2" => {
                let r = fig2::run().map_err(|e| e.to_string())?;
                println!(
                    "NASH_0 converged in {} iterations, NASH_P in {} (epsilon = {:.0e})",
                    r.iterations_nash0(),
                    r.iterations_nashp(),
                    config::EPSILON
                );
                let (d0, dp) = r.diagnostics();
                println!(
                    "tail contraction rates: NASH_0 {:.3}, NASH_P {:.3}; initial norms {:.3} vs {:.3}",
                    d0.tail_rate.unwrap_or(f64::NAN),
                    dp.tail_rate.unwrap_or(f64::NAN),
                    d0.initial_norm,
                    dp.initial_norm
                );
                emit(&fig2::render(&r), &opts.out, "fig2")?;
            }
            "fig3" => {
                let points = fig3::run().map_err(|e| e.to_string())?;
                emit(&fig3::render(&points), &opts.out, "fig3")?;
            }
            "fig4" => {
                let points = fig4::run(sim).map_err(|e| e.to_string())?;
                emit(&fig4::render_times(&points), &opts.out, "fig4_times")?;
                emit(&fig4::render_fairness(&points), &opts.out, "fig4_fairness")?;
            }
            "fig5" => {
                let r = fig5::run(sim).map_err(|e| e.to_string())?;
                emit(&fig5::render(&r), &opts.out, "fig5")?;
            }
            "fig6" => {
                let points = fig6::run(sim).map_err(|e| e.to_string())?;
                emit(&fig6::render_times(&points), &opts.out, "fig6_times")?;
                emit(&fig6::render_fairness(&points), &opts.out, "fig6_fairness")?;
            }
            "ext-service" => {
                let rows =
                    beyond::service_robustness(opts.jobs.min(300_000), opts.replications.min(3))
                        .map_err(|e| e.to_string())?;
                emit(&beyond::render_robustness(&rows), &opts.out, "ext_service")?;
            }
            "ext-stackelberg" => {
                let (points, nash, gos) = beyond::stackelberg_sweep().map_err(|e| e.to_string())?;
                emit(
                    &beyond::render_stackelberg(&points, nash, gos),
                    &opts.out,
                    "ext_stackelberg",
                )?;
            }
            "ext-dynamics" => {
                let steps = beyond::warm_start_dynamics().map_err(|e| e.to_string())?;
                emit(&beyond::render_dynamics(&steps), &opts.out, "ext_dynamics")?;
            }
            "ext-noise" => {
                let points = beyond::observation_noise().map_err(|e| e.to_string())?;
                emit(&beyond::render_noise(&points), &opts.out, "ext_noise")?;
            }
            "ext-multicore" => {
                let rows =
                    beyond::multicore_pooling(opts.jobs.min(400_000)).map_err(|e| e.to_string())?;
                emit(&beyond::render_pooling(&rows), &opts.out, "ext_multicore")?;
            }
            "ext-poa" => {
                let points = beyond::poa_vs_utilization().map_err(|e| e.to_string())?;
                emit(&beyond::render_poa(&points), &opts.out, "ext_poa")?;
            }
            "ext-burstiness" => {
                let rows =
                    beyond::arrival_burstiness(opts.jobs.min(300_000), opts.replications.min(3))
                        .map_err(|e| e.to_string())?;
                emit(
                    &beyond::render_burstiness(&rows),
                    &opts.out,
                    "ext_burstiness",
                )?;
            }
            "ext-policies" => {
                let rows =
                    beyond::dynamic_policies(opts.jobs.min(300_000)).map_err(|e| e.to_string())?;
                emit(&beyond::render_policies(&rows), &opts.out, "ext_policies")?;
            }
            "ext-tails" => {
                let rows = beyond::tail_latency(opts.jobs.min(300_000), opts.replications.min(3))
                    .map_err(|e| e.to_string())?;
                emit(&beyond::render_tails(&rows), &opts.out, "ext_tails")?;
            }
            "ext-churn" => {
                let rows =
                    beyond::server_churn(opts.replications.min(5)).map_err(|e| e.to_string())?;
                emit(&beyond::render_churn(&rows), &opts.out, "ext_churn")?;
            }
            "ext-anytime" => {
                let points = beyond::anytime_frontier().map_err(|e| e.to_string())?;
                emit(&beyond::render_anytime(&points), &opts.out, "ext_anytime")?;
            }
            "ext-async" => {
                let rows = beyond::async_chaos().map_err(|e| e.to_string())?;
                emit(&beyond::render_async(&rows), &opts.out, "ext_async")?;
            }
            "bench" => {
                let report = bench::run(&opts.out, opts.large)?;
                if let Some(delta) = &report.delta {
                    println!("{}", delta.render());
                } else {
                    println!("(no reference {} to compare against)", bench::BENCH_FILE);
                }
                // Report-only: regressions are printed, never fatal —
                // CI greps for the marker line.
                if report.regressions.is_empty() {
                    println!(
                        "[bench] no regressions beyond +{:.0}% vs reference",
                        bench::REGRESSION_THRESHOLD * 100.0
                    );
                } else {
                    println!(
                        "{}",
                        bench::render_regressions(&report.regressions).render()
                    );
                    println!(
                        "[bench] REGRESSION: {} benchmark(s) slower than reference beyond +{:.0}%",
                        report.regressions.len(),
                        bench::REGRESSION_THRESHOLD * 100.0
                    );
                }
                println!("[bench] {}", report.path.display());
                println!("[bench] history {}", report.history_path.display());
                if opts.sim {
                    let sim_report = bench::run_sim(&opts.out)?;
                    println!("{}", sim_report.table.render());
                    match sim_report.headline_speedup {
                        Some(s) => println!(
                            "[bench --sim] analytic fast path: {s:.0}x jobs/sec vs the \
                             single-calendar seed engine"
                        ),
                        None => println!("[bench --sim] no single-calendar baseline recorded"),
                    }
                    println!("[bench] {}", sim_report.path.display());
                }
            }
            "analyze" => {
                let report = analyze::run(opts.input.as_deref(), &opts.out)?;
                for table in &report.tables {
                    println!("{}", table.render());
                }
                println!("{}", report.timeline);
                println!("[analyze] {}", report.log_path.display());
                println!("[chrome]  {}", report.chrome_path.display());
                println!("[folded]  {}", report.folded_path.display());
                println!("[csv]     {}", report.csv_path.display());
            }
            "trace" => {
                let report = trace::run(&opts.out, opts.verbose)?;
                for table in &report.tables {
                    println!("{}", table.render());
                }
                println!(
                    "[trace] {} ({} events, schema v{})",
                    report.log_path.display(),
                    report.log.events.len(),
                    report.log.version
                );
                println!("[metrics] {}", report.metrics_json_path.display());
                println!("[metrics] {}", report.metrics_prom_path.display());
            }
            "diff" => {
                let (Some(a), Some(b)) = (opts.input.as_deref(), opts.input2.as_deref()) else {
                    return Err(format!("diff needs two inputs\n{}", cli::usage()));
                };
                let report = diff::run(a, b)?;
                for table in &report.tables {
                    // Delta rows only: identical runs print no tables.
                    if !table.is_empty() {
                        println!("{}", table.render());
                    }
                }
                println!("[diff] A {}", report.log_a.display());
                println!("[diff] B {}", report.log_b.display());
                println!("[diff] {}", report.verdict.to_json());
            }
            "watch" => {
                let report = watch::run(&opts.out, opts.port, opts.iterations, opts.linger_ms)?;
                println!("{}", report.table.render());
                println!(
                    "[watch] {} episodes, {} alert fire(s), {} clear(s)",
                    report.iterations, report.fires, report.clears
                );
                println!("[watch] served http://{}", report.addr);
                println!("[watch] {}", report.log_path.display());
            }
            other => return Err(format!("unknown command `{other}`\n{}", cli::usage())),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let result = cli::parse(std::env::args().skip(1)).and_then(|opts| run(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
