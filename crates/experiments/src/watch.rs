//! The `watch` subcommand: a long-running observed replay that serves
//! live observability state over HTTP while it runs.
//!
//! The replay drives a sequence of [`AsyncNash`] episodes over the
//! chaotic virtual network — a healthy warm-up, an induced overload
//! phase (heavy loss starves the protocol of acknowledgements and the
//! certificate never closes), and a recovery phase — and after each
//! episode folds the outcome into four live signals sampled on a
//! cumulative virtual clock ([`STEP_US`] apart):
//!
//! - `watch.gap` — the certified ε-Nash gap (clamped to 1.0 when the
//!   episode exhausted its budget uncertified);
//! - `watch.goodput` — fraction of protocol messages delivered;
//! - `watch.shed` — fraction lost to the drop roll and partitions;
//! - `async.staleness` — age of the freshest certified equilibrium
//!   view (how long ago the last episode certified).
//!
//! The samples feed a multi-window [`SloEngine`] (burn-rate alerts on
//! all four [`SloSpec`] families) and a [`MetricsRegistry`], and a
//! [`LiveServer`] exposes `/metrics`, `/healthz`, and `/trace/recent`
//! throughout the run. Everything is deterministic given the seed
//! sequence: the alert fire/clear timeline replays bit-identically.

use crate::report::{fmt, Table};
use lb_distributed::{AsyncNash, NetFaultPlan};
use lb_game::model::SystemModel;
use lb_telemetry::{
    Collector, JsonlCollector, LiveServer, MemoryCollector, MetricsRegistry, SloEngine, SloSpec,
    SloVerdict, TeeCollector,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Virtual-time distance between consecutive watch samples (µs).
pub const STEP_US: u64 = 50_000;
/// SLO short-window width (µs): four samples per short window; the
/// specs derive the long window as 4× this (sixteen samples).
pub const WINDOW_US: u64 = 200_000;
/// Certified-gap SLO threshold (fast-burn: fires on the first
/// uncertified episode).
pub const GAP_EPSILON: f64 = 0.05;
/// Goodput SLO floor (fraction of protocol messages delivered).
pub const GOODPUT_FLOOR: f64 = 0.5;
/// Shed SLO budget (fraction of messages lost).
pub const SHED_BUDGET: f64 = 0.5;
/// View-staleness SLO tolerance (µs; slow-burn: the age of the last
/// certified view must accumulate across episodes before it fires).
pub const STALENESS_TAU_US: f64 = 120_000.0;
/// Ring capacity backing `/trace/recent`.
pub const RECENT_CAPACITY: usize = 512;

/// Everything the `watch` subcommand produced.
#[derive(Debug)]
pub struct WatchReport {
    /// Path of the schema-validated JSONL event log.
    pub log_path: PathBuf,
    /// Address the live endpoint served on during the run.
    pub addr: SocketAddr,
    /// Episodes replayed.
    pub iterations: u32,
    /// Total `alert.fire` events across all SLOs.
    pub fires: usize,
    /// Total `alert.clear` events across all SLOs.
    pub clears: usize,
    /// Final per-SLO verdicts at the end of the run.
    pub verdicts: Vec<SloVerdict>,
    /// Rendered SLO summary table.
    pub table: Table,
}

/// Runs the observed replay into `out`, serving live state on
/// `127.0.0.1:port` (0 = ephemeral) until `linger_ms` after the last
/// episode. See the module docs for the scenario shape.
///
/// # Errors
///
/// I/O failures, bind failures, episode failures, or a schema-invalid
/// event log.
pub fn run(out: &Path, port: u16, iterations: u32, linger_ms: u64) -> Result<WatchReport, String> {
    run_with_probe(out, port, iterations, linger_ms, None)
}

/// [`run`] with an optional mid-run probe: invoked once with the bound
/// address halfway through the episode sequence, while the server is
/// live and the overload phase is underway. This is how the unit tests
/// (and anything embedding the watch loop) scrape the endpoint without
/// racing the run's shutdown.
#[allow(clippy::too_many_lines)]
pub fn run_with_probe(
    out: &Path,
    port: u16,
    iterations: u32,
    linger_ms: u64,
    mut probe: Option<Box<dyn FnMut(SocketAddr) + '_>>,
) -> Result<WatchReport, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let log_path = out.join("watch_trace.jsonl");
    let jsonl = Arc::new(
        JsonlCollector::create(&log_path)
            .map_err(|e| format!("creating {}: {e}", log_path.display()))?,
    );
    let ring = Arc::new(MemoryCollector::with_capacity(RECENT_CAPACITY));
    // `base` is the durable sink: the JSONL log plus the ring behind
    // `/trace/recent`. The network/protocol events of every episode and
    // the engine's alert stream all land here.
    let base: Arc<dyn Collector> = Arc::new(TeeCollector::new(vec![jsonl.clone(), ring.clone()]));
    let engine = Arc::new(SloEngine::new(
        vec![
            SloSpec::certified_gap(GAP_EPSILON, WINDOW_US),
            SloSpec::goodput_min(GOODPUT_FLOOR, WINDOW_US),
            SloSpec::staleness_max(STALENESS_TAU_US, WINDOW_US),
            SloSpec::shed_rate_max(SHED_BUDGET, WINDOW_US),
        ],
        Some(base.clone()),
    ));
    let registry = Arc::new(MetricsRegistry::new());
    let mut server = LiveServer::start(port, registry.clone(), engine.clone(), ring.clone())
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr = server.addr();
    println!("[watch] serving http://{addr} (/metrics /healthz /trace/recent)");

    // The three-computer, three-user Table-1-style system the trace
    // subcommand also replays.
    let model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![12.0, 15.0, 20.0])
        .map_err(|e| e.to_string())?;
    // Overload occupies the middle third of the episode sequence.
    let (overload_from, overload_to) = (iterations / 3, 2 * iterations / 3);
    let mut last_certified_us = 0u64;
    let mut now_us = 0u64;
    for i in 0..iterations {
        now_us += STEP_US;
        let overloaded = (overload_from..overload_to).contains(&i);
        let (plan, runner) = if overloaded {
            // Heavy loss starves the protocol: updates and acks rarely
            // land, the certificate cannot close, and the episode
            // exhausts its (short) virtual budget uncertified.
            (
                NetFaultPlan::new()
                    .loss(0.92)
                    .duplication(0.05)
                    .reordering(0.2)
                    .delay_us(200, 2_000),
                AsyncNash::new()
                    .seed(900 + u64::from(i))
                    .max_virtual_us(250_000),
            )
        } else {
            (
                NetFaultPlan::new()
                    .loss(0.05)
                    .duplication(0.05)
                    .reordering(0.2)
                    .delay_us(50, 400),
                AsyncNash::new().seed(100 + u64::from(i)),
            )
        };
        let outcome = runner
            .fault_plan(plan)
            .collector(base.clone())
            .run(&model)
            .map_err(|e| format!("episode {i}: {e}"))?;

        // Fold the episode into the four live signals at the watch
        // clock. An uncertified episode charges the full unit gap.
        let gap = if outcome.converged() {
            outcome.final_gap().clamp(0.0, 1.0)
        } else {
            1.0
        };
        let stats = outcome.net_stats();
        #[allow(clippy::cast_precision_loss)]
        let (goodput, shed) = if stats.sent == 0 {
            (1.0, 0.0)
        } else {
            (
                stats.delivered as f64 / stats.sent as f64,
                (stats.dropped + stats.partition_drops) as f64 / stats.sent as f64,
            )
        };
        if outcome.converged() {
            last_certified_us = now_us;
        }
        let age_us = now_us - last_certified_us;

        // Samples go to the durable sink AND the SLO engine; the
        // engine's alert output loops back into the sink.
        for sink in [&base, &(engine.clone() as Arc<dyn Collector>)] {
            sink.emit("watch.gap", &[("t_us", now_us.into()), ("gap", gap.into())]);
            sink.emit(
                "watch.goodput",
                &[("t_us", now_us.into()), ("fraction", goodput.into())],
            );
            sink.emit(
                "watch.shed",
                &[("t_us", now_us.into()), ("fraction", shed.into())],
            );
            sink.emit(
                "async.staleness",
                &[
                    ("t_us", now_us.into()),
                    ("user", 0u64.into()),
                    ("age_us", age_us.into()),
                ],
            );
        }
        registry.inc("watch.iterations", 1);
        registry.set_gauge("async.certified_gap", gap);
        registry.set_gauge("watch.goodput", goodput);
        registry.set_gauge("watch.shed", shed);
        #[allow(clippy::cast_precision_loss)]
        registry.set_gauge("watch.staleness_age_us", age_us as f64);
        registry.observe("watch.gap", gap);

        let firing = engine
            .verdicts()
            .iter()
            .filter(|v| v.state == lb_telemetry::AlertState::Firing)
            .count();
        println!(
            "[watch] t={:.2}s {} gap={} goodput={} shed={} stale={}us firing={firing}",
            now_us as f64 / 1e6,
            if overloaded { "OVERLOAD" } else { "healthy " },
            fmt(gap),
            fmt(goodput),
            fmt(shed),
            age_us,
            firing = firing
        );
        if i == (overload_from + overload_to) / 2 {
            if let Some(p) = probe.as_mut() {
                p(addr);
            }
        }
    }

    if linger_ms > 0 {
        println!("[watch] lingering {linger_ms} ms for scrapers");
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
    server.shutdown();
    base.flush();
    if jsonl.had_error() {
        return Err(format!("I/O error writing {}", log_path.display()));
    }

    // Validate the log end to end and tally the alert stream — one
    // line at a time, so the validation pass is O(1) in memory no
    // matter how long the watch ran.
    let reader = lb_telemetry::LogReader::open(&log_path)
        .map_err(|e| format!("{}: {e}", log_path.display()))?;
    let (mut fires, mut clears) = (0usize, 0usize);
    for event in reader {
        let event = event.map_err(|e| format!("{}: {e}", log_path.display()))?;
        match event.name.as_str() {
            "alert.fire" => fires += 1,
            "alert.clear" => clears += 1,
            _ => {}
        }
    }
    let verdicts = engine.verdicts();
    let table = render_slos(&verdicts);
    Ok(WatchReport {
        log_path,
        addr,
        iterations,
        fires,
        clears,
        verdicts,
        table,
    })
}

/// Final per-SLO summary: verdict, burn counts, last value vs threshold.
fn render_slos(verdicts: &[SloVerdict]) -> Table {
    let mut t = Table::new(
        "Watch: SLO verdicts after replay".to_string(),
        vec![
            "slo".to_string(),
            "state".to_string(),
            "fires".to_string(),
            "clears".to_string(),
            "value".to_string(),
            "threshold".to_string(),
        ],
    );
    for v in verdicts {
        t.row(vec![
            v.name.clone(),
            format!("{:?}", v.state).to_lowercase(),
            v.fires.to_string(),
            v.clears.to_string(),
            fmt(v.value),
            fmt(v.threshold),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn overload_fires_and_recovery_clears_while_the_endpoint_serves() {
        let dir = std::env::temp_dir().join(format!("lb_watch_test_{}", std::process::id()));
        let mut scraped = Vec::new();
        let report = run_with_probe(
            &dir,
            0,
            28,
            0,
            Some(Box::new(|addr| {
                scraped.push(http_get(addr, "/metrics"));
                scraped.push(http_get(addr, "/healthz"));
            })),
        )
        .unwrap();

        // Mid-overload the endpoint serves valid metrics including the
        // certified-gap gauge, and /healthz is alerting.
        assert_eq!(scraped.len(), 2);
        let metrics = scraped[0].split("\r\n\r\n").nth(1).unwrap();
        lb_telemetry::validate_exposition(metrics).expect("served metrics must validate");
        assert!(metrics.contains("lb_async_certified_gap"), "{metrics}");
        assert!(
            scraped[1].contains("\"status\": \"alerting\""),
            "{}",
            scraped[1]
        );

        // The induced overload fires every SLO family and the recovery
        // clears them all; the final state is healthy.
        assert!(report.fires >= 4, "fires = {}", report.fires);
        assert!(report.clears >= 4, "clears = {}", report.clears);
        for v in &report.verdicts {
            assert!(v.fires >= 1, "{} never fired", v.name);
            assert!(v.clears >= 1, "{} never cleared", v.name);
            assert_eq!(v.state, lb_telemetry::AlertState::Healthy, "{}", v.name);
        }
        assert!(report.log_path.exists());
        assert_eq!(report.table.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_watch_replay_is_deterministic() {
        let base = std::env::temp_dir().join(format!("lb_watch_det_{}", std::process::id()));
        let mut timelines = Vec::new();
        for sub in ["a", "b"] {
            let report = run(&base.join(sub), 0, 12, 0).unwrap();
            let text = std::fs::read_to_string(&report.log_path).unwrap();
            let log = lb_telemetry::parse_log(&text).unwrap();
            // Compare the full alert timeline by (name, slo, t_us).
            let alerts: Vec<String> = log
                .events
                .iter()
                .filter(|e| e.name.starts_with("alert."))
                .map(|e| {
                    format!(
                        "{} {} {:?}",
                        e.name,
                        e.field("slo").and_then(|v| v.as_str()).unwrap_or("?"),
                        e.field("t_us").and_then(lb_telemetry::Json::as_u64)
                    )
                })
                .collect();
            timelines.push(alerts);
        }
        assert_eq!(timelines[0], timelines[1]);
        std::fs::remove_dir_all(&base).ok();
    }
}
