//! The `trace` subcommand: replay a Table-1 scenario with telemetry
//! collection on and render a human-readable convergence/timeline
//! report.
//!
//! Three phases share one [`JsonlCollector`] (optionally teed to stderr
//! with `--verbose`):
//!
//! 1. **Solver** — NASH_0 and NASH_P on the Table-1 system at 60%
//!    utilization, streaming per-sweep `solver.*` convergence events;
//! 2. **Ring** — a fault-injected [`DistributedNash`] run (token drop,
//!    capacity degrade + recover under a proportional-shedding policy),
//!    streaming the `ring.*` event family;
//! 3. **Simulation** — a small replicated DES run of the NASH profile
//!    plus a capacity-churn replication, streaming `sim.*`/`des.*`
//!    events and `runner.*` pool accounting;
//! 4. **Async chaos** — an [`AsyncNash`] run over the seeded virtual
//!    network with loss, duplication, reordering and one partition +
//!    heal, streaming the `net.*` fault family, the `async.*`
//!    protocol family (update deltas, anti-entropy syncs, staleness
//!    ages, the certified quiescence event), and the cross-node
//!    `xspan.send`/`xspan.recv` causal hops;
//! 5. **SLO burn** — a deterministic certified-gap burn replayed
//!    through the multi-window [`SloEngine`], streaming the
//!    `alert.fire`/`alert.clear` pair.
//!
//! The event log is written to `trace_table1.jsonl`, re-parsed and
//! schema-validated, distilled into a [`MetricsRegistry`] (exported as
//! JSON and Prometheus text), and summarized as report tables. The
//! instrumented code paths are observational only, so the replayed
//! numbers match the untraced experiments bit for bit.

use crate::config::EPSILON;
use crate::report::{fmt, Table};
use lb_distributed::{AsyncNash, DistributedNash, FaultPlan, NetFaultPlan};
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use lb_game::overload::OverloadPolicy;
use lb_game::StoppingRule;
use lb_sim::churn::{run_churn_replication_traced, ChurnPhase, RetryBackoff};
use lb_sim::harness::simulate_profile_traced;
use lb_sim::parallel::ParallelRunner;
use lb_sim::scenario::SimulationConfig;
use lb_stats::ReplicationPlan;
use lb_telemetry::{
    Collector, EventLog, FieldValue, JsonlCollector, LogEvent, LogReader, MetricsRegistry,
    SamplingCollector, SamplingConfig, SloEngine, SloSpec, StderrCollector, TeeCollector,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Event names the trace must cover to count as a faithful replay; the
/// run fails loudly if instrumentation regresses and one goes missing.
pub const REQUIRED_EVENTS: &[&str] = &[
    "solver.start",
    "solver.sweep",
    "solver.done",
    "ring.hop",
    "ring.round",
    "ring.token_lost",
    "ring.fault",
    "ring.capacity",
    "ring.shed",
    "ring.done",
    "runner.worker",
    "sim.replication",
    "sim.summary",
    "sim.phase",
    "sim.goodput",
    "des.calendar",
    "net.drop",
    "net.dup",
    "net.reorder",
    "net.partition",
    "net.heal",
    "async.update",
    "async.sync",
    "async.staleness",
    "async.quiesce",
    "xspan.send",
    "xspan.recv",
    "alert.fire",
    "alert.clear",
    "account.solver",
    "account.des",
    "account.net",
    "span_open",
    "span_close",
];

/// Env var: when set to a keep rate in (0, 1], the trace is head-sampled
/// through a [`SamplingCollector`] (seed-keyed, so two runs with the
/// same rate keep the same events) and the coverage check reweights
/// through `sample.digest` aggregates.
pub const SAMPLE_ENV: &str = "LB_TRACE_SAMPLE";

/// Env var: when set to a duration in microseconds, the replay sleeps
/// that long inside a synthetic `trace.inject` span — a knob for CI to
/// manufacture a known regression and assert `experiments diff` flags
/// the offending span by name.
pub const SLOWDOWN_ENV: &str = "LB_TRACE_SLOWDOWN_US";

/// Everything the `trace` subcommand produced.
#[derive(Debug)]
pub struct TraceReport {
    /// Path of the schema-validated JSONL event log.
    pub log_path: PathBuf,
    /// Path of the metrics-registry JSON export.
    pub metrics_json_path: PathBuf,
    /// Path of the Prometheus text-format export.
    pub metrics_prom_path: PathBuf,
    /// The parsed event log.
    pub log: EventLog,
    /// Rendered summary tables (convergence, ring timeline, counts).
    pub tables: Vec<Table>,
}

/// Runs the traced Table-1 replay into `out`, returning the parsed log
/// and report tables. `verbose` tees every event to stderr as it is
/// emitted.
///
/// # Errors
///
/// I/O failures, scenario failures, a schema-invalid log, or a missing
/// [`REQUIRED_EVENTS`] entry (instrumentation regression).
pub fn run(out: &Path, verbose: bool) -> Result<TraceReport, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let log_path = out.join("trace_table1.jsonl");
    let jsonl = Arc::new(
        JsonlCollector::create(&log_path)
            .map_err(|e| format!("creating {}: {e}", log_path.display()))?,
    );
    let sink: Arc<dyn Collector> = if verbose {
        Arc::new(TeeCollector::new(vec![
            jsonl.clone(),
            Arc::new(StderrCollector::new()),
        ]))
    } else {
        jsonl.clone()
    };
    // Optional deterministic head sampling (see [`SAMPLE_ENV`]): the
    // computation underneath is untouched — sampling only bounds what
    // reaches the sink, and digests keep the totals reweightable.
    let sample_rate = match std::env::var(SAMPLE_ENV) {
        Ok(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|r| *r > 0.0 && *r <= 1.0)
                .ok_or_else(|| format!("{SAMPLE_ENV} must be a rate in (0, 1], got {v:?}"))?,
        ),
        Err(_) => None,
    };
    let collector: Arc<dyn Collector> = match sample_rate {
        Some(rate) => Arc::new(SamplingCollector::new(
            sink,
            SamplingConfig::new(0x7472_6163, rate),
        )),
        None => sink,
    };

    // Phase 1 — solver convergence, both paper initializations.
    let model = SystemModel::table1_system(0.6).map_err(|e| e.to_string())?;
    // The committed trace log is a byte-for-byte reference: pin the
    // paper's absolute-norm criterion it was recorded under.
    NashSolver::new(Initialization::Zero)
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(EPSILON)
        .collector(collector.clone())
        .solve(&model)
        .map_err(|e| format!("NASH_0 solve: {e}"))?;
    let nash_profile = NashSolver::new(Initialization::Proportional)
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(EPSILON)
        .collector(collector.clone())
        .solve(&model)
        .map_err(|e| format!("NASH_P solve: {e}"))?
        .profile()
        .clone();

    // Phase 2 — fault-injected token ring: drop the token held by user 1,
    // degrade computer 1 mid-run, recover it two rounds later.
    let ring_model =
        SystemModel::with_equal_users(vec![10.0, 20.0, 50.0], 4, 0.5).map_err(|e| e.to_string())?;
    let plan = FaultPlan::new()
        .drop_token_at(1, 2)
        .degrade_computer_at(4, 1, 8.0)
        .recover_computer_at(6, 1);
    DistributedNash::new()
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .fault_plan(plan)
        .round_timeout(Duration::from_millis(300))
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .collector(collector.clone())
        .run(&ring_model)
        .map_err(|e| format!("ring run: {e}"))?;

    // Phase 3a — replicated DES of the Table-1 NASH profile.
    let sim_plan = ReplicationPlan {
        replications: 3,
        ..ReplicationPlan::paper()
    };
    let sim_config = SimulationConfig {
        target_jobs: 5_000,
        ..SimulationConfig::quick()
    };
    simulate_profile_traced(
        &ParallelRunner::from_env(),
        &model,
        &nash_profile,
        &sim_plan,
        sim_config,
        Some(&collector),
    )
    .map_err(|e| format!("simulate: {e}"))?;

    // Phase 3b — capacity churn: the fast computer crashes for the
    // middle phase, forcing shedding and retries.
    let churn_model =
        SystemModel::new(vec![10.0, 20.0, 30.0], vec![16.0, 12.0]).map_err(|e| e.to_string())?;
    let phases = vec![
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 0.0],
        },
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
    ];
    run_churn_replication_traced(
        &churn_model,
        &phases,
        OverloadPolicy::ShedProportional { headroom: 0.8 },
        RetryBackoff::new(0.05, 2.0, 1.0, 5),
        100.0,
        7,
        Some(&collector),
    )
    .map_err(|e| format!("churn: {e}"))?;

    // Phase 4 — asynchronous dynamics over the chaotic virtual network:
    // loss + duplication + reordering on every link, plus user 0 cut off
    // for the first 200 ms of virtual time (freeze → shed → heal →
    // anti-entropy sync → certify). This exercises every `net.*` and
    // `async.*` event name, so the coverage check below doubles as a
    // schema gate for the chaos event family.
    let async_model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![12.0, 15.0, 20.0])
        .map_err(|e| e.to_string())?;
    let net_plan = NetFaultPlan::new()
        .loss(0.1)
        .duplication(0.1)
        .reordering(0.3)
        .delay_us(50, 400)
        .partition_at(0, 200_000, vec![0]);
    AsyncNash::new()
        .seed(9)
        .fault_plan(net_plan)
        .collector(collector.clone())
        .run(&async_model)
        .map_err(|e| format!("async run: {e}"))?;

    // Phase 5 — a deterministic SLO burn: a certified-gap signal that
    // degrades and recovers, replayed through the multi-window burn-rate
    // engine so the committed log covers the alert event pair. The
    // samples land in the log too (the alert stream should be
    // explicable from the log alone).
    let engine = SloEngine::new(
        vec![SloSpec::certified_gap(0.05, 2_000)],
        Some(collector.clone()),
    );
    for (k, gap) in [
        0.001, 0.001, 0.001, 0.001, // healthy warm-up
        1.0, 1.0, 1.0, 1.0, 1.0, 1.0, // overload: short + long windows burn
        0.001, 0.001, 0.001, 0.001, 0.001, // recovery: hold, then clear
    ]
    .iter()
    .enumerate()
    {
        let fields = [
            ("t_us", FieldValue::from((k as u64 + 1) * 1_000)),
            ("gap", FieldValue::from(*gap)),
        ];
        collector.emit("watch.gap", &fields);
        engine.emit("watch.gap", &fields);
    }

    // Synthetic regression knob for CI's diff-smoke job: sleep inside
    // a dedicated span so the slowdown is attributable by name.
    if let Ok(v) = std::env::var(SLOWDOWN_ENV) {
        let us: u64 = v
            .parse()
            .map_err(|e| format!("{SLOWDOWN_ENV} must be microseconds, got {v:?}: {e}"))?;
        let span = lb_telemetry::Span::root(
            Some(&collector),
            "trace.inject",
            &[("slowdown_us", us.into())],
        );
        std::thread::sleep(Duration::from_micros(us));
        if let Some(span) = span {
            span.close();
        }
    }

    collector.flush();
    if jsonl.had_error() {
        return Err(format!("I/O error writing {}", log_path.display()));
    }

    // Validate the log end to end — streamed line by line, so a
    // web-scale trace never has to fit in memory just to be checked —
    // then collect it for the (bounded-size) report tables.
    let reader = LogReader::open(&log_path).map_err(|e| format!("{}: {e}", log_path.display()))?;
    let version = reader.version();
    let events = reader
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", log_path.display()))?;
    let log = EventLog { version, events };
    // Coverage: a name counts as covered if it survived sampling or is
    // accounted for in a `sample.digest` aggregate (the digest proves
    // the instrumentation emitted it, even if the sampler dropped it).
    let digests = digest_counts(&log);
    for name in REQUIRED_EVENTS {
        if log.count(name) == 0 && digests.get(*name).copied().unwrap_or(0) == 0 {
            return Err(format!("trace log is missing any `{name}` event"));
        }
    }

    // Distill the log into the metrics registry and export it.
    let registry = build_registry(&log);
    let metrics_json_path = out.join("trace_metrics.json");
    std::fs::write(&metrics_json_path, registry.to_json())
        .map_err(|e| format!("writing {}: {e}", metrics_json_path.display()))?;
    let metrics_prom_path = out.join("trace_metrics.prom");
    std::fs::write(&metrics_prom_path, registry.to_prometheus())
        .map_err(|e| format!("writing {}: {e}", metrics_prom_path.display()))?;

    let tables = vec![
        render_convergence(&log),
        render_ring_timeline(&log),
        render_counts(&log),
    ];
    Ok(TraceReport {
        log_path,
        metrics_json_path,
        metrics_prom_path,
        log,
        tables,
    })
}

/// Dropped-event counts per event type, summed over every
/// `sample.digest` in the log (empty for unsampled traces).
pub fn digest_counts(log: &EventLog) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for ev in &log.events {
        if ev.name != "sample.digest" {
            continue;
        }
        if let (Some(name), Some(count)) = (
            ev.field("event").and_then(|v| v.as_str()),
            ev.field("count").and_then(lb_telemetry::Json::as_u64),
        ) {
            *counts.entry(name.to_string()).or_insert(0) += count;
        }
    }
    counts
}

/// Folds the event log into counters, gauges and histograms.
fn build_registry(log: &EventLog) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    let f = |ev: &LogEvent, key: &str| ev.field(key).and_then(lb_telemetry::Json::as_f64);
    for ev in &log.events {
        registry.inc(&format!("events.{}", ev.name), 1);
        match ev.name.as_str() {
            "solver.sweep" => {
                if let Some(norm) = f(ev, "norm") {
                    registry.observe("solver.sweep_norm", norm);
                }
            }
            "ring.round" => {
                if let Some(norm) = f(ev, "norm") {
                    registry.observe("ring.round_norm", norm);
                }
            }
            "ring.report" => {
                if let Some(t) = f(ev, "response_time") {
                    registry.observe("ring.response_time", t);
                }
            }
            "sim.replication" => {
                if let Some(mean) = f(ev, "system_mean") {
                    registry.observe("sim.replication_mean", mean);
                }
                if let Some(p95) = f(ev, "p95") {
                    registry.observe("sim.replication_p95", p95);
                }
            }
            "runner.worker" => {
                if let Some(busy) = f(ev, "busy_us") {
                    registry.observe("runner.busy_us", busy);
                }
            }
            "sim.goodput" => {
                for key in ["served", "shed", "lost", "retries"] {
                    if let Some(v) = f(ev, key) {
                        registry.set_gauge(&format!("churn.{key}"), v);
                    }
                }
            }
            "des.calendar" => {
                if let Some(depth) = f(ev, "depth") {
                    registry.observe("des.calendar_depth", depth);
                }
            }
            "sample.digest" => {
                if let (Some(event), Some(count)) = (
                    ev.field("event").and_then(|v| v.as_str()),
                    ev.field("count").and_then(lb_telemetry::Json::as_u64),
                ) {
                    registry.inc(&format!("sample.dropped.{event}"), count);
                }
            }
            name if name.starts_with("account.") => {
                // Every `account.*` field is an integer counter by
                // schema rule; fold them all for Prometheus export.
                for (key, value) in &ev.fields {
                    if let Some(n) = value.as_u64() {
                        registry.inc(&format!("{}.{key}", ev.name), n);
                    }
                }
            }
            _ => {}
        }
    }
    registry
}

/// Per-sweep convergence of every solver run in the log, labelled by the
/// initialization announced in the preceding `solver.start`.
fn render_convergence(log: &EventLog) -> Table {
    let mut t = Table::new(
        "Trace: NASH solver convergence (Table 1, 60% utilization)".to_string(),
        vec![
            "init".to_string(),
            "iter".to_string(),
            "norm".to_string(),
            "max |D_j| delta".to_string(),
            "wf prefix mean".to_string(),
            "converged".to_string(),
        ],
    );
    let mut init = "?".to_string();
    for ev in &log.events {
        match ev.name.as_str() {
            "solver.start" => {
                init = ev
                    .field("init")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
            }
            "solver.sweep" => {
                let g = |key: &str| {
                    ev.field(key)
                        .and_then(lb_telemetry::Json::as_f64)
                        .map_or_else(|| "-".to_string(), fmt)
                };
                t.row(vec![
                    init.clone(),
                    ev.field("iter")
                        .and_then(lb_telemetry::Json::as_u64)
                        .map_or_else(|| "-".to_string(), |v| v.to_string()),
                    g("norm"),
                    g("max_d_delta"),
                    g("wf_prefix_mean"),
                    ev.field("converged")
                        .and_then(lb_telemetry::Json::as_bool)
                        .map_or_else(|| "-".to_string(), |b| b.to_string()),
                ]);
            }
            _ => {}
        }
    }
    t
}

/// Wall-clock timeline of the ring phase: every non-hop `ring.*` event
/// with its fields flattened (hops are summarized by the counts table —
/// one row per hop would drown the interesting transitions).
fn render_ring_timeline(log: &EventLog) -> Table {
    let mut t = Table::new(
        "Trace: token-ring fault timeline".to_string(),
        vec![
            "t (ms)".to_string(),
            "event".to_string(),
            "details".to_string(),
        ],
    );
    for ev in &log.events {
        if !ev.name.starts_with("ring.") || ev.name == "ring.hop" || ev.name == "ring.report" {
            continue;
        }
        let details = ev
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        #[allow(clippy::cast_precision_loss)]
        t.row(vec![
            format!("{:.3}", ev.t_us as f64 / 1000.0),
            ev.name.clone(),
            details,
        ]);
    }
    t
}

/// Event-count summary over the whole log.
fn render_counts(log: &EventLog) -> Table {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for ev in &log.events {
        match counts.iter_mut().find(|(n, _)| *n == ev.name) {
            Some((_, c)) => *c += 1,
            None => counts.push((ev.name.clone(), 1)),
        }
    }
    let mut t = Table::new(
        "Trace: event counts".to_string(),
        vec!["event".to_string(), "count".to_string()],
    );
    for (name, count) in counts {
        t.row(vec![name, count.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_replay_produces_a_schema_valid_covering_log() {
        let dir = std::env::temp_dir().join(format!("lb_trace_test_{}", std::process::id()));
        let report = run(&dir, false).unwrap();
        // `run` already schema-validates and checks REQUIRED_EVENTS;
        // spot-check the artifacts and report shape on top.
        assert!(report.log_path.exists());
        assert!(report.metrics_json_path.exists());
        assert!(report.metrics_prom_path.exists());
        assert_eq!(report.tables.len(), 3);
        // Two solver runs: NASH_0 takes more sweeps than NASH_P; the
        // convergence table holds one row per sweep.
        assert!(report.tables[0].len() >= 4, "convergence rows");
        assert!(!report.tables[1].is_empty(), "ring timeline rows");
        let prom = std::fs::read_to_string(&report.metrics_prom_path).unwrap();
        assert!(prom.contains("lb_solver_sweep_norm"), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_required_event_names_are_a_hard_error() {
        // Guard against silently weakening the coverage list.
        assert!(REQUIRED_EVENTS.contains(&"solver.sweep"));
        assert!(REQUIRED_EVENTS.contains(&"ring.token_lost"));
        assert!(REQUIRED_EVENTS.contains(&"sim.goodput"));
        assert!(REQUIRED_EVENTS.contains(&"span_open"));
        assert!(REQUIRED_EVENTS.contains(&"span_close"));
        assert!(REQUIRED_EVENTS.contains(&"xspan.send"));
        assert!(REQUIRED_EVENTS.contains(&"xspan.recv"));
        assert!(REQUIRED_EVENTS.contains(&"async.staleness"));
        assert!(REQUIRED_EVENTS.contains(&"alert.fire"));
        assert!(REQUIRED_EVENTS.contains(&"alert.clear"));
        assert!(REQUIRED_EVENTS.len() >= 16);
    }
}
