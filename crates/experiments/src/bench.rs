//! The `bench` subcommand: an in-process performance harness over the
//! criterion shim.
//!
//! Runs a curated set of solver and simulator benchmarks — the Table-1
//! Nash solves, the water-filling hot path with and without scratch
//! reuse, a ≥30-replication DES fan-out sequential vs parallel, and one
//! Jacobi sweep sequential vs parallel — and writes a machine-readable
//! summary (`BENCH_nash.json`) with nanoseconds per iteration for every
//! benchmark plus the measured parallel-vs-sequential speedups.
//!
//! Speedups are *recorded*, never asserted: on a single-core runner the
//! parallel paths legitimately measure ≈1× (or slightly below, from
//! thread setup), and the numbers are still useful as a regression
//! record for the sequential hot paths.

use crate::report::Table;
use criterion::Criterion;
use lb_distributed::async_runtime::AsyncNash;
use lb_distributed::net::NetFaultPlan;
use lb_game::best_reply::{water_fill_flows, water_fill_flows_into, WaterFillScratch};
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::nash::{jacobi_round, Initialization, NashSolver};
use lb_game::sampled::SampledNashSolver;
use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};
use lb_sim::harness::simulate_profile_with;
use lb_sim::parallel::ParallelRunner;
use lb_sim::scenario::{run_replication_single_calendar, SimFidelity, SimulationConfig};
use lb_sim::{run_replication_analytic, run_replication_sharded_with};
use lb_stats::ReplicationPlan;
use lb_telemetry::{Collector, Json, JsonlCollector, NullCollector};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the machine-readable summary written under `--out`.
pub const BENCH_FILE: &str = "BENCH_nash.json";

/// File name of the `bench --sim` simulation-throughput summary.
pub const SIM_BENCH_FILE: &str = "BENCH_sim.json";

/// File name of the append-only bench history under `--out`: one JSON
/// object per run, timestamped, holding every measurement — the perf
/// trajectory of the repo when `--out` is the committed `results/`.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Relative slowdown beyond which a benchmark counts as a regression
/// (25% — generous enough to absorb shared-runner noise, tight enough
/// to catch a real hot-path pessimization long before it doubles).
pub const REGRESSION_THRESHOLD: f64 = 0.25;

/// Replications for the DES fan-out benchmark (the ISSUE floor is 30).
const SIM_REPLICATIONS: u32 = 30;

/// Table-1 Nash solves at the paper's medium load, both initializations.
fn bench_nash(c: &mut Criterion) -> Result<(), GameError> {
    let model = SystemModel::table1_system(0.6)?;
    let mut g = c.benchmark_group("nash_table1_rho60");
    g.bench_function("NASH_0", |b| {
        let solver = NashSolver::new(Initialization::Zero);
        b.iter(|| solver.solve(&model).expect("NASH_0 solve"));
    });
    g.bench_function("NASH_P", |b| {
        let solver = NashSolver::new(Initialization::Proportional);
        b.iter(|| solver.solve(&model).expect("NASH_P solve"));
    });
    g.finish();
    Ok(())
}

/// The asynchronous bounded-staleness runtime end to end, healthy vs a
/// chaotic network (30% loss + duplication + reordering), both to a
/// certified gap. The chaos cell prices what the retries, heartbeats
/// and anti-entropy cost on top of the clean event loop.
fn bench_async(c: &mut Criterion) -> Result<(), GameError> {
    let model = SystemModel::table1_system(0.6)?;
    let mut g = c.benchmark_group("nash_async");
    g.bench_function("healthy", |b| {
        b.iter(|| {
            let out = AsyncNash::new().run(&model).expect("async solve");
            assert!(out.converged(), "healthy async run must certify");
        });
    });
    g.bench_function("chaos_loss30", |b| {
        let plan = NetFaultPlan::new()
            .loss(0.3)
            .duplication(0.1)
            .reordering(0.3)
            .delay_us(50, 2_000);
        b.iter(|| {
            let out = AsyncNash::new()
                .seed(7)
                .fault_plan(plan.clone())
                .run(&model)
                .expect("async chaos solve");
            assert!(out.converged(), "chaos async run must certify");
        });
    });
    g.finish();
    Ok(())
}

/// A collector that reports itself disabled: attaching it exercises the
/// pure "instrumentation compiled in but off" path (one `enabled()`
/// virtual call per instrumented section, zero event assembly).
struct DisabledCollector;

impl Collector for DisabledCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&self, _name: &'static str, _fields: &[lb_telemetry::Field]) {
        unreachable!("disabled collector never receives events");
    }
}

/// The telemetry cost ladder on the NASH_P solve: no collector field at
/// all; an attached but *disabled* collector (one `enabled()` check per
/// sweep — the budget for this rung is <1% over "none", gated in CI); an
/// enabled [`NullCollector`] (event assembly + virtual dispatch, no
/// serialization); and a [`JsonlCollector`] writing to `io::sink` (the
/// full encode cost).
fn bench_collector_overhead(c: &mut Criterion) -> Result<(), GameError> {
    let model = SystemModel::table1_system(0.6)?;
    let mut g = c.benchmark_group("nash_collector_overhead");
    g.bench_function("none", |b| {
        let solver = NashSolver::new(Initialization::Proportional);
        b.iter(|| solver.solve(&model).expect("solve"));
    });
    g.bench_function("disabled", |b| {
        let solver =
            NashSolver::new(Initialization::Proportional).collector(Arc::new(DisabledCollector));
        b.iter(|| solver.solve(&model).expect("solve"));
    });
    g.bench_function("null_collector", |b| {
        let solver =
            NashSolver::new(Initialization::Proportional).collector(Arc::new(NullCollector));
        b.iter(|| solver.solve(&model).expect("solve"));
    });
    g.bench_function("jsonl_sink", |b| {
        let collector: Arc<dyn Collector> =
            Arc::new(JsonlCollector::new(Box::new(std::io::sink())));
        let solver = NashSolver::new(Initialization::Proportional).collector(collector);
        b.iter(|| solver.solve(&model).expect("solve"));
    });
    g.bench_function("sampling_sink", |b| {
        // The full sampled pipeline: head sampler (hash + digest
        // bookkeeping per event) in front of the encode cost. The CI
        // gate for this rung is <1.10x vs "disabled".
        let sink: Arc<dyn Collector> = Arc::new(JsonlCollector::new(Box::new(std::io::sink())));
        let collector: Arc<dyn Collector> = Arc::new(lb_telemetry::SamplingCollector::new(
            sink,
            lb_telemetry::SamplingConfig::default(),
        ));
        let solver = NashSolver::new(Initialization::Proportional).collector(collector);
        b.iter(|| solver.solve(&model).expect("solve"));
    });
    g.finish();
    Ok(())
}

/// The water-filling best reply with a fresh allocation per call vs the
/// reused-scratch entry point the solver hot loop uses.
fn bench_water_fill(c: &mut Criterion) {
    let n = 256;
    let rates: Vec<f64> = (0..n).map(|i| 10.0 + (i % 17) as f64).collect();
    let demand = 0.6 * rates.iter().sum::<f64>();
    let mut g = c.benchmark_group("water_fill_n256");
    g.bench_function("alloc_per_call", |b| {
        b.iter(|| water_fill_flows(&rates, demand).expect("feasible"));
    });
    g.bench_function("reused_scratch", |b| {
        let mut scratch = WaterFillScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            water_fill_flows_into(&rates, demand, &mut scratch, &mut out).expect("feasible");
            out[0]
        });
    });
    g.finish();
}

/// DES replication fan-out: the same 30-replication run through the
/// sequential runner and through [`ParallelRunner::from_env`].
fn bench_simulation(c: &mut Criterion) -> Result<(), GameError> {
    let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0])?;
    let profile = ProportionalScheme.compute(&model)?;
    let plan = ReplicationPlan {
        replications: SIM_REPLICATIONS,
        ..ReplicationPlan::paper()
    };
    let config = SimulationConfig {
        target_jobs: 4_000,
        ..SimulationConfig::quick()
    };
    let mut g = c.benchmark_group("simulate_profile_reps30");
    g.bench_function("sequential", |b| {
        let runner = ParallelRunner::sequential();
        b.iter(|| {
            simulate_profile_with(&runner, &model, &profile, &plan, config)
                .expect("simulation")
                .system_summary
                .mean
        });
    });
    g.bench_function("parallel", |b| {
        let runner = ParallelRunner::from_env();
        b.iter(|| {
            simulate_profile_with(&runner, &model, &profile, &plan, config)
                .expect("simulation")
                .system_summary
                .mean
        });
    });
    g.finish();
    Ok(())
}

/// One synchronous best-reply round (Jacobi) over the Table-1 system,
/// sequential vs the thread count [`ParallelRunner::from_env`] picks.
fn bench_jacobi(c: &mut Criterion) -> Result<(), GameError> {
    let model = SystemModel::table1_system(0.6)?;
    let profile = ProportionalScheme.compute(&model)?;
    let auto_threads = ParallelRunner::from_env().threads();
    let mut g = c.benchmark_group("jacobi_round_table1");
    g.bench_function("threads_1", |b| {
        b.iter(|| jacobi_round(&model, &profile, 1).expect("round"));
    });
    g.bench_function("threads_auto", |b| {
        b.iter(|| jacobi_round(&model, &profile, auto_threads).expect("round"));
    });
    g.finish();
    Ok(())
}

/// The web-scale groups behind `--large`.
///
/// `nash_large_sampled` is the headline: the power-of-k sampled solver
/// certifying a relative ε-Nash gap of 1e-3 on n = 10,000 computers ×
/// m = 100,000 users — a scale where the dense solvers cannot even hold
/// a strategy profile (10⁹ fractions ≈ 8 GB). `nash_large_jacobi` runs
/// one dense synchronous sweep at the largest size the dense
/// representation sensibly holds (n = 1,000 × m = 10,000, ≈ 80 MB), as
/// the bridge between the Table-1 groups and the sampled scale.
fn bench_nash_large(c: &mut Criterion) -> Result<(), GameError> {
    let n = 10_000;
    let m = 100_000;
    let rates: Vec<f64> = (0..n).map(|i| 10.0 + (i % 97) as f64).collect();
    let phi = 0.6 * rates.iter().sum::<f64>() / m as f64;
    let model = SystemModel::new(rates, vec![phi; m])?;
    let auto_threads = ParallelRunner::from_env().threads();
    let mut g = c.benchmark_group("nash_large_sampled");
    for (id, threads) in [("threads_1", 1), ("threads_auto", auto_threads)] {
        g.bench_function(id, |b| {
            let solver = SampledNashSolver::new().epsilon(1e-3).threads(threads);
            b.iter(|| {
                let out = solver.solve(&model).expect("large sampled solve");
                assert!(out.converged(), "did not certify within budget");
                out.iterations()
            });
        });
    }
    // The web-scale run with the full sampled trace pipeline attached
    // (head sampler in front of the JSONL encoder). Events here are
    // sparse relative to compute, so this is where the ≤5% tracing
    // overhead budget is enforced: the summary records
    // `large_sampled_trace_vs_untraced` against `threads_auto` and CI
    // gates it <1.10 (runner-noise margin over the 1.05 budget).
    g.bench_function("threads_auto_traced", |b| {
        let sink: Arc<dyn Collector> = Arc::new(JsonlCollector::new(Box::new(std::io::sink())));
        let collector: Arc<dyn Collector> = Arc::new(lb_telemetry::SamplingCollector::new(
            sink,
            lb_telemetry::SamplingConfig::default(),
        ));
        let solver = SampledNashSolver::new()
            .epsilon(1e-3)
            .threads(auto_threads)
            .collector(collector);
        b.iter(|| {
            let out = solver.solve(&model).expect("large sampled solve");
            assert!(out.converged(), "did not certify within budget");
            out.iterations()
        });
    });
    g.finish();

    let n = 1_000;
    let m = 10_000;
    let rates: Vec<f64> = (0..n).map(|i| 10.0 + (i % 97) as f64).collect();
    let phi = 0.6 * rates.iter().sum::<f64>() / m as f64;
    let model = SystemModel::new(rates, vec![phi; m])?;
    let profile = ProportionalScheme.compute(&model)?;
    let mut g = c.benchmark_group("nash_large_jacobi");
    g.bench_function("threads_1", |b| {
        b.iter(|| jacobi_round(&model, &profile, 1).expect("round"));
    });
    g.bench_function("threads_auto", |b| {
        b.iter(|| jacobi_round(&model, &profile, auto_threads).expect("round"));
    });
    g.finish();
    Ok(())
}

/// Seed shared by every engine in the simulation-throughput group so all
/// four cells simulate the same workload.
const SIM_THROUGHPUT_SEED: u64 = 42;

/// Benchmark group name of the `bench --sim` throughput cells.
const SIM_GROUP: &str = "sim_throughput_large";

/// The simulation-throughput group behind `bench --sim`: one large
/// replication (n = 32 heterogeneous computers, m = 200 users, ρ = 0.6)
/// through each engine — the classic single-calendar reference (the seed
/// path and the baseline of the speedup claims), the sharded per-station
/// engine at one thread and at the [`ParallelRunner::from_env`] thread
/// count, and the analytic closed-form sampler. Returns each cell's
/// jobs-generated count so the summary can report jobs/sec.
fn bench_sim_throughput(c: &mut Criterion) -> Result<Vec<(&'static str, u64)>, GameError> {
    let n = 32;
    let m = 200;
    let rates: Vec<f64> = (0..n).map(|i| 10.0 + (i % 17) as f64).collect();
    let phi = 0.6 * rates.iter().sum::<f64>() / m as f64;
    let model = SystemModel::new(rates, vec![phi; m])?;
    let profile = ProportionalScheme.compute(&model)?;
    // 2M jobs per replication is the ROADMAP's web-scale target; the CI
    // smoke pass (CRITERION_QUICK) trims the horizon so the
    // single-calendar baseline stays affordable while the throughput
    // ratios remain meaningful.
    let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| !v.is_empty() && v != "0");
    let config = SimulationConfig {
        target_jobs: if quick { 100_000 } else { 2_000_000 },
        ..SimulationConfig::paper()
    };
    let mut jobs: Vec<(&'static str, u64)> = Vec::new();
    let mut g = c.benchmark_group(SIM_GROUP);

    let mut generated = 0_u64;
    g.bench_function("single_calendar_seed", |b| {
        b.iter(|| {
            let r = run_replication_single_calendar(&model, &profile, config, SIM_THROUGHPUT_SEED)
                .expect("single-calendar replication");
            generated = r.jobs_generated;
            r.system_mean
        });
    });
    jobs.push(("single_calendar_seed", generated));

    for (id, runner) in [
        ("sharded_threads_1", ParallelRunner::sequential()),
        ("sharded_threads_auto", ParallelRunner::from_env()),
    ] {
        let mut generated = 0_u64;
        g.bench_function(id, |b| {
            b.iter(|| {
                let r = run_replication_sharded_with(
                    &runner,
                    &model,
                    &profile,
                    config,
                    SIM_THROUGHPUT_SEED,
                )
                .expect("sharded replication");
                generated = r.jobs_generated;
                r.system_mean
            });
        });
        jobs.push((id, generated));
    }

    let analytic_config = config.with_fidelity(SimFidelity::Analytic);
    let mut generated = 0_u64;
    g.bench_function("analytic", |b| {
        b.iter(|| {
            let r =
                run_replication_analytic(&model, &profile, analytic_config, SIM_THROUGHPUT_SEED)
                    .expect("analytic replication");
            generated = r.jobs_generated;
            r.system_mean
        });
    });
    jobs.push(("analytic", generated));
    g.finish();
    Ok(jobs)
}

/// Per-engine `(id, ns_per_iter, jobs_per_sec)` rows of the
/// simulation-throughput group.
fn sim_rows(c: &Criterion, jobs: &[(&'static str, u64)]) -> Vec<(String, f64, f64)> {
    jobs.iter()
        .filter_map(|(id, j)| {
            ns_of(c, SIM_GROUP, id)
                .filter(|ns| *ns > 0.0)
                .map(|ns| ((*id).to_string(), ns, *j as f64 / (ns * 1e-9)))
        })
        .collect()
}

/// Renders the `bench --sim` summary: every cell's ns/iter and jobs/sec
/// plus the jobs/sec speedup of every engine over the single-calendar
/// seed path.
fn sim_summary_json(c: &Criterion, jobs: &[(&'static str, u64)]) -> String {
    let rows = sim_rows(c, jobs);
    let base = rows
        .iter()
        .find(|(id, _, _)| id == "single_calendar_seed")
        .map(|(_, _, rate)| *rate);
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"threads\": {},",
        ParallelRunner::from_env().threads()
    );
    out.push_str("  \"benchmarks\": [");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
            r.group, r.id, r.ns_per_iter, r.iters
        );
    }
    out.push_str("\n  ],\n  \"throughput\": [");
    for (i, ((id, ns, rate), (_, generated))) in rows.iter().zip(jobs).enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"id\": \"{id}\", \"jobs_generated\": {generated}, \
             \"ns_per_iter\": {ns:.1}, \"jobs_per_sec\": {rate:.1}}}"
        );
    }
    out.push_str("\n  ],\n  \"speedups_vs_single_calendar\": {");
    let mut first = true;
    for (id, _, rate) in &rows {
        if id == "single_calendar_seed" {
            continue;
        }
        if let Some(b) = base.filter(|b| *b > 0.0) {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(out, "    \"{}\": {:.3}", id, rate / b);
        }
    }
    out.push_str("\n  }\n}\n");
    out
}

/// What [`run_sim`] produced.
#[derive(Debug)]
pub struct SimBenchReport {
    /// Path of the freshly written [`SIM_BENCH_FILE`].
    pub path: PathBuf,
    /// Per-engine throughput table (ns/iter, jobs/sec, speedup vs the
    /// single-calendar seed path).
    pub table: Table,
    /// Analytic-vs-single-calendar jobs/sec ratio — the headline number
    /// (the ROADMAP target is ≥100×).
    pub headline_speedup: Option<f64>,
}

/// Runs the simulation-throughput group (`bench --sim`) and writes
/// [`SIM_BENCH_FILE`] under `out_dir`. Speedups are recorded, never
/// asserted — on a loaded runner the sharded cells legitimately vary;
/// the analytic cell's ratio is the headline the CI log surfaces.
///
/// # Errors
///
/// A human-readable message on model/simulation failures or I/O errors.
pub fn run_sim(out_dir: &Path) -> Result<SimBenchReport, String> {
    let mut c = Criterion::default();
    let jobs = bench_sim_throughput(&mut c).map_err(|e| format!("sim bench: {e}"))?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let path = out_dir.join(SIM_BENCH_FILE);
    let summary = sim_summary_json(&c, &jobs);
    std::fs::write(&path, &summary).map_err(|e| format!("writing {}: {e}", path.display()))?;

    let rows = sim_rows(&c, &jobs);
    let base = rows
        .iter()
        .find(|(id, _, _)| id == "single_calendar_seed")
        .map(|(_, _, rate)| *rate)
        .filter(|b| *b > 0.0);
    let mut table = Table::new(
        "Simulation throughput — one large replication (n=32, m=200, rho=0.6)".to_string(),
        vec![
            "engine".to_string(),
            "ns/iter".to_string(),
            "jobs/sec".to_string(),
            "vs single calendar".to_string(),
        ],
    );
    for (id, ns, rate) in &rows {
        let speedup = match base {
            Some(b) if id != "single_calendar_seed" => format!("{:.1}x", rate / b),
            _ => "-".to_string(),
        };
        table.row(vec![
            id.clone(),
            format!("{ns:.0}"),
            format!("{rate:.3e}"),
            speedup,
        ]);
    }
    let headline_speedup = base.and_then(|b| {
        rows.iter()
            .find(|(id, _, _)| id == "analytic")
            .map(|(_, _, rate)| rate / b)
    });
    Ok(SimBenchReport {
        path,
        table,
        headline_speedup,
    })
}

/// Looks up a recorded measurement.
fn ns_of(c: &Criterion, group: &str, id: &str) -> Option<f64> {
    c.results()
        .iter()
        .find(|r| r.group == group && r.id == id)
        .map(|r| r.ns_per_iter)
}

/// Renders the full summary: every benchmark's ns/iter plus the measured
/// parallel-vs-sequential speedups and the thread count they used.
fn summary_json(c: &Criterion) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"threads\": {},",
        ParallelRunner::from_env().threads()
    );
    out.push_str("  \"benchmarks\": [");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
            r.group, r.id, r.ns_per_iter, r.iters
        );
    }
    out.push_str("\n  ],\n  \"speedups\": {");
    let pairs = [
        (
            "simulate_profile_parallel_vs_sequential",
            "simulate_profile_reps30",
            "sequential",
            "parallel",
        ),
        (
            "jacobi_round_parallel_vs_sequential",
            "jacobi_round_table1",
            "threads_1",
            "threads_auto",
        ),
    ];
    let mut first = true;
    for (name, group, seq, par) in pairs {
        if let (Some(s), Some(p)) = (ns_of(c, group, seq), ns_of(c, group, par)) {
            if p > 0.0 {
                out.push_str(if first { "\n" } else { ",\n" });
                first = false;
                let _ = write!(out, "    \"{}\": {:.3}", name, s / p);
            }
        }
    }
    out.push_str("\n  },\n  \"overheads\": {");
    let rungs = [
        ("disabled_collector_vs_none", "disabled"),
        ("null_collector_vs_none", "null_collector"),
        ("jsonl_sink_vs_none", "jsonl_sink"),
        ("sampling_sink_vs_none", "sampling_sink"),
    ];
    let base = ns_of(c, "nash_collector_overhead", "none");
    let mut first = true;
    for (name, id) in rungs {
        if let (Some(b), Some(v)) = (base, ns_of(c, "nash_collector_overhead", id)) {
            if b > 0.0 {
                out.push_str(if first { "\n" } else { ",\n" });
                first = false;
                let _ = write!(out, "    \"{}\": {:.4}", name, v / b);
            }
        }
    }
    // Only present on `--large` runs: the traced web-scale sampled
    // solve vs the untraced one — the ≤5% tracing budget lives here,
    // where events are sparse relative to compute.
    if let (Some(b), Some(v)) = (
        ns_of(c, "nash_large_sampled", "threads_auto"),
        ns_of(c, "nash_large_sampled", "threads_auto_traced"),
    ) {
        if b > 0.0 {
            out.push_str(if first { "\n" } else { ",\n" });
            let _ = write!(out, "    \"large_sampled_trace_vs_untraced\": {:.4}", v / b);
        }
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Extracts `(group, id, ns_per_iter)` rows from a `BENCH_nash.json`
/// document (parsed with the telemetry layer's JSON parser).
fn parse_benchmarks(text: &str) -> Result<Vec<(String, String, f64)>, String> {
    let doc = lb_telemetry::json::parse(text).map_err(|e| format!("bench summary: {e}"))?;
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_array)
        .ok_or("bench summary: missing `benchmarks` array")?;
    benches
        .iter()
        .map(|b| {
            let field = |key: &str| {
                b.get(key)
                    .ok_or_else(|| format!("bench summary: entry missing `{key}`"))
            };
            Ok((
                field("group")?
                    .as_str()
                    .ok_or("bench summary: `group` not a string")?
                    .to_string(),
                field("id")?
                    .as_str()
                    .ok_or("bench summary: `id` not a string")?
                    .to_string(),
                field("ns_per_iter")?
                    .as_f64()
                    .ok_or("bench summary: `ns_per_iter` not a number")?,
            ))
        })
        .collect()
}

/// Builds the delta-vs-reference table: every benchmark of the current
/// run next to the reference measurement (matched by group + id) with
/// the relative change. Benchmarks absent from the reference show "-".
///
/// # Errors
///
/// A message when either document fails to parse.
pub fn delta_table(current: &str, reference: &str) -> Result<Table, String> {
    let cur = parse_benchmarks(current)?;
    let refs = parse_benchmarks(reference)?;
    let mut t = Table::new(
        "Benchmarks vs reference BENCH_nash.json".to_string(),
        vec![
            "group".to_string(),
            "id".to_string(),
            "ref ns/iter".to_string(),
            "now ns/iter".to_string(),
            "delta".to_string(),
        ],
    );
    for (group, id, now) in &cur {
        let reference = refs
            .iter()
            .find(|(g, i, _)| g == group && i == id)
            .map(|(_, _, ns)| *ns);
        let (ref_cell, delta_cell) = match reference {
            Some(r) if r > 0.0 => (format!("{r:.1}"), format!("{:+.1}%", (now - r) / r * 100.0)),
            _ => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            group.clone(),
            id.clone(),
            ref_cell,
            format!("{now:.1}"),
            delta_cell,
        ]);
    }
    Ok(t)
}

/// One benchmark whose slowdown vs the reference exceeded the noise
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark group.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Reference ns/iter.
    pub reference_ns: f64,
    /// Current ns/iter.
    pub current_ns: f64,
}

impl Regression {
    /// Slowdown factor (current / reference).
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.reference_ns
    }
}

/// Compares two bench summaries (current vs reference, both in the
/// [`BENCH_FILE`] format) and returns every benchmark whose slowdown
/// exceeds `threshold` (e.g. `0.25` flags anything >1.25× slower).
/// Benchmarks missing from either side are ignored; speedups never
/// flag.
///
/// # Errors
///
/// A message when either document fails to parse.
pub fn regressions(
    current: &str,
    reference: &str,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    let cur = parse_benchmarks(current)?;
    let refs = parse_benchmarks(reference)?;
    let mut out = Vec::new();
    for (group, id, now) in cur {
        let Some(r) = refs
            .iter()
            .find(|(g, i, _)| *g == group && *i == id)
            .map(|(_, _, ns)| *ns)
        else {
            continue;
        };
        if r > 0.0 && now / r > 1.0 + threshold {
            out.push(Regression {
                group,
                id,
                reference_ns: r,
                current_ns: now,
            });
        }
    }
    Ok(out)
}

/// Renders flagged regressions as a table.
pub fn render_regressions(regs: &[Regression]) -> Table {
    let mut t = Table::new(
        format!(
            "Bench regressions (>{:.0}% slower than reference)",
            REGRESSION_THRESHOLD * 100.0
        ),
        vec![
            "group".to_string(),
            "id".to_string(),
            "ref ns/iter".to_string(),
            "now ns/iter".to_string(),
            "slowdown".to_string(),
        ],
    );
    for r in regs {
        t.row(vec![
            r.group.clone(),
            r.id.clone(),
            format!("{:.1}", r.reference_ns),
            format!("{:.1}", r.current_ns),
            format!("{:.2}x", r.ratio()),
        ]);
    }
    t
}

/// Renders one history line: the run's timestamp, thread count, and
/// every measurement as a single JSON object (no trailing newline).
fn history_line(c: &Criterion, unix_s: u64) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"unix_s\":{unix_s},\"threads\":{},\"benchmarks\":[",
        ParallelRunner::from_env().threads()
    );
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"group\":\"{}\",\"id\":\"{}\",\"ns_per_iter\":{:.1}}}",
            r.group, r.id, r.ns_per_iter
        );
    }
    out.push_str("]}");
    out
}

/// What [`run`] produced: the summary path, the appended history line,
/// and — when a reference file was present before the run — the delta
/// table and flagged regressions against it.
#[derive(Debug)]
pub struct BenchReport {
    /// Path of the freshly written [`BENCH_FILE`].
    pub path: PathBuf,
    /// Path of the append-only [`HISTORY_FILE`].
    pub history_path: PathBuf,
    /// Delta vs the previous [`BENCH_FILE`] at the same path (the
    /// committed reference when `--out` is the default `results/`).
    pub delta: Option<Table>,
    /// Benchmarks slower than the reference beyond
    /// [`REGRESSION_THRESHOLD`] (empty when no reference existed).
    pub regressions: Vec<Regression>,
}

/// Runs every benchmark group (plus the web-scale groups when `large`
/// is set), writes [`BENCH_FILE`] under `out_dir`, and appends a
/// timestamped line to [`HISTORY_FILE`]. A pre-existing summary at the
/// [`BENCH_FILE`] path — normally the committed reference under
/// `results/` — is read *before* being overwritten, reported as a delta
/// table, and checked for regressions beyond [`REGRESSION_THRESHOLD`]
/// (report-only: flagged regressions are returned, never turned into an
/// error, so CI can decide).
///
/// # Errors
///
/// A human-readable message on model/solver failures or I/O errors.
pub fn run(out_dir: &Path, large: bool) -> Result<BenchReport, String> {
    let mut c = Criterion::default();
    bench_nash(&mut c).map_err(|e| format!("nash bench: {e}"))?;
    bench_async(&mut c).map_err(|e| format!("async bench: {e}"))?;
    bench_collector_overhead(&mut c).map_err(|e| format!("overhead bench: {e}"))?;
    bench_water_fill(&mut c);
    bench_simulation(&mut c).map_err(|e| format!("simulation bench: {e}"))?;
    bench_jacobi(&mut c).map_err(|e| format!("jacobi bench: {e}"))?;
    if large {
        bench_nash_large(&mut c).map_err(|e| format!("large bench: {e}"))?;
    }
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let path = out_dir.join(BENCH_FILE);
    let reference = std::fs::read_to_string(&path).ok();
    let summary = summary_json(&c);
    std::fs::write(&path, &summary).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let (delta, regs) = match reference {
        Some(ref_text) => (
            Some(delta_table(&summary, &ref_text)?),
            regressions(&summary, &ref_text, REGRESSION_THRESHOLD)?,
        ),
        None => (None, Vec::new()),
    };

    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_path = out_dir.join(HISTORY_FILE);
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .map_err(|e| format!("opening {}: {e}", history_path.display()))?;
    use std::io::Write as _;
    writeln!(history, "{}", history_line(&c, unix_s))
        .map_err(|e| format!("appending {}: {e}", history_path.display()))?;

    Ok(BenchReport {
        path,
        history_path,
        delta,
        regressions: regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_emits_machine_readable_summary() {
        // Shrink the measurement windows so this stays a smoke test; the
        // other lb-experiments tests never read this variable.
        std::env::set_var("CRITERION_QUICK", "1");
        let dir = std::env::temp_dir().join("lb_bench_smoke_test");
        std::fs::remove_dir_all(&dir).ok();
        let report = run(&dir, false).unwrap();
        assert_eq!(report.path.file_name().unwrap(), BENCH_FILE);
        // First run: nothing to compare against.
        assert!(report.delta.is_none());
        assert!(report.regressions.is_empty());
        // The history gained exactly one parseable, timestamped line.
        let history = std::fs::read_to_string(&report.history_path).unwrap();
        assert_eq!(history.lines().count(), 1);
        let entry = lb_telemetry::json::parse(history.lines().next().unwrap()).unwrap();
        assert!(entry.get("unix_s").and_then(Json::as_u64).is_some());
        assert!(!entry
            .get("benchmarks")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        let json = std::fs::read_to_string(&report.path).unwrap();
        for needle in [
            "\"threads\":",
            "\"group\": \"nash_table1_rho60\"",
            "\"id\": \"NASH_P\"",
            "\"group\": \"nash_async\"",
            "\"id\": \"chaos_loss30\"",
            "\"group\": \"nash_collector_overhead\"",
            "\"id\": \"disabled\"",
            "\"id\": \"jsonl_sink\"",
            "\"group\": \"water_fill_n256\"",
            "\"id\": \"reused_scratch\"",
            "\"group\": \"simulate_profile_reps30\"",
            "\"group\": \"jacobi_round_table1\"",
            "\"simulate_profile_parallel_vs_sequential\":",
            "\"jacobi_round_parallel_vs_sequential\":",
            "\"overheads\":",
            "\"disabled_collector_vs_none\":",
            "\"null_collector_vs_none\":",
            "\"jsonl_sink_vs_none\":",
            "\"id\": \"sampling_sink\"",
            "\"sampling_sink_vs_none\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // The summary parses with the telemetry JSON parser, and the
        // recorded overheads are sane positive ratios.
        let doc = lb_telemetry::json::parse(&json).unwrap();
        let overheads = doc.get("overheads").unwrap().as_object().unwrap();
        assert_eq!(overheads.len(), 4);
        for (name, ratio) in overheads {
            let r = ratio.as_f64().unwrap();
            assert!(r > 0.0, "{name} ratio {r}");
        }
        // Second run: the first summary becomes the reference and the
        // delta table covers every benchmark; the history grows.
        let report2 = run(&dir, false).unwrap();
        let delta = report2.delta.expect("reference present on second run");
        assert_eq!(delta.len(), parse_benchmarks(&json).unwrap().len());
        let history2 = std::fs::read_to_string(&report2.history_path).unwrap();
        assert_eq!(history2.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
        // ns_per_iter figures must be positive numbers.
        for line in json.lines().filter(|l| l.contains("ns_per_iter")) {
            let v: f64 = line
                .split("\"ns_per_iter\": ")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .unwrap()
                .parse()
                .unwrap();
            assert!(v > 0.0, "non-positive measurement in {line}");
        }
    }

    /// `bench --sim` end to end under CRITERION_QUICK: all four engine
    /// cells land in `BENCH_sim.json` with positive jobs/sec, and the
    /// analytic headline speedup is present.
    #[test]
    fn sim_bench_emits_throughput_summary() {
        std::env::set_var("CRITERION_QUICK", "1");
        let dir = std::env::temp_dir().join("lb_bench_sim_smoke_test");
        std::fs::remove_dir_all(&dir).ok();
        let report = run_sim(&dir).unwrap();
        assert_eq!(report.path.file_name().unwrap(), SIM_BENCH_FILE);
        assert_eq!(report.table.len(), 4);
        assert!(report.headline_speedup.unwrap() > 1.0);
        let json = std::fs::read_to_string(&report.path).unwrap();
        for needle in [
            "\"group\": \"sim_throughput_large\"",
            "\"id\": \"single_calendar_seed\"",
            "\"id\": \"sharded_threads_1\"",
            "\"id\": \"sharded_threads_auto\"",
            "\"id\": \"analytic\"",
            "\"throughput\":",
            "\"speedups_vs_single_calendar\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let doc = lb_telemetry::json::parse(&json).unwrap();
        let throughput = doc.get("throughput").unwrap().as_array().unwrap();
        assert_eq!(throughput.len(), 4);
        for cell in throughput {
            assert!(cell.get("jobs_per_sec").unwrap().as_f64().unwrap() > 0.0);
            assert!(cell.get("jobs_generated").unwrap().as_u64().unwrap() > 0);
        }
        let speedups = doc
            .get("speedups_vs_single_calendar")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(speedups.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The web-scale groups end to end: n = 10,000 × m = 100,000 must
    /// certify ε = 1e-3 and land in the machine-readable summary.
    #[test]
    #[ignore = "release-build soak: several minutes even under CRITERION_QUICK"]
    fn large_bench_records_web_scale_groups() {
        std::env::set_var("CRITERION_QUICK", "1");
        let dir = std::env::temp_dir().join("lb_bench_large_smoke_test");
        std::fs::remove_dir_all(&dir).ok();
        let report = run(&dir, true).unwrap();
        let json = std::fs::read_to_string(&report.path).unwrap();
        for needle in [
            "\"group\": \"nash_large_sampled\"",
            "\"group\": \"nash_large_jacobi\"",
            "\"id\": \"threads_1\"",
            "\"id\": \"threads_auto\"",
            "\"id\": \"threads_auto_traced\"",
            "\"large_sampled_trace_vs_untraced\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two hand-built summaries: one benchmark 2× slower (flagged), one
    /// 10% slower (inside the noise threshold), one 2× faster (never
    /// flagged), one present only on one side (ignored).
    #[test]
    fn synthetic_2x_regression_is_flagged_and_noise_is_not() {
        let summary = |rows: &[(&str, &str, f64)]| {
            let mut s = String::from("{\n  \"benchmarks\": [");
            for (i, (g, id, ns)) in rows.iter().enumerate() {
                s.push_str(if i == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    s,
                    "    {{\"group\": \"{g}\", \"id\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": 10}}"
                );
            }
            s.push_str("\n  ]\n}\n");
            s
        };
        let reference = summary(&[
            ("solver", "nash_p", 1000.0),
            ("solver", "nash_0", 2000.0),
            ("sim", "parallel", 5000.0),
            ("only_in_ref", "x", 1.0),
        ]);
        let current = summary(&[
            ("solver", "nash_p", 2000.0), // 2.00x — regression
            ("solver", "nash_0", 2200.0), // 1.10x — noise
            ("sim", "parallel", 2500.0),  // 0.50x — speedup
            ("only_in_cur", "y", 1.0),    // no reference — ignored
        ]);
        let regs = regressions(&current, &reference, REGRESSION_THRESHOLD).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].group, "solver");
        assert_eq!(regs[0].id, "nash_p");
        assert!((regs[0].ratio() - 2.0).abs() < 1e-12);
        let table = render_regressions(&regs);
        assert_eq!(table.len(), 1);
        assert!(table.render().contains("2.00x"));
        // Identical summaries flag nothing.
        assert!(regressions(&reference, &reference, REGRESSION_THRESHOLD)
            .unwrap()
            .is_empty());
    }
}
