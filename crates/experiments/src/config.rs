//! Shared experimental constants (paper §4).

/// Convergence tolerance ε used by the NASH runs in all experiments.
pub const EPSILON: f64 = 1e-4;

/// The utilization levels of Figure 4 (10% … 90%).
pub const UTILIZATION_SWEEP: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// The medium load at which Figures 2, 5 (and 6's fixed utilization) run.
pub const MEDIUM_LOAD: f64 = 0.6;

/// The user counts of Figure 3 (4 … 32).
pub const USER_SWEEP: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];

/// The speed-skewness sweep of Figure 6 (1 = homogeneous … 20 = highly
/// heterogeneous; the paper varies the fast computers' relative rate from
/// 1 to 20).
pub const SKEW_SWEEP: [f64; 8] = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0];

/// Default output directory for CSV artifacts.
pub const RESULTS_DIR: &str = "results";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(UTILIZATION_SWEEP.len(), 9);
        assert_eq!(USER_SWEEP.first(), Some(&4));
        assert_eq!(USER_SWEEP.last(), Some(&32));
        assert_eq!(SKEW_SWEEP.first(), Some(&1.0));
        assert_eq!(SKEW_SWEEP.last(), Some(&20.0));
        let eps = EPSILON;
        assert!(eps > 0.0 && eps < 1e-2);
    }
}
