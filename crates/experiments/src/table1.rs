//! Table 1 — the heterogeneous system configuration.
//!
//! | Relative processing rate | 1 | 2 | 5 | 10 |
//! |--------------------------|---|---|---|----|
//! | Number of computers      | 6 | 5 | 3 | 2  |
//! | Processing rate (jobs/s) | 10| 20| 50| 100|

use crate::report::Table;
use lb_game::model::SystemModel;

/// One computer class of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputerClass {
    /// Rate relative to the slowest class.
    pub relative_rate: f64,
    /// Number of computers in the class.
    pub count: usize,
    /// Absolute processing rate, jobs per second.
    pub rate: f64,
}

/// The classes of Table 1, derived from the model constructor (so the
/// table can never drift from the code).
pub fn classes() -> Vec<ComputerClass> {
    let rates = SystemModel::table1_rates();
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut classes: Vec<ComputerClass> = Vec::new();
    for &r in &rates {
        match classes.iter_mut().find(|c| c.rate == r) {
            Some(c) => c.count += 1,
            None => classes.push(ComputerClass {
                relative_rate: r / min,
                count: 1,
                rate: r,
            }),
        }
    }
    classes.sort_by(|a, b| a.rate.partial_cmp(&b.rate).expect("finite"));
    classes
}

/// Renders Table 1 in the paper's layout (classes as columns).
pub fn render() -> Table {
    let cls = classes();
    let mut header = vec!["quantity".to_string()];
    header.extend(
        cls.iter()
            .map(|c| format!("class {}", c.relative_rate as u64)),
    );
    let mut t = Table::new("Table 1: system configuration".to_string(), header);
    let mut rel = vec!["relative processing rate".to_string()];
    rel.extend(cls.iter().map(|c| format!("{}", c.relative_rate as u64)));
    t.row(rel);
    let mut cnt = vec!["number of computers".to_string()];
    cnt.extend(cls.iter().map(|c| c.count.to_string()));
    t.row(cnt);
    let mut rate = vec!["processing rate (jobs/s)".to_string()];
    rate.extend(cls.iter().map(|c| format!("{}", c.rate as u64)));
    t.row(rate);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_the_paper() {
        let c = classes();
        assert_eq!(c.len(), 4);
        let expected = [
            (1.0, 6, 10.0),
            (2.0, 5, 20.0),
            (5.0, 3, 50.0),
            (10.0, 2, 100.0),
        ];
        for (cls, (rel, count, rate)) in c.iter().zip(expected) {
            assert_eq!(cls.relative_rate, rel);
            assert_eq!(cls.count, count);
            assert_eq!(cls.rate, rate);
        }
    }

    #[test]
    fn render_contains_all_classes() {
        let s = render().render();
        for v in ["6", "5", "3", "2", "10", "20", "50", "100"] {
            assert!(s.contains(v), "missing {v} in:\n{s}");
        }
    }
}
