//! Cross-run trace diff: `experiments diff A B`.
//!
//! Compares two trace logs (or result directories) along four axes,
//! ordered from exact to advisory:
//!
//! 1. **Reweighted event counts** — per-type totals where every
//!    `sample.digest` drop count is folded back onto the type it stood
//!    in for, so a head-sampled run compares equal to itself and any
//!    count delta is a genuine workload difference, never a sampling
//!    artifact. Exact under determinism: identical seeds must produce
//!    zero rows here.
//! 2. **Resource accounting** — per-key integer sums over the
//!    `account.*` families (RNG draws, DES events, network bytes,
//!    solver inner loops). Accounting events are always-keep in the
//!    sampler, so this axis is exact even on sampled traces.
//! 3. **Span forest structure and wall time** — per-name span counts
//!    (structural: a name present in only one run, or with different
//!    multiplicity, is a hard delta) and per-name wall-time totals
//!    (advisory: clocks jitter, so a time row only counts toward the
//!    verdict beyond both a ratio and an absolute floor).
//! 4. **Benchmark artifacts** — when both inputs are directories, any
//!    `BENCH_*.json` present in both is compared with the bench
//!    regression machinery (B current vs A reference).
//!
//! The verdict line is machine-readable JSON so CI can gate on
//! `"verdict":"identical"` without parsing tables.

use crate::analyze::analyze;
use crate::bench;
use crate::report::Table;
use crate::trace::digest_counts;
use lb_telemetry::{EventLog, Json, LogReader};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Wall-time ratio beyond which a span name counts as a regression…
pub const TIME_RATIO: f64 = 1.5;
/// …but only when the absolute delta also clears this floor (µs).
/// Both gates together keep CI runs on noisy shared hardware from
/// flagging jitter on sub-millisecond spans.
pub const TIME_FLOOR_US: u64 = 150_000;

/// Default trace filename looked up when an input path is a directory.
pub const DEFAULT_TRACE: &str = "trace_table1.jsonl";

/// Delta counts per axis; the verdict is clean iff all are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Reweighted per-event-type count mismatches.
    pub count_deltas: usize,
    /// `account.*` counter mismatches (per event type × key).
    pub account_deltas: usize,
    /// Span names present in only one run or with different counts.
    pub structure_deltas: usize,
    /// Span names slower in B beyond both the ratio and the floor.
    pub time_regressions: usize,
    /// `BENCH_*.json` benchmark regressions (B vs A reference).
    pub bench_regressions: usize,
}

impl Verdict {
    /// Total deltas across all axes.
    pub fn total(&self) -> usize {
        self.count_deltas
            + self.account_deltas
            + self.structure_deltas
            + self.time_regressions
            + self.bench_regressions
    }

    /// Whether the two runs are equivalent under every axis.
    pub fn is_identical(&self) -> bool {
        self.total() == 0
    }

    /// One machine-readable JSON line for CI.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count_deltas\":{},\"account_deltas\":{},\"structure_deltas\":{},\
             \"time_regressions\":{},\"bench_regressions\":{},\"total\":{},\"verdict\":\"{}\"}}",
            self.count_deltas,
            self.account_deltas,
            self.structure_deltas,
            self.time_regressions,
            self.bench_regressions,
            self.total(),
            if self.is_identical() {
                "identical"
            } else {
                "different"
            }
        )
    }
}

/// The rendered diff: delta-only tables plus the verdict.
#[derive(Debug)]
pub struct DiffReport {
    /// Resolved path of run A's trace log.
    pub log_a: PathBuf,
    /// Resolved path of run B's trace log.
    pub log_b: PathBuf,
    /// Tables holding only delta rows (all empty on identical runs).
    pub tables: Vec<Table>,
    /// Per-axis delta counts.
    pub verdict: Verdict,
}

/// A directory input means "the trace inside it".
fn resolve(input: &Path) -> PathBuf {
    if input.is_dir() {
        input.join(DEFAULT_TRACE)
    } else {
        input.to_path_buf()
    }
}

/// Streams and validates one log without assuming it fits in a string.
fn load(path: &Path) -> Result<EventLog, String> {
    let reader = LogReader::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let version = reader.version();
    let events = reader
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(EventLog { version, events })
}

/// Per-type event counts with sampling reweighted away: kept events
/// plus digest drop counts, with the digests themselves excluded
/// (they are sampler bookkeeping, not workload).
fn reweighted_counts(log: &EventLog) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &log.events {
        if ev.name != "sample.digest" {
            *counts.entry(ev.name.clone()).or_insert(0) += 1;
        }
    }
    for (name, dropped) in digest_counts(log) {
        *counts.entry(name).or_insert(0) += dropped;
    }
    counts
}

/// Integer field sums per `account.*` event type.
fn account_totals(log: &EventLog) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut totals: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for ev in &log.events {
        if !ev.name.starts_with("account.") {
            continue;
        }
        let keys = totals.entry(ev.name.clone()).or_default();
        for (k, v) in &ev.fields {
            if let Some(n) = Json::as_u64(v) {
                *keys.entry(k.clone()).or_insert(0) += n;
            }
        }
    }
    totals
}

/// Per-span-name (count, total wall µs) from the reconstructed forest.
fn span_profile(log: &EventLog) -> BTreeMap<String, (usize, u64)> {
    analyze(log)
        .stats
        .into_iter()
        .map(|s| (s.name, (s.count, s.total_us)))
        .collect()
}

fn union_keys<'a, V>(
    a: &'a BTreeMap<String, V>,
    b: &'a BTreeMap<String, V>,
) -> BTreeSet<&'a String> {
    a.keys().chain(b.keys()).collect()
}

/// Compares `BENCH_*.json` files present in both directories; returns
/// (regression rows table, regression count).
fn diff_benchmarks(dir_a: &Path, dir_b: &Path) -> Result<(Table, usize), String> {
    let mut table = Table::new(
        "Diff: benchmark regressions (B vs A reference)",
        vec![
            "file",
            "group",
            "benchmark",
            "A ns/iter",
            "B ns/iter",
            "ratio",
        ],
    );
    let mut count = 0;
    let mut names: Vec<String> = std::fs::read_dir(dir_a)
        .map_err(|e| format!("{}: {e}", dir_a.display()))?
        .filter_map(Result::ok)
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .filter(|name| name != bench::HISTORY_FILE)
        .collect();
    names.sort();
    for name in names {
        let path_b = dir_b.join(&name);
        if !path_b.is_file() {
            continue;
        }
        let text_a = std::fs::read_to_string(dir_a.join(&name))
            .map_err(|e| format!("{}: {e}", dir_a.join(&name).display()))?;
        let text_b =
            std::fs::read_to_string(&path_b).map_err(|e| format!("{}: {e}", path_b.display()))?;
        // B is "current", A is "reference": a row means B got slower.
        for reg in bench::regressions(&text_b, &text_a, bench::REGRESSION_THRESHOLD)? {
            table.row(vec![
                name.clone(),
                reg.group.clone(),
                reg.id.clone(),
                format!("{:.0}", reg.reference_ns),
                format!("{:.0}", reg.current_ns),
                format!("{:.2}x", reg.ratio()),
            ]);
            count += 1;
        }
    }
    Ok((table, count))
}

/// Diffs two runs. Each input is a trace log path or a results
/// directory (whose `trace_table1.jsonl` is used, and whose
/// `BENCH_*.json` files are compared when both inputs are
/// directories).
///
/// # Errors
///
/// Unreadable or schema-invalid inputs.
pub fn run(input_a: &Path, input_b: &Path) -> Result<DiffReport, String> {
    let log_a_path = resolve(input_a);
    let log_b_path = resolve(input_b);
    let log_a = load(&log_a_path)?;
    let log_b = load(&log_b_path)?;

    let mut verdict = Verdict::default();
    let mut tables = Vec::new();

    // Axis 1: reweighted event counts (exact under determinism).
    let counts_a = reweighted_counts(&log_a);
    let counts_b = reweighted_counts(&log_b);
    let mut count_table = Table::new(
        "Diff: reweighted event counts (kept + sampled-away)",
        vec!["event", "A", "B", "delta"],
    );
    for name in union_keys(&counts_a, &counts_b) {
        let a = counts_a.get(name).copied().unwrap_or(0);
        let b = counts_b.get(name).copied().unwrap_or(0);
        if a != b {
            count_table.row(vec![
                name.clone(),
                a.to_string(),
                b.to_string(),
                format!("{:+}", b as i64 - a as i64),
            ]);
            verdict.count_deltas += 1;
        }
    }
    tables.push(count_table);

    // Axis 2: per-subsystem resource accounting (exact).
    let acct_a = account_totals(&log_a);
    let acct_b = account_totals(&log_b);
    let mut acct_table = Table::new(
        "Diff: resource accounting (account.* counter sums)",
        vec!["event", "counter", "A", "B", "delta"],
    );
    for event in union_keys(&acct_a, &acct_b) {
        let empty = BTreeMap::new();
        let keys_a = acct_a.get(event).unwrap_or(&empty);
        let keys_b = acct_b.get(event).unwrap_or(&empty);
        for key in union_keys(keys_a, keys_b) {
            let a = keys_a.get(key).copied().unwrap_or(0);
            let b = keys_b.get(key).copied().unwrap_or(0);
            if a != b {
                acct_table.row(vec![
                    event.clone(),
                    key.clone(),
                    a.to_string(),
                    b.to_string(),
                    format!("{:+}", b as i64 - a as i64),
                ]);
                verdict.account_deltas += 1;
            }
        }
    }
    tables.push(acct_table);

    // Axis 3: span forest structure (exact) and wall time (advisory).
    let spans_a = span_profile(&log_a);
    let spans_b = span_profile(&log_b);
    let mut span_table = Table::new(
        "Diff: span structure and wall time",
        vec!["span", "A count", "B count", "A ms", "B ms", "flag"],
    );
    for name in union_keys(&spans_a, &spans_b) {
        let (count_a, us_a) = spans_a.get(name).copied().unwrap_or((0, 0));
        let (count_b, us_b) = spans_b.get(name).copied().unwrap_or((0, 0));
        let flag = if count_a == 0 {
            verdict.structure_deltas += 1;
            "only in B"
        } else if count_b == 0 {
            verdict.structure_deltas += 1;
            "only in A"
        } else if count_a != count_b {
            verdict.structure_deltas += 1;
            "count changed"
        } else if us_b > TIME_FLOOR_US + us_a && (us_b as f64) > (us_a as f64) * TIME_RATIO {
            verdict.time_regressions += 1;
            "slower in B"
        } else {
            continue;
        };
        span_table.row(vec![
            name.clone(),
            count_a.to_string(),
            count_b.to_string(),
            format!("{:.1}", us_a as f64 / 1000.0),
            format!("{:.1}", us_b as f64 / 1000.0),
            flag.to_string(),
        ]);
    }
    tables.push(span_table);

    // Axis 4: benchmark artifacts (directory inputs only).
    if input_a.is_dir() && input_b.is_dir() {
        let (bench_table, regressions) = diff_benchmarks(input_a, input_b)?;
        verdict.bench_regressions = regressions;
        tables.push(bench_table);
    }

    Ok(DiffReport {
        log_a: log_a_path,
        log_b: log_b_path,
        tables,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_telemetry::{Collector, JsonlCollector, SamplingCollector, SamplingConfig};
    use std::io::Write;
    use std::sync::Arc;

    fn temp_file(tag: &str, contents: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "lb_diff_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    /// Emits a tiny deterministic workload through an optional sampler.
    fn workload(seed: u64, extra_span: bool, events: u64) -> Vec<u8> {
        let buf: Arc<std::sync::Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().write(b)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink: Arc<dyn Collector> =
            Arc::new(JsonlCollector::new(Box::new(Shared(Arc::clone(&buf)))));
        // Span verdicts hash the process-global span id, which differs
        // between in-process workload calls (separate CLI runs restart
        // the counter, so real same-seed runs agree). Pin span_rate to
        // 1.0 here so the test only exercises point-event sampling.
        let mut config = SamplingConfig::new(seed, 0.5);
        config.span_rate = 1.0;
        let sampler: Arc<dyn Collector> = Arc::new(SamplingCollector::new(sink, config));
        let collector = Some(&sampler);
        {
            let _root = lb_telemetry::Span::root(collector, "diff.root", &[]);
            for i in 0..events {
                sampler.emit("diff.tick", &[("i", i.into())]);
            }
            sampler.emit("account.test", &[("work", events.into())]);
            if extra_span {
                let _s = lb_telemetry::Span::root(collector, "diff.extra", &[]);
            }
        }
        sampler.flush();
        let out = buf.lock().unwrap().clone();
        out
    }

    #[test]
    fn identical_runs_diff_clean_even_under_sampling() {
        let a = temp_file("same_a", &workload(7, false, 400));
        let b = temp_file("same_b", &workload(7, false, 400));
        let report = run(&a, &b).unwrap();
        assert!(report.verdict.is_identical(), "{:?}", report.verdict);
        assert!(report.tables.iter().all(Table::is_empty));
        assert!(report
            .verdict
            .to_json()
            .contains("\"verdict\":\"identical\""));
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn count_account_and_structure_deltas_are_flagged() {
        let a = temp_file("delta_a", &workload(7, false, 400));
        let b = temp_file("delta_b", &workload(7, true, 500));
        let report = run(&a, &b).unwrap();
        let v = &report.verdict;
        // 100 extra ticks survive reweighting even though both runs
        // sample at 50%; the extra span adds structure.
        assert!(v.count_deltas >= 1, "{v:?}");
        assert!(v.account_deltas >= 1, "{v:?}");
        assert!(v.structure_deltas >= 1, "{v:?}");
        assert!(!v.is_identical());
        assert!(v.to_json().contains("\"verdict\":\"different\""));
        let span_rows = report
            .tables
            .iter()
            .find(|t| t.render().contains("span structure"))
            .unwrap()
            .render();
        assert!(span_rows.contains("diff.extra"), "{span_rows}");
        assert!(span_rows.contains("only in B"), "{span_rows}");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn different_sampling_seeds_still_reweight_to_equal_counts() {
        // Different seeds keep different subsets, but kept + digest
        // must reweight to the same per-type totals.
        let a = temp_file("seed_a", &workload(1, false, 600));
        let b = temp_file("seed_b", &workload(2, false, 600));
        let report = run(&a, &b).unwrap();
        assert_eq!(report.verdict.count_deltas, 0, "{:?}", report.verdict);
        assert_eq!(report.verdict.account_deltas, 0, "{:?}", report.verdict);
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn directory_inputs_resolve_to_the_default_trace() {
        let dir = std::env::temp_dir().join(format!("lb_diff_dir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(DEFAULT_TRACE), workload(7, false, 50)).unwrap();
        let report = run(&dir, &dir).unwrap();
        assert!(report.verdict.is_identical());
        assert_eq!(report.log_a, dir.join(DEFAULT_TRACE));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_input_is_a_readable_error() {
        let err = run(
            Path::new("/nonexistent/a.jsonl"),
            Path::new("/nonexistent/b.jsonl"),
        )
        .unwrap_err();
        assert!(err.contains("/nonexistent/a.jsonl"), "{err}");
    }
}
