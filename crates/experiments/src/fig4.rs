//! Figure 4 — expected response time and fairness index vs system
//! utilization (10%…90%) for NASH, GOS, IOS and PS on the Table-1 system.
//!
//! Shape to reproduce (paper §4.2.2): at low load all schemes except PS
//! coincide; at medium load NASH approaches GOS (≈7% above at 50%) and
//! clearly beats PS (≈30% at 50%); at high load IOS degrades to PS while
//! NASH stays near GOS. PS and IOS hold fairness 1 throughout; GOS
//! fairness decays toward ≈0.9; NASH stays close to 1.

use crate::config::{EPSILON, UTILIZATION_SWEEP};
use crate::report::{fmt, Table};
use lb_game::error::GameError;
use lb_game::metrics::evaluate_profile;
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use lb_game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, NashScheme,
    ProportionalScheme,
};
use lb_game::StoppingRule;
use lb_sim::harness::simulate_profile_traced;
use lb_sim::parallel::ParallelRunner;
use lb_sim::scenario::{SimFidelity, SimulationConfig};
use lb_stats::ReplicationPlan;
use lb_telemetry::Collector;
use std::sync::Arc;

/// Simulation options for the figures that the paper measured by DES.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Jobs to generate per replication.
    pub target_jobs: u64,
    /// Number of replications (the paper uses 5).
    pub replications: u32,
    /// Per-job detail level: the full DES or the analytic M/M/1 fast
    /// path (closed-form sojourn sampling).
    pub fidelity: SimFidelity,
}

impl SimOptions {
    /// The paper's methodology: 5 replications of ~1M jobs.
    pub fn paper() -> Self {
        Self {
            target_jobs: 1_000_000,
            replications: 5,
            fidelity: SimFidelity::Full,
        }
    }

    /// A CI-friendly budget.
    pub fn quick() -> Self {
        Self {
            target_jobs: 60_000,
            replications: 3,
            fidelity: SimFidelity::Full,
        }
    }

    fn plan(&self) -> ReplicationPlan {
        ReplicationPlan {
            replications: self.replications,
            ..ReplicationPlan::paper()
        }
    }

    fn config(&self) -> SimulationConfig {
        SimulationConfig {
            target_jobs: self.target_jobs,
            fidelity: self.fidelity,
            ..SimulationConfig::paper()
        }
    }
}

/// One scheme's analytic (and optionally simulated) metrics on a model.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme name as plotted in the paper.
    pub scheme: &'static str,
    /// Per-user expected response times (analytic).
    pub user_times: Vec<f64>,
    /// System expected response time (analytic).
    pub overall_time: f64,
    /// Jain fairness index (analytic).
    pub fairness: f64,
    /// Simulated system response time, when simulation was requested.
    pub simulated_time: Option<f64>,
    /// Simulated fairness index.
    pub simulated_fairness: Option<f64>,
}

/// Evaluates the four paper schemes on a model, optionally also by
/// simulation. Shared by Figures 4, 5 and 6.
///
/// # Errors
///
/// Propagates scheme and simulation failures.
pub fn evaluate_schemes(
    model: &SystemModel,
    sim: Option<SimOptions>,
) -> Result<Vec<SchemeRow>, GameError> {
    evaluate_schemes_traced(model, sim, None)
}

/// [`evaluate_schemes`] with an optional telemetry collector: the NASH
/// solver streams its `solver.*` convergence events and any simulation
/// runs stream `sim.*` events through it. Collection never perturbs the
/// numbers — results are bit-identical with or without a collector.
///
/// # Errors
///
/// Propagates scheme and simulation failures.
pub fn evaluate_schemes_traced(
    model: &SystemModel,
    sim: Option<SimOptions>,
    collector: Option<&Arc<dyn Collector>>,
) -> Result<Vec<SchemeRow>, GameError> {
    // Pin the paper's absolute-norm criterion so the figure CSVs stay
    // byte-identical to the published reference (the certified default
    // stops at slightly different profiles).
    let mut nash_solver = NashSolver::new(Initialization::Proportional)
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(EPSILON);
    if let Some(c) = collector.filter(|c| c.enabled()) {
        nash_solver = nash_solver.collector(Arc::clone(c));
    }
    let schemes: Vec<Box<dyn LoadBalancingScheme>> = vec![
        Box::new(NashScheme::with_solver(nash_solver)),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ];
    schemes
        .iter()
        .map(|scheme| {
            let profile = scheme.compute(model)?;
            let metrics = evaluate_profile(model, &profile)?;
            let (simulated_time, simulated_fairness) = match sim {
                Some(opts) => {
                    let s = simulate_profile_traced(
                        &ParallelRunner::from_env(),
                        model,
                        &profile,
                        &opts.plan(),
                        opts.config(),
                        collector,
                    )?;
                    (Some(s.system_summary.mean), Some(s.fairness))
                }
                None => (None, None),
            };
            Ok(SchemeRow {
                scheme: scheme.name(),
                user_times: metrics.user_times,
                overall_time: metrics.overall_time,
                fairness: metrics.fairness,
                simulated_time,
                simulated_fairness,
            })
        })
        .collect()
}

/// One utilization level of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// System utilization ρ.
    pub rho: f64,
    /// Metrics of the four schemes at this load.
    pub rows: Vec<SchemeRow>,
}

impl Fig4Point {
    /// Metrics row for the named scheme.
    ///
    /// # Panics
    ///
    /// Panics when the scheme is unknown (test helper).
    pub fn scheme(&self, name: &str) -> &SchemeRow {
        self.rows
            .iter()
            .find(|r| r.scheme == name)
            .unwrap_or_else(|| panic!("unknown scheme {name}"))
    }
}

/// Runs the Figure 4 sweep, optionally with simulation. The nine
/// utilization points are independent, so they fan out over
/// [`ParallelRunner::from_env`]; results come back in sweep order, so
/// the output is identical to the sequential loop.
///
/// # Errors
///
/// Propagates model/scheme/simulation failures.
pub fn run(sim: Option<SimOptions>) -> Result<Vec<Fig4Point>, GameError> {
    run_traced(sim, None)
}

/// [`run`] with an optional telemetry collector. When collecting, the
/// sweep runs sequentially (so the `solver.*`/`sim.*` streams of the
/// nine utilization points do not interleave) and a `fig4.point {rho,
/// nash, gos, ios, ps}` summary event closes each point. The numbers are
/// bit-identical to the plain parallel sweep — the fan-out already
/// guarantees index-order results, so serializing it changes nothing.
///
/// # Errors
///
/// Propagates model/scheme/simulation failures.
pub fn run_traced(
    sim: Option<SimOptions>,
    collector: Option<&Arc<dyn Collector>>,
) -> Result<Vec<Fig4Point>, GameError> {
    let Some(c) = collector.filter(|c| c.enabled()) else {
        return ParallelRunner::from_env().try_run(UTILIZATION_SWEEP.len(), |idx| {
            let rho = UTILIZATION_SWEEP[idx];
            let model = SystemModel::table1_system(rho)?;
            Ok(Fig4Point {
                rho,
                rows: evaluate_schemes(&model, sim)?,
            })
        });
    };
    UTILIZATION_SWEEP
        .iter()
        .map(|&rho| {
            let model = SystemModel::table1_system(rho)?;
            let point = Fig4Point {
                rho,
                rows: evaluate_schemes_traced(&model, sim, collector)?,
            };
            c.emit(
                "fig4.point",
                &[
                    ("rho", rho.into()),
                    ("nash", point.scheme("NASH").overall_time.into()),
                    ("gos", point.scheme("GOS").overall_time.into()),
                    ("ios", point.scheme("IOS").overall_time.into()),
                    ("ps", point.scheme("PS").overall_time.into()),
                ],
            );
            Ok(point)
        })
        .collect()
}

/// Renders the response-time panel of Figure 4.
pub fn render_times(points: &[Fig4Point]) -> Table {
    let simulated = points
        .first()
        .map(|p| p.rows[0].simulated_time.is_some())
        .unwrap_or(false);
    let mut header = vec![
        "util %".to_string(),
        "NASH".to_string(),
        "GOS".to_string(),
        "IOS".to_string(),
        "PS".to_string(),
    ];
    if simulated {
        for s in ["NASH", "GOS", "IOS", "PS"] {
            header.push(format!("{s} (sim)"));
        }
    }
    let mut t = Table::new(
        "Figure 4a: expected response time (sec) vs system utilization".to_string(),
        header,
    );
    for p in points {
        let mut cells = vec![format!("{:.0}", p.rho * 100.0)];
        for name in ["NASH", "GOS", "IOS", "PS"] {
            cells.push(fmt(p.scheme(name).overall_time));
        }
        if simulated {
            for name in ["NASH", "GOS", "IOS", "PS"] {
                cells.push(fmt(p.scheme(name).simulated_time.unwrap_or(f64::NAN)));
            }
        }
        t.row(cells);
    }
    t
}

/// Renders the fairness panel of Figure 4.
pub fn render_fairness(points: &[Fig4Point]) -> Table {
    let mut t = Table::new(
        "Figure 4b: fairness index vs system utilization",
        vec!["util %", "NASH", "GOS", "IOS", "PS"],
    );
    for p in points {
        let mut cells = vec![format!("{:.0}", p.rho * 100.0)];
        for name in ["NASH", "GOS", "IOS", "PS"] {
            cells.push(fmt(p.scheme(name).fairness));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<Fig4Point> {
        run(None).unwrap()
    }

    #[test]
    fn gos_lower_bounds_everyone_everywhere() {
        for p in sweep() {
            let gos = p.scheme("GOS").overall_time;
            for name in ["NASH", "IOS", "PS"] {
                assert!(
                    p.scheme(name).overall_time >= gos - 1e-9,
                    "{name} beats GOS at rho {}",
                    p.rho
                );
            }
        }
    }

    #[test]
    fn low_load_all_but_ps_coincide() {
        // Paper: "at low loads all the schemes except PS yield almost the
        // same performance".
        let points = sweep();
        let p = &points[0]; // 10%
        let nash = p.scheme("NASH").overall_time;
        let gos = p.scheme("GOS").overall_time;
        let ios = p.scheme("IOS").overall_time;
        let ps = p.scheme("PS").overall_time;
        assert!((nash - gos).abs() / gos < 0.02);
        assert!((ios - gos).abs() / gos < 0.02);
        assert!(
            ps > 1.5 * gos,
            "PS ({ps}) should be far worse than GOS ({gos})"
        );
    }

    #[test]
    fn medium_load_nash_between_gos_and_ps() {
        // Paper at 50%: NASH ~30% better than PS, within ~7% of GOS.
        let points = sweep();
        let p = &points[4]; // 50%
        let nash = p.scheme("NASH").overall_time;
        let gos = p.scheme("GOS").overall_time;
        let ps = p.scheme("PS").overall_time;
        assert!(nash < 0.85 * ps, "NASH {nash} should clearly beat PS {ps}");
        assert!(nash < 1.15 * gos, "NASH {nash} should be near GOS {gos}");
    }

    #[test]
    fn high_load_ios_meets_ps() {
        // Paper: "at high loads IOS and PS yield the same expected
        // response time which is greater than that of GOS and NASH".
        let points = sweep();
        let p = points.last().unwrap(); // 90%
        let ios = p.scheme("IOS").overall_time;
        let ps = p.scheme("PS").overall_time;
        let nash = p.scheme("NASH").overall_time;
        let gos = p.scheme("GOS").overall_time;
        assert!((ios - ps).abs() / ps < 0.05, "IOS {ios} vs PS {ps}");
        assert!(nash < ios && gos < ios);
    }

    #[test]
    fn fairness_panel_matches_paper() {
        for p in sweep() {
            assert!((p.scheme("PS").fairness - 1.0).abs() < 1e-9);
            assert!((p.scheme("IOS").fairness - 1.0).abs() < 1e-9);
            assert!(
                p.scheme("NASH").fairness > 0.95,
                "NASH fairness at {}",
                p.rho
            );
            assert!(p.scheme("GOS").fairness <= 1.0 + 1e-12);
        }
        // GOS fairness degrades as load grows (paper: ~1 at low, ~0.92 high).
        let points = sweep();
        let lo = points[0].scheme("GOS").fairness;
        let hi = points.last().unwrap().scheme("GOS").fairness;
        assert!(hi < lo, "GOS fairness should decay: {lo} -> {hi}");
        assert!(hi < 0.99);
    }

    #[test]
    fn response_times_increase_with_load() {
        let points = sweep();
        for name in ["NASH", "GOS", "IOS", "PS"] {
            for w in points.windows(2) {
                assert!(
                    w[1].scheme(name).overall_time >= w[0].scheme(name).overall_time - 1e-9,
                    "{name} not monotone between rho {} and {}",
                    w[0].rho,
                    w[1].rho
                );
            }
        }
    }

    #[test]
    fn csv_artifacts_are_byte_identical_with_collection_enabled() {
        use lb_telemetry::JsonlCollector;
        let plain = run(None).unwrap();
        let collector: Arc<dyn Collector> =
            Arc::new(JsonlCollector::new(Box::new(std::io::sink())));
        let traced = run_traced(None, Some(&collector)).unwrap();

        let dir = std::env::temp_dir().join(format!("lb_fig4_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, render) in [
            (
                "times",
                render_times as fn(&[Fig4Point]) -> crate::report::Table,
            ),
            ("fairness", render_fairness),
        ] {
            let a = dir.join(format!("plain_{name}.csv"));
            let b = dir.join(format!("traced_{name}.csv"));
            render(&plain).write_csv(&a).unwrap();
            render(&traced).write_csv(&b).unwrap();
            assert_eq!(
                std::fs::read(&a).unwrap(),
                std::fs::read(&b).unwrap(),
                "{name} CSV differs with collector on"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_produces_nine_rows() {
        let points = sweep();
        assert_eq!(render_times(&points).len(), 9);
        assert_eq!(render_fairness(&points).len(), 9);
    }
}
