//! Argument parsing for the `experiments` binary, separated from the
//! binary so it can be unit-tested.

use crate::config;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand (`table1`, `fig2`…`fig6`, `all`, `ext`, `ext-*`,
    /// `bench`, `trace`, `analyze`, `diff`, `watch`).
    pub command: String,
    /// Whether to run the DES alongside the analytic path.
    pub simulate: bool,
    /// Jobs per replication for simulated runs.
    pub jobs: u64,
    /// Replications for simulated runs.
    pub replications: u32,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
    /// Mirror telemetry events to stderr (`trace` subcommand).
    pub verbose: bool,
    /// Include the web-scale benchmark groups (`bench` subcommand).
    pub large: bool,
    /// Run the simulation-throughput group (`bench` subcommand), writing
    /// `BENCH_sim.json` with a jobs/sec headline.
    pub sim: bool,
    /// Use the analytic M/M/1 fast path for simulated figures instead of
    /// the full discrete-event engine.
    pub analytic: bool,
    /// Positional input path (`analyze <log>`, `diff <A> <B>`);
    /// defaults per command.
    pub input: Option<PathBuf>,
    /// Second positional input path (`diff <A> <B>` only).
    pub input2: Option<PathBuf>,
    /// TCP port for the live endpoint (`watch` subcommand; 0 =
    /// ephemeral, printed at startup).
    pub port: u16,
    /// Episodes to replay (`watch` subcommand).
    pub iterations: u32,
    /// Milliseconds to keep serving after the last episode (`watch`
    /// subcommand) so external scrapers get a guaranteed window.
    pub linger_ms: u64,
}

/// The usage string.
pub fn usage() -> String {
    "usage: experiments <table1|fig2|fig3|fig4|fig5|fig6|all|ext|\
     ext-service|ext-stackelberg|ext-dynamics|ext-noise|ext-multicore|ext-poa|ext-burstiness|ext-policies|ext-tails|ext-churn|ext-anytime|ext-async|bench|trace|analyze|diff|watch> \
     [LOG] [LOG_B] [--simulate] [--analytic] [--jobs N] [--replications R] [--out-dir DIR] [--verbose] [--large] [--sim] [--port P] [--iterations N] [--linger MS]\n\
     `analyze [LOG]` profiles a span trace (default LOG: <out-dir>/trace_table1.jsonl);\n\
     `diff A B` compares two trace logs or result directories (reweighted event\n\
     counts, account.* sums, span structure/wall time, BENCH_*.json) and prints\n\
     a machine-readable verdict line;\n\
     `watch` serves /metrics /healthz /trace/recent live during an observed replay\n\
     (--port 0 picks an ephemeral port; --linger keeps serving MS after the last episode);\n\
     `bench --large` adds the n=10,000 × m=100,000 solver groups;\n\
     `bench --sim` adds the simulation-throughput group (BENCH_sim.json, jobs/sec headline);\n\
     `--analytic` makes `--simulate` sample closed-form M/M/1 sojourns instead of running the DES;\n\
     `--out` is accepted as an alias for `--out-dir`"
        .to_string()
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// A human-readable message including the usage string.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut args = args.into_iter();
    let command = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        simulate: false,
        jobs: 1_000_000,
        replications: 5,
        out: PathBuf::from(config::RESULTS_DIR),
        verbose: false,
        large: false,
        sim: false,
        analytic: false,
        input: None,
        input2: None,
        port: 0,
        iterations: 28,
        linger_ms: 0,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--simulate" => opts.simulate = true,
            "--verbose" => opts.verbose = true,
            "--large" => opts.large = true,
            "--sim" => opts.sim = true,
            "--analytic" => opts.analytic = true,
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--replications" => {
                opts.replications = args
                    .next()
                    .ok_or("--replications needs a value")?
                    .parse()
                    .map_err(|e| format!("--replications: {e}"))?;
            }
            "--port" => {
                opts.port = args
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--iterations" => {
                opts.iterations = args
                    .next()
                    .ok_or("--iterations needs a value")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--linger" => {
                opts.linger_ms = args
                    .next()
                    .ok_or("--linger needs a value")?
                    .parse()
                    .map_err(|e| format!("--linger: {e}"))?;
            }
            "--out" | "--out-dir" => {
                opts.out = PathBuf::from(args.next().ok_or(format!("{a} needs a value"))?);
            }
            other if !other.starts_with('-') && opts.input.is_none() => {
                opts.input = Some(PathBuf::from(other));
            }
            // Only `diff` takes a second positional.
            other if !other.starts_with('-') && opts.command == "diff" && opts.input2.is_none() => {
                opts.input2 = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Expands a command into the concrete experiment list (handles the
/// `all` and `ext` umbrellas).
pub fn expand_command(command: &str) -> Vec<&str> {
    match command {
        "all" => vec!["table1", "fig2", "fig3", "fig4", "fig5", "fig6"],
        "ext" => vec![
            "ext-service",
            "ext-stackelberg",
            "ext-dynamics",
            "ext-noise",
            "ext-multicore",
            "ext-poa",
            "ext-burstiness",
            "ext-policies",
            "ext-tails",
            "ext-churn",
            "ext-anytime",
            "ext-async",
        ],
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = parse(args(&["fig4"])).unwrap();
        assert_eq!(o.command, "fig4");
        assert!(!o.simulate);
        assert!(!o.verbose);
        assert_eq!(o.jobs, 1_000_000);
        assert_eq!(o.replications, 5);
        assert_eq!(o.out, PathBuf::from("results"));
        assert_eq!(o.input, None);
        assert_eq!(o.input2, None);
        assert!(!o.large);
        assert!(!o.sim);
        assert!(!o.analytic);
        assert_eq!(o.port, 0);
        assert_eq!(o.iterations, 28);
        assert_eq!(o.linger_ms, 0);
    }

    #[test]
    fn watch_flags_parse() {
        let o = parse(args(&[
            "watch",
            "--port",
            "9184",
            "--iterations",
            "12",
            "--linger",
            "5000",
        ]))
        .unwrap();
        assert_eq!(o.command, "watch");
        assert_eq!(o.port, 9184);
        assert_eq!(o.iterations, 12);
        assert_eq!(o.linger_ms, 5000);
        assert!(parse(args(&["watch", "--port"])).is_err());
        assert!(parse(args(&["watch", "--port", "notaport"])).is_err());
        assert!(parse(args(&["watch", "--iterations", "-1"])).is_err());
        assert!(parse(args(&["watch", "--linger"])).is_err());
    }

    #[test]
    fn large_flag_parses() {
        let o = parse(args(&["bench", "--large"])).unwrap();
        assert!(o.large);
        assert!(!o.sim);
    }

    #[test]
    fn sim_flag_parses() {
        let o = parse(args(&["bench", "--sim"])).unwrap();
        assert!(o.sim);
        assert!(!o.large);
    }

    #[test]
    fn analytic_flag_parses() {
        let o = parse(args(&["fig4", "--simulate", "--analytic"])).unwrap();
        assert!(o.simulate);
        assert!(o.analytic);
    }

    #[test]
    fn out_dir_is_an_alias_for_out() {
        let o = parse(args(&["trace", "--out-dir", "/tmp/y"])).unwrap();
        assert_eq!(o.out, PathBuf::from("/tmp/y"));
        assert!(parse(args(&["trace", "--out-dir"])).is_err());
    }

    #[test]
    fn analyze_takes_a_positional_log_path() {
        let o = parse(args(&["analyze", "results/trace_table1.jsonl"])).unwrap();
        assert_eq!(o.command, "analyze");
        assert_eq!(o.input, Some(PathBuf::from("results/trace_table1.jsonl")));
        // A second positional argument is still an error outside `diff`.
        assert!(parse(args(&["analyze", "a.jsonl", "b.jsonl"])).is_err());
        // And the path is optional.
        assert_eq!(parse(args(&["analyze"])).unwrap().input, None);
    }

    #[test]
    fn diff_takes_two_positional_paths() {
        let o = parse(args(&["diff", "runs/a", "runs/b"])).unwrap();
        assert_eq!(o.command, "diff");
        assert_eq!(o.input, Some(PathBuf::from("runs/a")));
        assert_eq!(o.input2, Some(PathBuf::from("runs/b")));
        // A third positional is an error even for diff.
        assert!(parse(args(&["diff", "a", "b", "c"])).is_err());
    }

    #[test]
    fn all_flags_parse() {
        let o = parse(args(&[
            "fig5",
            "--simulate",
            "--jobs",
            "5000",
            "--replications",
            "2",
            "--out",
            "/tmp/x",
            "--verbose",
        ]))
        .unwrap();
        assert!(o.simulate);
        assert!(o.verbose);
        assert_eq!(o.jobs, 5000);
        assert_eq!(o.replications, 2);
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn missing_command_and_bad_flags_error() {
        assert!(parse(args(&[])).is_err());
        assert!(parse(args(&["fig2", "--jobs"])).is_err());
        assert!(parse(args(&["fig2", "--jobs", "abc"])).is_err());
        assert!(parse(args(&["fig2", "--frobnicate"])).is_err());
        assert!(parse(args(&["fig2", "--out"])).is_err());
    }

    #[test]
    fn umbrellas_expand() {
        assert_eq!(expand_command("all").len(), 6);
        let ext = expand_command("ext");
        assert_eq!(ext.len(), 12);
        assert!(ext.iter().all(|c| c.starts_with("ext-")));
        assert_eq!(expand_command("fig3"), vec!["fig3"]);
    }

    #[test]
    fn usage_names_every_command() {
        let u = usage();
        for c in expand_command("all")
            .iter()
            .chain(expand_command("ext").iter())
            .chain(["bench", "trace", "analyze", "diff", "watch"].iter())
        {
            assert!(u.contains(c), "usage missing {c}");
        }
    }
}
