//! Beyond the paper: extension experiments grounded in the paper's own
//! future-work section and related-work citations.
//!
//! * [`service_robustness`] — the paper's M/M/1 assumption relaxed: the
//!   schemes' profiles re-simulated under deterministic, Erlang,
//!   exponential and hyperexponential service (M/G/1), with
//!   Pollaczek–Khinchine predictions alongside.
//! * [`stackelberg_sweep`] — the Roughgarden-style leader the paper cites:
//!   how much centrally controlled traffic it takes to match what NASH
//!   achieves with none.
//! * [`warm_start_dynamics`] — the paper's "dynamic load balancing"
//!   future work: re-equilibration cost under demand drift, warm vs cold
//!   restarts.
//! * [`observation_noise`] — the paper's "uncertainty" future work: how
//!   equilibrium quality degrades when users estimate available rates
//!   from noisy run-queue observations.
//! * [`multicore_pooling`] — computers as M/M/c pools (numeric best
//!   replies, validated by multi-server simulation).
//! * [`poa_vs_utilization`] — the Koutsoupias–Papadimitriou efficiency
//!   ratio over the load range.
//! * [`arrival_burstiness`] — the Poisson arrival assumption relaxed to
//!   general renewal streams.
//! * [`dynamic_policies`] — static equilibria vs state-aware dispatch
//!   (JSQ, power-of-d, shortest expected delay).
//! * [`server_churn`] — the fault-tolerance extension: a mid-run server
//!   crash makes demand infeasible, load is shed per an overload policy,
//!   and the DES-measured response times are checked against the
//!   quasi-static analytic mixture.

use crate::config::{EPSILON, MEDIUM_LOAD};
use crate::report::{fmt, Table};
use lb_distributed::async_runtime::AsyncNash;
use lb_distributed::net::NetFaultPlan;
use lb_distributed::runtime::DistributedNash;
use lb_distributed::ObservationModel;
use lb_game::dynamics::{DynamicBalancer, Restart};
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::error::GameError;
use lb_game::metrics::evaluate_profile;
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use lb_game::response::overall_response_time;
use lb_game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, NashScheme,
    ProportionalScheme, StackelbergScheme,
};
use lb_game::Certificate;
use lb_game::StoppingRule;
use lb_sim::harness::simulate_profile;
use lb_sim::scenario::{DistributionFamily, SimulationConfig};
use lb_stats::ReplicationPlan;

/// One (scheme × service-family) cell of the robustness experiment.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Service family label.
    pub service: &'static str,
    /// Squared coefficient of variation of the family.
    pub scv: f64,
    /// Simulated system mean response time.
    pub simulated: f64,
    /// M/G/1 (P-K) prediction under the scheme's flows.
    pub predicted: f64,
}

/// Simulates every scheme's (M/M/1-computed) profile under four service
/// families and compares with the M/G/1 prediction.
///
/// # Errors
///
/// Propagates scheme/simulation failures.
pub fn service_robustness(
    target_jobs: u64,
    replications: u32,
) -> Result<Vec<RobustnessRow>, GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let schemes: Vec<Box<dyn LoadBalancingScheme>> = vec![
        Box::new(NashScheme::default()),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ];
    let families: [(&'static str, DistributionFamily); 4] = [
        ("deterministic", DistributionFamily::Deterministic),
        ("erlang-4", DistributionFamily::Erlang { k: 4 }),
        ("exponential", DistributionFamily::Exponential),
        (
            "hyperexp-4",
            DistributionFamily::HyperExponential { scv: 4.0 },
        ),
    ];
    let plan = ReplicationPlan {
        replications,
        ..ReplicationPlan::paper()
    };
    let mut rows = Vec::new();
    for scheme in &schemes {
        let profile = scheme.compute(&model)?;
        let flows = profile.computer_flows(&model)?;
        for (label, service) in families {
            let cfg = SimulationConfig {
                target_jobs,
                service,
                ..SimulationConfig::paper()
            };
            let sim = simulate_profile(&model, &profile, &plan, cfg)?;
            // Job-averaged M/G/1 prediction over the scheme's flows.
            let phi = model.total_arrival_rate();
            let predicted = flows
                .iter()
                .zip(model.computer_rates())
                .filter(|(&l, _)| l > 0.0)
                .map(|(&l, &mu)| l * lb_queueing::mg1::response_time(l, mu, service.scv()))
                .sum::<f64>()
                / phi;
            rows.push(RobustnessRow {
                scheme: scheme.name(),
                service: label,
                scv: service.scv(),
                simulated: sim.system_summary.mean,
                predicted,
            });
        }
    }
    Ok(rows)
}

/// Renders the robustness table.
pub fn render_robustness(rows: &[RobustnessRow]) -> Table {
    let mut t = Table::new(
        "Extension 1: service-time robustness at rho=60% (M/G/1)",
        vec!["scheme", "service", "SCV", "simulated D", "P-K predicted"],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            r.service.to_string(),
            fmt(r.scv),
            fmt(r.simulated),
            fmt(r.predicted),
        ]);
    }
    t
}

/// One α point of the Stackelberg sweep.
#[derive(Debug, Clone, Copy)]
pub struct StackelbergPoint {
    /// Leader fraction.
    pub alpha: f64,
    /// Overall response time of LLF + Wardrop followers.
    pub overall_time: f64,
}

/// Sweeps the leader fraction and reports the overall response time, with
/// NASH's and GOS's values for context.
///
/// # Errors
///
/// Propagates scheme failures.
pub fn stackelberg_sweep() -> Result<(Vec<StackelbergPoint>, f64, f64), GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let mut points = Vec::new();
    for i in 0..=10 {
        let alpha = f64::from(i) / 10.0;
        let p = StackelbergScheme::new(alpha)?.compute(&model)?;
        points.push(StackelbergPoint {
            alpha,
            overall_time: overall_response_time(&model, &p)?,
        });
    }
    let nash = overall_response_time(&model, &NashScheme::default().compute(&model)?)?;
    let gos = overall_response_time(&model, &GlobalOptimalScheme::default().compute(&model)?)?;
    Ok((points, nash, gos))
}

/// Renders the Stackelberg sweep.
pub fn render_stackelberg(points: &[StackelbergPoint], nash: f64, gos: f64) -> Table {
    let mut t = Table::new(
        "Extension 2: Stackelberg (LLF) leader fraction vs overall response time (rho=60%)",
        vec!["alpha", "Stackelberg D", "vs GOS", "vs NASH"],
    );
    for p in points {
        t.row(vec![
            format!("{:.1}", p.alpha),
            fmt(p.overall_time),
            format!("{:+.1}%", (p.overall_time / gos - 1.0) * 100.0),
            format!("{:+.1}%", (p.overall_time / nash - 1.0) * 100.0),
        ]);
    }
    t
}

/// One drift step of the warm-start experiment.
#[derive(Debug, Clone, Copy)]
pub struct DriftStep {
    /// Utilization after the drift.
    pub rho: f64,
    /// Iterations with a warm (previous-equilibrium) start.
    pub warm_iterations: u32,
    /// Iterations with a cold (proportional) start.
    pub cold_iterations: u32,
}

/// Drifts the Table-1 system's demand through a utilization path and
/// measures re-equilibration cost for warm vs cold restarts.
///
/// # Errors
///
/// Propagates model/solver failures.
pub fn warm_start_dynamics() -> Result<Vec<DriftStep>, GameError> {
    let path = [0.62, 0.65, 0.60, 0.55, 0.65, 0.70, 0.68];
    // Iteration counts are the payload: pin the paper's absolute-norm
    // criterion so the committed CSV stays byte-identical.
    let mut warm = DynamicBalancer::with_stopping(
        SystemModel::table1_system(MEDIUM_LOAD)?,
        EPSILON,
        StoppingRule::AbsoluteNorm,
    )?;
    let mut cold = DynamicBalancer::with_stopping(
        SystemModel::table1_system(MEDIUM_LOAD)?,
        EPSILON,
        StoppingRule::AbsoluteNorm,
    )?;
    let mut steps = Vec::new();
    for &rho in &path {
        let model = SystemModel::table1_system(rho)?;
        let w = warm.update(model.clone(), Restart::Warm)?;
        let c = cold.update(model, Restart::Cold)?;
        steps.push(DriftStep {
            rho,
            warm_iterations: w.iterations,
            cold_iterations: c.iterations,
        });
    }
    Ok(steps)
}

/// Renders the warm-start experiment.
pub fn render_dynamics(steps: &[DriftStep]) -> Table {
    let mut t = Table::new(
        "Extension 3: re-equilibration under demand drift (warm vs cold restart)",
        vec!["new util %", "warm iterations", "cold iterations"],
    );
    for s in steps {
        t.row(vec![
            format!("{:.0}", s.rho * 100.0),
            s.warm_iterations.to_string(),
            s.cold_iterations.to_string(),
        ]);
    }
    t
}

/// One iteration budget of the accuracy-vs-iterations frontier.
#[derive(Debug, Clone, Copy)]
pub struct AnytimePoint {
    /// Iteration budget granted to the solver.
    pub budget: u32,
    /// The paper's absolute norm after the last sweep.
    pub norm: f64,
    /// Certified absolute regret bound `max_j r_j`.
    pub cert_abs: f64,
    /// Certified relative regret bound `max_j r_j / D_j`.
    pub cert_rel: f64,
    /// Exact ε-Nash gap of the returned profile (best-reply re-solve).
    pub exact_gap: f64,
}

/// The anytime frontier of the certified solver on the Table-1 system at
/// medium load: truncate NASH_0 after each budget and record what the
/// certificate *claims* next to what the profile exactly *achieves*. The
/// certificate must dominate the exact gap at every budget — that is the
/// soundness property the stopping layer rests on — while tracking it
/// closely enough to be useful as a live progress meter.
///
/// # Errors
///
/// Propagates model/solver failures.
pub fn anytime_frontier() -> Result<Vec<AnytimePoint>, GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let budgets = [1u32, 2, 4, 8, 12, 16, 24, 32, 48, 64];
    let mut points = Vec::new();
    for &budget in &budgets {
        // ε = 0 can never be certified, so the solver runs its full
        // budget and `solve_partial` hands back the truncated state.
        let out = NashSolver::new(Initialization::Zero)
            .stopping_rule(StoppingRule::CertifiedGap { epsilon: 0.0 })
            .max_iterations(budget)
            .solve_partial(&model)?;
        let cert = out.certified_gap().unwrap_or_else(Certificate::zero);
        points.push(AnytimePoint {
            budget,
            norm: out.trace().values().last().copied().unwrap_or(f64::NAN),
            cert_abs: cert.absolute,
            cert_rel: cert.relative,
            exact_gap: epsilon_nash_gap(&model, out.profile())?,
        });
    }
    Ok(points)
}

/// Renders the anytime frontier.
pub fn render_anytime(points: &[AnytimePoint]) -> Table {
    let mut t = Table::new(
        "Extension 11: certified accuracy vs iteration budget (NASH_0, Table 1 at 60%)",
        vec![
            "iterations",
            "abs norm",
            "certified bound",
            "certified rel",
            "exact gap",
        ],
    );
    for p in points {
        t.row(vec![
            p.budget.to_string(),
            fmt(p.norm),
            fmt(p.cert_abs),
            fmt(p.cert_rel),
            fmt(p.exact_gap),
        ]);
    }
    t
}

/// One noise level of the observation-uncertainty experiment.
#[derive(Debug, Clone, Copy)]
pub struct NoisePoint {
    /// Relative standard deviation of the rate estimates.
    pub rel_std: f64,
    /// Rounds the ring needed (or its budget if it never settled).
    pub rounds: u32,
    /// ε-Nash gap of the final profile, relative to the mean user time.
    pub relative_gap: f64,
}

/// Runs the distributed ring under increasing observation noise.
///
/// # Errors
///
/// Propagates runtime failures.
pub fn observation_noise() -> Result<Vec<NoisePoint>, GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let mut points = Vec::new();
    for &rel_std in &[0.0, 0.01, 0.02, 0.05, 0.10] {
        // Noise keeps the true regret above any tight ε forever, so the
        // certified rule would never accept; this experiment measures
        // the paper's norm-settling behaviour — pin its criterion.
        let runner = DistributedNash::new()
            .stopping_rule(StoppingRule::AbsoluteNorm)
            .observation(if rel_std == 0.0 {
                ObservationModel::Exact
            } else {
                ObservationModel::Noisy {
                    rel_std,
                    seed: 0x0b5e,
                }
            })
            .tolerance(if rel_std == 0.0 { EPSILON } else { 5e-3 })
            .max_rounds(300);
        let (rounds, profile) = match runner.run(&model) {
            Ok(out) => (out.rounds(), out.profile().clone()),
            // Noise can keep the norm above tolerance forever; treat the
            // budget-exhausted state as "did not settle" but still probe
            // the quality via a fresh capped run.
            Err(GameError::DidNotConverge { iterations, .. }) => {
                let out = DistributedNash::new()
                    .stopping_rule(StoppingRule::AbsoluteNorm)
                    .observation(ObservationModel::Noisy {
                        rel_std,
                        seed: 0x0b5e,
                    })
                    .tolerance(f64::INFINITY)
                    .max_rounds(iterations.max(1))
                    .run(&model)?;
                (iterations, out.profile().clone())
            }
            Err(e) => return Err(e),
        };
        let gap = epsilon_nash_gap(&model, &profile)?;
        let metrics = evaluate_profile(&model, &profile)?;
        let mean_d: f64 = metrics.user_times.iter().sum::<f64>() / metrics.user_times.len() as f64;
        points.push(NoisePoint {
            rel_std,
            rounds,
            relative_gap: gap / mean_d,
        });
    }
    Ok(points)
}

/// Renders the observation-noise experiment.
pub fn render_noise(points: &[NoisePoint]) -> Table {
    let mut t = Table::new(
        "Extension 4: equilibrium quality under noisy run-queue observation",
        vec!["rel. std dev", "rounds", "Nash gap / mean D"],
    );
    for p in points {
        t.row(vec![
            format!("{:.0}%", p.rel_std * 100.0),
            p.rounds.to_string(),
            fmt(p.relative_gap),
        ]);
    }
    t
}

/// One point of the price-of-anarchy sweep.
#[derive(Debug, Clone, Copy)]
pub struct PoaPoint {
    /// Swept parameter value (utilization or skewness).
    pub x: f64,
    /// `D(NASH)/D(GOS)` — the price of anarchy of the instance.
    pub poa_nash: f64,
    /// `D(IOS)/D(GOS)` — the Wardrop (infinite-player) anarchy cost.
    pub poa_wardrop: f64,
}

/// Price of anarchy vs utilization (Table-1 system) — quantifying the
/// Koutsoupias–Papadimitriou efficiency question the paper's related
/// work raises. Roughgarden–Tardos's 4/3 bound applies to *linear*
/// latencies only; M/M/1 latencies are unbounded near saturation, yet
/// the measured PoA stays small and, notably, *decreases* at high load.
///
/// # Errors
///
/// Propagates scheme failures.
pub fn poa_vs_utilization() -> Result<Vec<PoaPoint>, GameError> {
    crate::config::UTILIZATION_SWEEP
        .iter()
        .map(|&rho| {
            let model = SystemModel::table1_system(rho)?;
            let nash = NashScheme::default().compute(&model)?;
            let gos = GlobalOptimalScheme::default().compute(&model)?;
            let ios = IndividualOptimalScheme.compute(&model)?;
            let d_gos = overall_response_time(&model, &gos)?;
            Ok(PoaPoint {
                x: rho,
                poa_nash: overall_response_time(&model, &nash)? / d_gos,
                poa_wardrop: overall_response_time(&model, &ios)? / d_gos,
            })
        })
        .collect()
}

/// Renders the PoA sweep.
pub fn render_poa(points: &[PoaPoint]) -> Table {
    let mut t = Table::new(
        "Extension 6: price of anarchy vs utilization (Table-1 system)",
        vec!["util %", "PoA(NASH)", "PoA(Wardrop/IOS)"],
    );
    for p in points {
        t.row(vec![
            format!("{:.0}", p.x * 100.0),
            fmt(p.poa_nash),
            fmt(p.poa_wardrop),
        ]);
    }
    t
}

/// One (scheme × arrival-family) cell of the burstiness experiment.
#[derive(Debug, Clone)]
pub struct BurstinessRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Arrival family label.
    pub arrivals: &'static str,
    /// Squared coefficient of variation of interarrival times.
    pub scv: f64,
    /// Simulated system mean response time.
    pub simulated: f64,
}

/// Simulates every scheme's profile under renewal arrival processes of
/// varying burstiness (the Poisson assumption of §2 relaxed). Unlike the
/// service extension there is no exact multi-queue theory here — the
/// probabilistic split of a non-Poisson renewal stream is not renewal —
/// so the experiment reports measured values only (single-queue GI/M/1
/// validation lives in `lb-sim`'s tests).
///
/// # Errors
///
/// Propagates scheme/simulation failures.
pub fn arrival_burstiness(
    target_jobs: u64,
    replications: u32,
) -> Result<Vec<BurstinessRow>, GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let schemes: Vec<Box<dyn LoadBalancingScheme>> = vec![
        Box::new(NashScheme::default()),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ];
    let families: [(&'static str, DistributionFamily); 4] = [
        ("deterministic", DistributionFamily::Deterministic),
        ("erlang-4", DistributionFamily::Erlang { k: 4 }),
        ("poisson", DistributionFamily::Exponential),
        (
            "hyperexp-4",
            DistributionFamily::HyperExponential { scv: 4.0 },
        ),
    ];
    let plan = ReplicationPlan {
        replications,
        ..ReplicationPlan::paper()
    };
    let mut rows = Vec::new();
    for scheme in &schemes {
        let profile = scheme.compute(&model)?;
        for (label, arrivals) in families {
            let cfg = SimulationConfig {
                target_jobs,
                arrivals,
                ..SimulationConfig::paper()
            };
            let sim = simulate_profile(&model, &profile, &plan, cfg)?;
            rows.push(BurstinessRow {
                scheme: scheme.name(),
                arrivals: label,
                scv: arrivals.scv(),
                simulated: sim.system_summary.mean,
            });
        }
    }
    Ok(rows)
}

/// Renders the burstiness table.
pub fn render_burstiness(rows: &[BurstinessRow]) -> Table {
    let mut t = Table::new(
        "Extension 7: arrival burstiness at rho=60% (renewal job streams)",
        vec!["scheme", "arrivals", "SCV", "simulated D"],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            r.arrivals.to_string(),
            fmt(r.scv),
            fmt(r.simulated),
        ]);
    }
    t
}

/// One (policy × load) cell of the dynamic-dispatch experiment.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: &'static str,
    /// System utilization.
    pub rho: f64,
    /// Simulated system mean response time.
    pub simulated: f64,
}

/// Compares the paper's static Nash profile against dynamic (state-aware)
/// dispatch policies across loads — how much is online queue information
/// worth?
///
/// # Errors
///
/// Propagates game/simulation failures.
pub fn dynamic_policies(target_jobs: u64) -> Result<Vec<PolicyRow>, GameError> {
    use lb_sim::policies::{run_policy_replication, DispatchPolicy};
    let mut rows = Vec::new();
    for &rho in &[0.3, 0.6, 0.9] {
        let model = SystemModel::table1_system(rho)?;
        let nash = NashScheme::default().compute(&model)?;
        let policies = vec![
            DispatchPolicy::Static(nash.clone()),
            DispatchPolicy::WeightedRoundRobin(nash),
            DispatchPolicy::PowerOfD(2),
            DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::ShortestExpectedDelay,
        ];
        for policy in policies {
            let cfg = SimulationConfig {
                target_jobs,
                ..SimulationConfig::paper()
            };
            let r = run_policy_replication(&model, &policy, cfg, 0x9019)?;
            rows.push(PolicyRow {
                policy: policy.name(),
                rho,
                simulated: r.system_mean,
            });
        }
    }
    Ok(rows)
}

/// Renders the dynamic-policy comparison (loads as columns).
pub fn render_policies(rows: &[PolicyRow]) -> Table {
    let mut t = Table::new(
        "Extension 8: static Nash vs dynamic dispatch (simulated D, sec)",
        vec!["policy", "rho=30%", "rho=60%", "rho=90%"],
    );
    for policy in ["STATIC", "WRR", "POW-D", "JSQ", "SED"] {
        let cell = |rho: f64| {
            rows.iter()
                .find(|r| r.policy == policy && (r.rho - rho).abs() < 1e-9)
                .map(|r| fmt(r.simulated))
                .unwrap_or_default()
        };
        t.row(vec![policy.to_string(), cell(0.3), cell(0.6), cell(0.9)]);
    }
    t
}

/// One scheme row of the tail-latency experiment.
#[derive(Debug, Clone)]
pub struct TailRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Analytic mean response time.
    pub mean: f64,
    /// Analytic squared coefficient of variation of a job's response time
    /// (rate-weighted across users; exact for the exponential-mixture
    /// sojourn distribution).
    pub scv: f64,
    /// Simulated p95 response time (P² streaming estimate).
    pub simulated_p95: f64,
}

/// Tail latency across the schemes at ρ = 60%: the game optimizes *mean*
/// response times, but users feel the tail. Analytic variance comes from
/// the exponential-mixture identity (`lb-game::response`); the p95 from
/// the simulator's streaming quantile estimator.
///
/// # Errors
///
/// Propagates scheme/simulation failures.
pub fn tail_latency(target_jobs: u64, replications: u32) -> Result<Vec<TailRow>, GameError> {
    use lb_game::response::{user_response_time, user_response_variance};
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let schemes: Vec<Box<dyn LoadBalancingScheme>> = vec![
        Box::new(NashScheme::default()),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ];
    let plan = ReplicationPlan {
        replications,
        ..ReplicationPlan::paper()
    };
    let mut rows = Vec::new();
    for scheme in &schemes {
        let profile = scheme.compute(&model)?;
        // A random job belongs to user j w.p. phi_j / Phi; its response
        // time is user j's mixture. Combine first and second moments.
        let phi = model.total_arrival_rate();
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for j in 0..model.num_users() {
            let w = model.user_rate(j) / phi;
            let mean_j = user_response_time(&model, &profile, j)?;
            let var_j = user_response_variance(&model, &profile, j)?;
            m1 += w * mean_j;
            m2 += w * (var_j + mean_j * mean_j);
        }
        let scv = m2 / (m1 * m1) - 1.0;
        let cfg = SimulationConfig {
            target_jobs,
            ..SimulationConfig::paper()
        };
        let sim = simulate_profile(&model, &profile, &plan, cfg)?;
        rows.push(TailRow {
            scheme: scheme.name(),
            mean: m1,
            scv,
            simulated_p95: sim.system_p95,
        });
    }
    Ok(rows)
}

/// Renders the tail-latency table.
pub fn render_tails(rows: &[TailRow]) -> Table {
    let mut t = Table::new(
        "Extension 9: tail latency at rho=60% (mean vs p95)",
        vec![
            "scheme",
            "mean D",
            "SCV (analytic)",
            "p95 (sim)",
            "p95/mean",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            fmt(r.mean),
            fmt(r.scv),
            fmt(r.simulated_p95),
            format!("{:.2}", r.simulated_p95 / r.mean),
        ]);
    }
    t
}

/// One architecture row of the multicore-pooling experiment.
#[derive(Debug, Clone)]
pub struct PoolingRow {
    /// Architecture label.
    pub architecture: &'static str,
    /// Nash-equilibrium overall response time (analytic/numeric).
    pub nash_time: f64,
    /// Social optimum overall response time.
    pub optimal_time: f64,
    /// Simulated Nash response time (DES with multi-server stations).
    pub simulated_nash: f64,
}

/// Compares the paper's 16 single-core computers against the same
/// capacity consolidated into 4 multicore pools (one per speed class),
/// under Nash routing — the resource-pooling question the paper's model
/// cannot ask but modern hardware does.
///
/// # Errors
///
/// Propagates game/simulation failures.
pub fn multicore_pooling(target_jobs: u64) -> Result<Vec<PoolingRow>, GameError> {
    use lb_game::multicore::PoolSystem;
    use lb_sim::pools::run_pool_replication;

    let user_rates: Vec<f64> = {
        let model = SystemModel::table1_system(MEDIUM_LOAD)?;
        model.user_rates().to_vec()
    };
    // (a) The paper's architecture: 16 independent single-core computers.
    let separate = PoolSystem::new(
        SystemModel::table1_rates()
            .iter()
            .map(|&mu| (mu, 1))
            .collect(),
        user_rates.clone(),
    )?;
    // (b) Same capacity, consolidated: one pool per speed class.
    let pooled = PoolSystem::new(
        vec![(10.0, 6), (20.0, 5), (50.0, 3), (100.0, 2)],
        user_rates,
    )?;

    let mut rows = Vec::new();
    for (label, sys) in [
        ("16x single-core (paper)", &separate),
        ("4 pools (multicore)", &pooled),
    ] {
        let nash = sys.nash(1e-5, 500, 1200)?;
        let nash_time = sys.overall_time(&nash.flows);
        let opt = sys.social_optimum(8000)?;
        let optimal_time = {
            let phi = sys.total_arrival_rate();
            opt.iter()
                .zip(sys.pools())
                .filter(|(&t, _)| t > 0.0)
                .map(|(&t, p)| t * lb_game::latency::Latency::response_time(p, t))
                .sum::<f64>()
                / phi
        };
        let sim = run_pool_replication(sys, &nash.flows, target_jobs, 0.1, 0xcafe)?;
        rows.push(PoolingRow {
            architecture: label,
            nash_time,
            optimal_time,
            simulated_nash: sim.system_mean,
        });
    }
    Ok(rows)
}

/// Renders the pooling comparison.
pub fn render_pooling(rows: &[PoolingRow]) -> Table {
    let mut t = Table::new(
        "Extension 5: multicore pooling at rho=60% (same 510 jobs/s capacity)",
        vec!["architecture", "NASH D", "optimal D", "NASH D (sim)"],
    );
    for r in rows {
        t.row(vec![
            r.architecture.to_string(),
            fmt(r.nash_time),
            fmt(r.optimal_time),
            fmt(r.simulated_nash),
        ]);
    }
    t
}

/// One (policy × seed-averaged) row of the server-churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Overload-policy label.
    pub policy: &'static str,
    /// Quasi-static analytic prediction of the mean response time.
    pub predicted: f64,
    /// Seed-averaged measured mean response time of served jobs.
    pub measured: f64,
    /// Predicted shed fraction from the per-phase admission decisions.
    pub predicted_shed: f64,
    /// Seed-averaged measured shed fraction.
    pub measured_shed: f64,
    /// Total jobs lost to exhausted retries across the seeds.
    pub lost: u64,
    /// Total retry submissions across the seeds.
    pub retries: u64,
}

/// Server-fault tolerance: a mid-run crash makes the demand infeasible,
/// the dispatcher sheds load per each overload policy, the server comes
/// back and the shed demand is re-admitted. Measured (DES) response
/// times and shed fractions are reported against the quasi-static
/// analytic mixture for the proportional and max-min shedding policies.
///
/// # Errors
///
/// Propagates model/simulation failures.
pub fn server_churn(replications: u32) -> Result<Vec<ChurnRow>, GameError> {
    use lb_game::overload::OverloadPolicy;
    use lb_sim::churn::{run_churn_replication, ChurnPhase, RetryBackoff};

    let model = SystemModel::new(vec![10.0, 20.0, 30.0], vec![16.0, 12.0])?;
    let phases = vec![
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 0.0],
        },
        ChurnPhase {
            duration: 400.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
    ];
    let backoff = RetryBackoff::new(0.05, 2.0, 1.0, 5);
    let policies: [(&'static str, OverloadPolicy); 2] = [
        (
            "shed-proportional (h=0.8)",
            OverloadPolicy::ShedProportional { headroom: 0.8 },
        ),
        (
            "shed-max-min (h=0.8)",
            OverloadPolicy::ShedMaxMin { headroom: 0.8 },
        ),
    ];
    let reps = replications.max(1);
    let runner = lb_sim::parallel::ParallelRunner::from_env();
    let mut rows = Vec::new();
    for (label, policy) in policies {
        // Churn replications are pure functions of their seed; fan them
        // out and fold in replication order (byte-identical to the old
        // sequential loop).
        let results = runner.try_run(reps as usize, |seed| {
            run_churn_replication(&model, &phases, policy, backoff, 100.0, 4000 + seed as u64)
        })?;
        let mut measured = 0.0;
        let mut measured_shed = 0.0;
        let mut predicted = 0.0;
        let mut predicted_shed = 0.0;
        let mut lost = 0;
        let mut retries = 0;
        for r in results {
            measured += r.measured_mean;
            measured_shed += r.shed_fraction;
            predicted = r.predicted_mean;
            predicted_shed = r.predicted_shed_fraction;
            lost += r.lost;
            retries += r.retries;
        }
        rows.push(ChurnRow {
            policy: label,
            predicted,
            measured: measured / f64::from(reps),
            predicted_shed,
            measured_shed: measured_shed / f64::from(reps),
            lost,
            retries,
        });
    }
    Ok(rows)
}

/// Renders the server-churn table.
pub fn render_churn(rows: &[ChurnRow]) -> Table {
    let mut t = Table::new(
        "Extension 10: server churn (crash -> shed -> recover) vs quasi-static prediction",
        vec![
            "policy",
            "D (pred)",
            "D (sim)",
            "shed% (pred)",
            "shed% (sim)",
            "lost",
            "retries",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.to_string(),
            fmt(r.predicted),
            fmt(r.measured),
            format!("{:.2}", 100.0 * r.predicted_shed),
            format!("{:.2}", 100.0 * r.measured_shed),
            r.lost.to_string(),
            r.retries.to_string(),
        ]);
    }
    t
}

/// One cell of the asynchronous chaos sweep: the bounded-staleness
/// runtime on the Table-1 system under a given message-loss rate and
/// staleness bound τ.
#[derive(Debug, Clone)]
pub struct AsyncChaosRow {
    /// Per-message drop probability on every link.
    pub loss: f64,
    /// Staleness bound τ, virtual µs.
    pub staleness_us: u64,
    /// Whether the run ended with a certified gap.
    pub converged: bool,
    /// Virtual time to termination, ms.
    pub virtual_ms: f64,
    /// Best-reply updates the users performed.
    pub updates: u64,
    /// Messages the network dropped.
    pub dropped: u64,
    /// The coordinator-certified relative gap (`NaN` for partial runs).
    pub certified_gap: f64,
    /// The exact Nash gap of the returned profile, recomputed offline.
    pub true_gap: f64,
}

/// Sweeps loss × staleness for the asynchronous runtime: every cell
/// must either certify ε or surface as an honest partial outcome, and
/// the offline-recomputed gap cross-checks every certificate.
///
/// # Errors
///
/// Propagates model-construction or profile-extraction failures.
pub fn async_chaos() -> Result<Vec<AsyncChaosRow>, GameError> {
    let model = SystemModel::table1_system(MEDIUM_LOAD)?;
    let mut rows = Vec::new();
    for &loss in &[0.0, 0.1, 0.3] {
        for &staleness_us in &[5_000u64, 20_000, 80_000] {
            let plan = NetFaultPlan::new()
                .loss(loss)
                .duplication(0.05)
                .reordering(0.25)
                .delay_us(50, 2_000);
            let out = AsyncNash::new()
                .seed(0xA5)
                .fault_plan(plan)
                .staleness_us(staleness_us)
                .epsilon(EPSILON)
                .max_virtual_us(20_000_000)
                .run(&model)?;
            let true_gap = epsilon_nash_gap(&model, &out.profile()?)?;
            rows.push(AsyncChaosRow {
                loss,
                staleness_us,
                converged: out.converged(),
                virtual_ms: out.virtual_time_us() as f64 / 1_000.0,
                updates: out.updates(),
                dropped: out.net_stats().dropped,
                certified_gap: out.certified_gap().unwrap_or(f64::NAN),
                true_gap,
            });
        }
    }
    Ok(rows)
}

/// Renders the asynchronous chaos sweep.
pub fn render_async(rows: &[AsyncChaosRow]) -> Table {
    let mut t = Table::new(
        "Extension 12: asynchronous dynamics under network chaos (loss x staleness)",
        vec![
            "loss",
            "tau (ms)",
            "outcome",
            "virtual ms",
            "updates",
            "dropped",
            "certified gap",
            "true gap",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}%", 100.0 * r.loss),
            format!("{:.0}", r.staleness_us as f64 / 1_000.0),
            if r.converged { "certified" } else { "partial" }.to_string(),
            format!("{:.1}", r.virtual_ms),
            r.updates.to_string(),
            r.dropped.to_string(),
            fmt(r.certified_gap),
            fmt(r.true_gap),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anytime_frontier_is_sound_and_monotone_in_spirit() {
        let points = anytime_frontier().unwrap();
        assert_eq!(points.len(), 10);
        for p in &points {
            // Soundness: the certificate never understates the exact gap.
            assert!(
                p.cert_abs + 1e-9 * (1.0 + p.exact_gap) >= p.exact_gap,
                "budget {}: certificate {} < exact gap {}",
                p.budget,
                p.cert_abs,
                p.exact_gap
            );
            assert!(p.cert_rel >= 0.0 && p.cert_abs >= 0.0);
        }
        // The frontier must actually descend: the largest budget ends far
        // below the smallest (exact monotonicity is not guaranteed
        // sweep-to-sweep, the overall trend is).
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.cert_abs < first.cert_abs * 1e-2,
            "no progress: {} -> {}",
            first.cert_abs,
            last.cert_abs
        );
        assert!(last.exact_gap <= first.exact_gap);
    }

    #[test]
    fn robustness_order_survives_service_families() {
        // The paper's ranking NASH < IOS <= PS should hold under every
        // service family, not just M/M/1.
        let rows = service_robustness(40_000, 2).unwrap();
        for family in ["deterministic", "erlang-4", "exponential", "hyperexp-4"] {
            let get = |scheme: &str| {
                rows.iter()
                    .find(|r| r.scheme == scheme && r.service == family)
                    .unwrap()
                    .simulated
            };
            assert!(
                get("NASH") < get("PS"),
                "{family}: NASH {} !< PS {}",
                get("NASH"),
                get("PS")
            );
            assert!(
                get("GOS") < get("PS") * 1.001,
                "{family}: GOS should stay best-ish"
            );
        }
    }

    #[test]
    fn robustness_simulation_matches_pk_prediction() {
        let rows = service_robustness(40_000, 2).unwrap();
        for r in &rows {
            let rel = (r.simulated - r.predicted).abs() / r.predicted;
            // Heavier-tailed service converges slower (variance grows with
            // the SCV); widen the acceptance band accordingly.
            let tol = 0.10 + 0.05 * r.scv;
            assert!(
                rel < tol,
                "{} / {}: simulated {} vs P-K {} (rel {rel:.3}, tol {tol})",
                r.scheme,
                r.service,
                r.simulated,
                r.predicted
            );
        }
    }

    #[test]
    fn stackelberg_needs_most_of_the_traffic_to_match_nash() {
        let (points, nash, gos) = stackelberg_sweep().unwrap();
        assert_eq!(points.len(), 11);
        // alpha = 0 is Wardrop (worse than NASH at medium load)…
        assert!(points[0].overall_time > nash);
        // …alpha = 1 is the optimum (at or below NASH).
        assert!(points[10].overall_time <= nash + 1e-9);
        assert!((points[10].overall_time - gos).abs() < 1e-9);
        // The sweep is monotone non-increasing.
        for w in points.windows(2) {
            assert!(w[1].overall_time <= w[0].overall_time + 1e-9);
        }
    }

    #[test]
    fn warm_start_saves_iterations_on_every_drift_step() {
        let steps = warm_start_dynamics().unwrap();
        let warm: u32 = steps.iter().map(|s| s.warm_iterations).sum();
        let cold: u32 = steps.iter().map(|s| s.cold_iterations).sum();
        assert!(
            warm < cold,
            "warm restarts ({warm}) should beat cold restarts ({cold}) overall"
        );
        for s in &steps {
            assert!(
                s.warm_iterations <= s.cold_iterations,
                "at rho {}: warm {} > cold {}",
                s.rho,
                s.warm_iterations,
                s.cold_iterations
            );
        }
    }

    #[test]
    fn noise_degrades_gracefully() {
        let points = observation_noise().unwrap();
        assert!(points[0].relative_gap < 1e-2, "exact observation gap");
        // More noise, larger (but bounded) equilibrium gap.
        let last = points.last().unwrap();
        assert!(last.relative_gap < 0.5, "10% noise should still be usable");
    }

    #[test]
    fn poa_stays_bounded_and_nash_dominates_wardrop() {
        let points = poa_vs_utilization().unwrap();
        for p in &points {
            assert!(p.poa_nash >= 1.0 - 1e-9, "PoA below 1 at {}", p.x);
            assert!(
                p.poa_nash <= p.poa_wardrop + 1e-9,
                "finite-player Nash should beat Wardrop at {}",
                p.x
            );
            assert!(p.poa_nash < 1.2, "PoA {} too large at {}", p.poa_nash, p.x);
        }
        // The interesting shape: Wardrop anarchy cost peaks at medium-high
        // load (~70%) and shrinks toward both extremes (at low load all
        // schemes ride the fast machines; near saturation everything is
        // forced to use everything).
        let peak = points.iter().map(|p| p.poa_wardrop).fold(0.0, f64::max);
        assert!(peak > points[0].poa_wardrop + 0.05);
        assert!(peak > points.last().unwrap().poa_wardrop + 0.05);
    }

    #[test]
    fn burstiness_preserves_scheme_ordering() {
        let rows = arrival_burstiness(40_000, 2).unwrap();
        for family in ["deterministic", "erlang-4", "poisson", "hyperexp-4"] {
            let get = |scheme: &str| {
                rows.iter()
                    .find(|r| r.scheme == scheme && r.arrivals == family)
                    .unwrap()
                    .simulated
            };
            assert!(get("NASH") < get("PS"), "{family}: NASH !< PS");
        }
        // Burstier arrivals inflate every scheme's response time.
        let nash = |fam: &str| {
            rows.iter()
                .find(|r| r.scheme == "NASH" && r.arrivals == fam)
                .unwrap()
                .simulated
        };
        assert!(nash("deterministic") < nash("poisson"));
        assert!(nash("poisson") < nash("hyperexp-4"));
    }

    #[test]
    fn dynamic_information_beats_static_at_every_load() {
        let rows = dynamic_policies(50_000).unwrap();
        for &rho in &[0.3, 0.6, 0.9] {
            let get = |policy: &str| {
                rows.iter()
                    .find(|r| r.policy == policy && (r.rho - rho).abs() < 1e-9)
                    .unwrap()
                    .simulated
            };
            assert!(
                get("SED") < get("STATIC"),
                "rho {rho}: SED {} vs static {}",
                get("SED"),
                get("STATIC")
            );
            assert!(get("WRR") <= get("STATIC") * 1.05, "rho {rho}: WRR");
        }
    }

    #[test]
    fn tail_latency_is_consistent_with_the_mixture_moments() {
        let rows = tail_latency(50_000, 2).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // Mixtures of exponentials are hyperexponential-like: SCV >= 1.
            assert!(r.scv >= 1.0 - 1e-9, "{}: SCV {}", r.scheme, r.scv);
            // For an exponential, p95 = ln(20) * mean ~ 3.0x; mixtures can
            // stretch further but stay in a sane band.
            let ratio = r.simulated_p95 / r.mean;
            assert!(
                (2.0..6.0).contains(&ratio),
                "{}: p95/mean {ratio}",
                r.scheme
            );
        }
        // NASH keeps a lower p95 than PS, not just a lower mean.
        let p95 = |name: &str| {
            rows.iter()
                .find(|r| r.scheme == name)
                .unwrap()
                .simulated_p95
        };
        assert!(
            p95("NASH") < p95("PS"),
            "NASH {} vs PS {}",
            p95("NASH"),
            p95("PS")
        );
    }

    #[test]
    fn pooling_beats_separate_computers() {
        let rows = multicore_pooling(60_000).unwrap();
        assert_eq!(rows.len(), 2);
        let separate = &rows[0];
        let pooled = &rows[1];
        // Resource pooling: the consolidated architecture wins at
        // equilibrium, and its optimum is no worse either.
        assert!(
            pooled.nash_time < separate.nash_time,
            "pooled {} vs separate {}",
            pooled.nash_time,
            separate.nash_time
        );
        assert!(pooled.optimal_time <= separate.optimal_time + 1e-6);
        // Simulated values confirm the numeric equilibria.
        for r in &rows {
            let rel = (r.simulated_nash - r.nash_time).abs() / r.nash_time;
            assert!(
                rel < 0.08,
                "{}: sim {} vs {}",
                r.architecture,
                r.simulated_nash,
                r.nash_time
            );
        }
    }

    #[test]
    fn renders_have_expected_shapes() {
        let (points, nash, gos) = stackelberg_sweep().unwrap();
        assert_eq!(render_stackelberg(&points, nash, gos).len(), 11);
        let steps = warm_start_dynamics().unwrap();
        assert_eq!(render_dynamics(&steps).len(), steps.len());
    }
}
