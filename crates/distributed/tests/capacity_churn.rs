//! Capacity-churn tests for the token-ring runtime: computers crash,
//! degrade and recover mid-run, all reproduced deterministically via
//! `FaultPlan` capacity events.
//!
//! The acceptance scenario: a computer crash makes the nominal demand
//! infeasible mid-run. The run must terminate within the configured
//! `run_deadline` (no hang, no panic), shed load according to the
//! configured `OverloadPolicy`, and the survivors must converge to an
//! ε-Nash equilibrium of the residual-capacity game played with the
//! *admitted* rates.

use lb_distributed::fault::FaultPlan;
use lb_distributed::runtime::{DistributedNash, DistributedOutcome};
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::overload::OverloadPolicy;
use lb_game::strategy::{Strategy, StrategyProfile};
use std::time::{Duration, Instant};

/// Three computers, two users. Σφ = 38 against Σμ = 65: comfortably
/// feasible nominally, infeasible once the big computer (30 jobs/s) is
/// gone (38 > 35 − 15 = 35... crash of computer 0 leaves 35; crashing
/// computers 0 *and* 2 leaves 20).
fn model() -> SystemModel {
    SystemModel::new(vec![30.0, 20.0, 15.0], vec![20.0, 18.0]).unwrap()
}

/// The residual-capacity game the survivors should equilibrate: the
/// still-alive computers at their current rates, the users at their
/// *admitted* rates. The crashed computers' (all-zero) profile columns
/// are stripped to match.
fn residual_game(out: &DistributedOutcome, dead: &[usize]) -> (SystemModel, StrategyProfile) {
    let rates: Vec<f64> = out
        .final_capacity()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dead.contains(i))
        .map(|(_, &mu)| mu)
        .collect();
    let admitted: Vec<f64> = out
        .survivors()
        .iter()
        .map(|&j| out.admitted_rates()[j])
        .collect();
    let reduced = SystemModel::new(rates, admitted).unwrap();
    let rows: Vec<Strategy> = out
        .profile()
        .strategies()
        .iter()
        .map(|s| {
            let kept: Vec<f64> = s
                .fractions()
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead.contains(i))
                .map(|(_, &x)| x)
                .collect();
            Strategy::new(kept).unwrap()
        })
        .collect();
    (reduced, StrategyProfile::new(rows).unwrap())
}

#[test]
fn infeasible_crash_sheds_proportionally_and_reconverges() {
    let full = model();
    let deadline = Duration::from_secs(20);
    let started = Instant::now();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(1, 0))
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .run_deadline(deadline)
        .run(&full)
        .unwrap();
    assert!(started.elapsed() < deadline, "took {:?}", started.elapsed());
    assert!(out.converged());
    assert!(out.failed_users().is_empty());
    assert_eq!(out.degraded_computers(), &[0]);
    assert_eq!(out.final_capacity(), &[0.0, 20.0, 15.0]);

    // Nominal demand 38 against residual capacity 35: the policy admits
    // 0.9 · 35 = 31.5, scaling both users by 31.5/38.
    let scale = 31.5 / 38.0;
    let admitted = out.admitted_rates();
    assert!((admitted[0] - 20.0 * scale).abs() < 1e-9, "{admitted:?}");
    assert!((admitted[1] - 18.0 * scale).abs() < 1e-9, "{admitted:?}");
    let shed = out.shed_rates();
    assert!((shed[0] - 20.0 * (1.0 - scale)).abs() < 1e-9, "{shed:?}");
    assert!((shed[1] - 18.0 * (1.0 - scale)).abs() < 1e-9, "{shed:?}");

    // One admission decision, logged with the post-crash capacity.
    assert_eq!(out.shed_trajectory().len(), 1);
    let rec = &out.shed_trajectory()[0];
    assert_eq!(rec.round, 1);
    assert_eq!(rec.capacity, vec![0.0, 20.0, 15.0]);
    assert!((rec.admitted_total() - 31.5).abs() < 1e-9);
    assert!((rec.shed_total() - (38.0 - 31.5)).abs() < 1e-9);

    // No flow is routed to the corpse, and the survivors sit at an
    // ε-Nash equilibrium of the residual-capacity game on the admitted
    // rates.
    for s in out.profile().strategies() {
        assert_eq!(s.fraction(0), 0.0, "flow routed to a crashed computer");
    }
    let (reduced, stripped) = residual_game(&out, &[0]);
    let gap = epsilon_nash_gap(&reduced, &stripped).unwrap();
    assert!(gap < 1e-2, "residual-game Nash gap {gap}");
}

#[test]
fn max_min_shedding_protects_the_small_user() {
    // Crash the big computer so only 5 jobs/s survive against nominal
    // demand 20. Max-min with headroom 0.8 admits 4 jobs/s under a
    // common cap c solving min(2,c) + min(18,c) = 4, i.e. c = 2: the
    // small user keeps everything it asked for, the big one is capped.
    let full = SystemModel::new(vec![30.0, 5.0], vec![2.0, 18.0]).unwrap();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(1, 0))
        .overload_policy(OverloadPolicy::ShedMaxMin { headroom: 0.8 })
        .run_deadline(Duration::from_secs(20))
        .run(&full)
        .unwrap();
    assert!(out.converged());
    let admitted = out.admitted_rates();
    assert!((admitted[0] - 2.0).abs() < 1e-9, "{admitted:?}");
    assert!((admitted[1] - 2.0).abs() < 1e-9, "{admitted:?}");
    assert!(out.shed_rates()[0].abs() < 1e-9);
    assert!((out.shed_rates()[1] - 16.0).abs() < 1e-9);
}

#[test]
fn reject_policy_aborts_with_an_actionable_overload_error() {
    let full = model();
    let deadline = Duration::from_secs(20);
    let started = Instant::now();
    let err = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(1, 0))
        .overload_policy(OverloadPolicy::Reject)
        .run_deadline(deadline)
        .run(&full)
        .unwrap_err();
    assert!(started.elapsed() < deadline, "took {:?}", started.elapsed());
    match err {
        GameError::Overloaded {
            total_arrival_rate,
            total_capacity,
            min_shed,
            ..
        } => {
            assert!((total_arrival_rate - 38.0).abs() < 1e-9);
            assert!((total_capacity - 35.0).abs() < 1e-9);
            assert!((min_shed - 3.0).abs() < 1e-9);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
}

#[test]
fn feasible_crash_needs_no_shedding() {
    // Σφ = 18 still fits after computer 2 (15 jobs/s) dies: 18 < 0.9·50.
    let full = SystemModel::new(vec![30.0, 20.0, 15.0], vec![10.0, 8.0]).unwrap();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(1, 2))
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .run(&full)
        .unwrap();
    assert!(out.converged());
    assert_eq!(out.degraded_computers(), &[2]);
    assert_eq!(out.admitted_rates(), full.user_rates());
    assert!(out.shed_rates().iter().all(|&x| x == 0.0));
    assert_eq!(out.shed_trajectory().len(), 1);
    assert!(out.shed_trajectory()[0].shed_total() == 0.0);
    let (reduced, stripped) = residual_game(&out, &[2]);
    let gap = epsilon_nash_gap(&reduced, &stripped).unwrap();
    assert!(gap < 1e-2, "residual-game Nash gap {gap}");
}

#[test]
fn degraded_computer_keeps_serving_at_the_reduced_rate() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().degrade_computer_at(1, 0, 12.0))
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .run(&full)
        .unwrap();
    assert!(out.converged());
    assert_eq!(out.degraded_computers(), &[0]);
    assert_eq!(out.final_capacity(), &[12.0, 20.0, 15.0]);
    // 38 < 0.9 · 47: feasible, nothing shed.
    assert!(out.shed_rates().iter().all(|&x| x == 0.0));
    // Equilibrium of the degraded game, all three computers live.
    let degraded_game = SystemModel::new(vec![12.0, 20.0, 15.0], vec![20.0, 18.0]).unwrap();
    let gap = epsilon_nash_gap(&degraded_game, out.profile()).unwrap();
    assert!(gap < 1e-2, "degraded-game Nash gap {gap}");
}

#[test]
fn recovery_readmits_previously_shed_load() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(
            FaultPlan::new()
                .crash_computer_at(1, 0)
                .recover_computer_at(3, 0),
        )
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .tolerance(1e-6)
        .run(&full)
        .unwrap();
    assert!(out.converged());
    // Two admission decisions: the crash sheds, the recovery re-admits.
    assert_eq!(out.shed_trajectory().len(), 2);
    assert!(out.shed_trajectory()[0].shed_total() > 0.0);
    assert_eq!(out.shed_trajectory()[1].shed_total(), 0.0);
    // Final state: full capacity back, everything admitted again.
    assert!(out.degraded_computers().is_empty());
    assert_eq!(out.final_capacity(), full.computer_rates());
    assert_eq!(out.admitted_rates(), full.user_rates());
    assert!(out.shed_rates().iter().all(|&x| x == 0.0));
    // And the equilibrium is the *nominal* game's again.
    let gap = epsilon_nash_gap(&full, out.profile()).unwrap();
    assert!(gap < 1e-2, "nominal-game Nash gap {gap}");
}

#[test]
fn shed_trajectory_replays_byte_identically() {
    let full = model();
    let run = || {
        DistributedNash::new()
            .fault_plan(
                FaultPlan::new()
                    .crash_computer_at(1, 0)
                    .degrade_computer_at(3, 2, 10.0)
                    .recover_computer_at(5, 0),
            )
            .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
            .tolerance(1e-6)
            .run(&full)
            .unwrap()
    };
    let a = run();
    let b = run();
    // The trajectory is a pure function of (plan, nominal rates,
    // policy): every record — capacities, admitted and shed vectors —
    // must match bit for bit across runs, thread timing notwithstanding.
    assert_eq!(a.shed_trajectory(), b.shed_trajectory());
    assert_eq!(a.admitted_rates(), b.admitted_rates());
    assert_eq!(a.shed_rates(), b.shed_rates());
    assert_eq!(a.final_capacity(), b.final_capacity());
    assert_eq!(a.rounds(), b.rounds());
    assert_eq!(a.trace().values(), b.trace().values());
    let d = a.profile().max_l1_distance(b.profile()).unwrap();
    assert_eq!(d, 0.0, "profiles differ by {d}");
}

#[test]
fn churn_composes_with_user_failure() {
    // A computer crash (shedding load) followed by a user crash: the
    // survivor re-converges alone on the residual capacity and the dead
    // user's admitted/shed rates are zeroed in the outcome.
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(1, 0).panic_at(0, 4))
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .round_timeout(Duration::from_millis(200))
        .tolerance(1e-6)
        .run(&full)
        .unwrap();
    assert!(out.converged());
    assert_eq!(out.failed_users(), &[0]);
    assert_eq!(out.survivors(), &[1]);
    assert_eq!(out.admitted_rates()[0], 0.0);
    assert_eq!(out.shed_rates()[0], 0.0);
    let (reduced, stripped) = residual_game(&out, &[0]);
    let gap = epsilon_nash_gap(&reduced, &stripped).unwrap();
    assert!(gap < 1e-2, "residual-game Nash gap {gap}");
}

#[test]
fn churn_free_runs_log_no_shed_records() {
    let full = model();
    let out = DistributedNash::new()
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .run(&full)
        .unwrap();
    assert!(out.shed_trajectory().is_empty());
    assert!(out.degraded_computers().is_empty());
    assert_eq!(out.admitted_rates(), full.user_rates());
    assert!(out.shed_rates().iter().all(|&x| x == 0.0));
    assert_eq!(out.final_capacity(), full.computer_rates());
}

/// Long-haul soak: many crash/degrade/recover cycles in one run, each
/// cycle replayed twice and required to be byte-identical. Run by the CI
/// `soak` job (`cargo test -- --ignored`).
#[test]
#[ignore = "long-running soak; exercised by the CI soak job"]
fn repeated_churn_cycles_stay_deterministic() {
    let full = model();
    let mut plan = FaultPlan::new();
    // Ten full cycles: crash -> degrade survivor -> recover both.
    for cycle in 0..10u32 {
        let base = 1 + cycle * 6;
        plan = plan
            .crash_computer_at(base, 0)
            .degrade_computer_at(base + 2, 1, 12.0)
            .recover_computer_at(base + 4, 0)
            .recover_computer_at(base + 5, 1);
    }
    let run = || {
        DistributedNash::new()
            .tolerance(1e-6)
            .max_rounds(400)
            .fault_plan(plan.clone())
            .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
            .run_deadline(Duration::from_secs(120))
            .run(&model())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.shed_trajectory(), b.shed_trajectory());
    assert_eq!(a.rounds(), b.rounds());
    // Bitwise comparison: the transient rounds right after a crash can
    // carry inf/NaN norms (stale flows at a dead computer), and
    // NaN != NaN would fail a value comparison even on identical runs.
    let bits = |t: &[f64]| t.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(a.trace().values()), bits(b.trace().values()));
    // 4 capacity-event rounds per cycle -> 40 shed records, and the
    // final state is fully recovered and converged on the nominal
    // equilibrium.
    assert_eq!(a.shed_trajectory().len(), 40);
    assert!(a.converged());
    assert_eq!(a.final_capacity(), full.computer_rates());
    assert_eq!(a.shed_rates(), &[0.0, 0.0]);
    let gap = epsilon_nash_gap(&full, a.profile()).unwrap();
    assert!(gap < 1e-2, "nominal-game gap {gap}");
}
