//! Chaos property tests for the asynchronous runtime: for
//! proptest-sampled fault schedules (loss ≤ 30%, duplication,
//! reordering, one partition + heal), `AsyncNash` must either terminate
//! with a certified relative ε-Nash gap ≤ ε or return a typed partial
//! outcome — never hang, never panic — and a fixed seed must give a
//! byte-identical outcome at 1, 2 and 8 worker threads.

use lb_distributed::async_runtime::{AsyncNash, AsyncTermination};
use lb_distributed::net::NetFaultPlan;
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::model::SystemModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    model: SystemModel,
    loss: f64,
    duplication: f64,
    reordering: f64,
    delay_max_us: u64,
    partition: Option<(u64, u64)>,
    seed: u64,
}

impl Case {
    fn plan(&self) -> NetFaultPlan {
        let mut plan = NetFaultPlan::new()
            .loss(self.loss)
            .duplication(self.duplication)
            .reordering(self.reordering)
            .delay_us(50, self.delay_max_us);
        if let Some((start, len)) = self.partition {
            // One partition + heal: user 0 alone on the minority side.
            plan = plan.partition_at(start, start + len, vec![0]);
        }
        plan
    }

    fn runner(&self, threads: usize) -> AsyncNash {
        AsyncNash::new()
            .seed(self.seed)
            .fault_plan(self.plan())
            .max_virtual_us(10_000_000)
            .threads(threads)
    }
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (
            prop::collection::vec(5.0f64..60.0, 2..5),
            prop::collection::vec(0.1f64..1.0, 1..5),
            0.2f64..0.8,
        ),
        (0.0f64..0.3, 0.0f64..0.2, 0.0f64..0.5, 100u64..3_000),
        (0u32..2, 0u64..40_000, 20_000u64..120_000),
        1u64..1_000_000,
    )
        .prop_map(
            |(
                (rates, fractions, rho),
                (loss, duplication, reordering, delay_max_us),
                (has_partition, start, len),
                seed,
            )| Case {
                model: SystemModel::with_utilization(rates, &fractions, rho).expect("stable"),
                loss,
                duplication,
                reordering,
                delay_max_us,
                partition: (has_partition == 1).then_some((start, len)),
                seed,
            },
        )
}

proptest! {
    // Every case runs the full event loop three times (threads 1/2/8);
    // keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline acceptance property: certified-or-typed-partial,
    /// never a hang or panic, under arbitrary sampled chaos.
    #[test]
    fn chaos_terminates_certified_or_typed_partial(case in arb_case()) {
        let out = case.runner(1).run(&case.model).unwrap();
        match out.termination() {
            AsyncTermination::Converged => {
                let gap = out.certified_gap().expect("converged runs carry a certificate");
                prop_assert!(gap <= 1e-4, "certified gap {gap}");
                // Version-vector agreement at acceptance means the
                // returned board is the board the regrets were measured
                // on, so the offline-recomputed gap honors the
                // certificate (scaled by the response times, as in the
                // ring's property tests).
                let true_gap = epsilon_nash_gap(&case.model, &out.profile().unwrap()).unwrap();
                let scale: f64 = out
                    .user_times()
                    .iter()
                    .cloned()
                    .fold(0.0, f64::max)
                    .max(1e-6);
                prop_assert!(true_gap <= 1e-4 * scale, "true gap {true_gap} at scale {scale}");
            }
            AsyncTermination::Exhausted { reason } => {
                // Typed partial outcome: a named budget, stats intact.
                prop_assert!(
                    reason == "virtual-time budget exhausted"
                        || reason == "event budget exhausted"
                        || reason == "all users failed",
                    "unexpected exhaustion reason {reason}"
                );
                prop_assert!(out.certified_gap().is_none());
                prop_assert!(out.virtual_time_us() <= 10_000_000);
            }
        }
    }

    /// Thread-count independence: the worker pool only parallelizes the
    /// final (pure) certificate recomputation, so the entire outcome —
    /// floats included — must be byte-identical at any setting.
    #[test]
    fn chaos_outcome_is_identical_across_1_2_8_threads(case in arb_case()) {
        let one = format!("{:?}", case.runner(1).run(&case.model).unwrap());
        let two = format!("{:?}", case.runner(2).run(&case.model).unwrap());
        let eight = format!("{:?}", case.runner(8).run(&case.model).unwrap());
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
    }
}
