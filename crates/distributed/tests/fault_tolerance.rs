//! Fault-injection tests for the token-ring runtime: crashes, token
//! loss, slow users and stale observations, all reproduced
//! deterministically via `FaultPlan`.
//!
//! The acceptance scenario: a user panics mid-round while holding the
//! token. The run must return within the configured deadline (no hang),
//! name the failed user, and the survivors' repaired ring must
//! re-converge to an ε-Nash profile of the *reduced* system.

use lb_distributed::fault::FaultPlan;
use lb_distributed::messages::Termination;
use lb_distributed::runtime::DistributedNash;
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::{Strategy, StrategyProfile};
use std::time::{Duration, Instant};

/// Four users on four heterogeneous computers, comfortably underloaded
/// so the system stays feasible after any single user is removed.
fn model() -> SystemModel {
    SystemModel::new(vec![10.0, 20.0, 35.0, 50.0], vec![9.0, 14.0, 19.0, 24.0]).unwrap()
}

/// The same system with the given users removed — what the survivors
/// should be converging to after the repair.
fn reduced_model(full: &SystemModel, failed: &[usize]) -> SystemModel {
    let rates = full
        .user_rates()
        .iter()
        .enumerate()
        .filter(|(j, _)| !failed.contains(j))
        .map(|(_, &phi)| phi)
        .collect();
    SystemModel::new(full.computer_rates().to_vec(), rates).unwrap()
}

#[test]
fn panic_holding_token_is_repaired_within_deadline() {
    let full = model();
    let deadline = Duration::from_secs(10);
    let started = Instant::now();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_at(1, 3))
        .round_timeout(Duration::from_millis(200))
        .run_deadline(deadline)
        .run(&full)
        .unwrap();
    let elapsed = started.elapsed();

    // No hang: well inside the deadline (the only stall is the 200 ms
    // failure-detector patience).
    assert!(elapsed < deadline, "took {elapsed:?}");
    // The outcome names the failed user and the survivors.
    assert_eq!(out.failed_users(), &[1]);
    assert_eq!(out.survivors(), &[0, 2, 3]);
    assert!(out.converged());
    assert_eq!(out.user_times().len(), 3);

    // The survivors re-converged to an ε-Nash profile of the reduced
    // three-user system.
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn repair_is_deterministic_under_a_fixed_plan() {
    let full = model();
    let run = || {
        DistributedNash::new()
            .fault_plan(FaultPlan::new().panic_at(1, 3))
            .round_timeout(Duration::from_millis(150))
            .run(&full)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.rounds(), b.rounds());
    assert_eq!(a.failed_users(), b.failed_users());
    assert_eq!(a.survivors(), b.survivors());
    assert_eq!(a.trace().values(), b.trace().values());
    let d = a.profile().max_l1_distance(b.profile()).unwrap();
    assert_eq!(d, 0.0, "profiles differ by {d}");
    assert_eq!(a.user_times(), b.user_times());
}

#[test]
fn dropped_token_is_detected_and_regenerated() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().drop_token_at(2, 1))
        .round_timeout(Duration::from_millis(150))
        .run(&full)
        .unwrap();
    assert_eq!(out.failed_users(), &[2]);
    assert_eq!(out.survivors(), &[0, 1, 3]);
    assert!(out.converged());
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn death_after_forwarding_is_spliced_without_waiting_for_the_timeout() {
    let full = model();
    // The patience is deliberately huge: if the repair needed the
    // failure detector, the run would take > 30 s. The predecessor's
    // failed send must splice around the corpse instead. The benign
    // delay at the tail keeps the next round from reaching user 1's
    // channel before its thread has finished unwinding (a forward that
    // lands in a still-dying thread's queue is a token loss, which is
    // the detector's job, not the splice path's).
    let started = Instant::now();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_after_forward_at(1, 2).delay_at(
            3,
            2,
            Duration::from_millis(300),
        ))
        .round_timeout(Duration::from_secs(30))
        .run(&full)
        .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "splice fast-path did not trigger"
    );
    assert_eq!(out.failed_users(), &[1]);
    assert_eq!(out.survivors(), &[0, 2, 3]);
    assert!(out.converged());
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn user_slower_than_the_detector_is_excluded_like_a_crash() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().delay_at(1, 2, Duration::from_millis(900)))
        .round_timeout(Duration::from_millis(150))
        .run(&full)
        .unwrap();
    // The classic false positive of timeout-based detection: the slow
    // user is cut off and the rest proceed without it.
    assert_eq!(out.failed_users(), &[1]);
    assert_eq!(out.survivors(), &[0, 2, 3]);
    assert!(out.converged());
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn benign_delay_within_the_patience_is_tolerated() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().delay_at(1, 1, Duration::from_millis(40)))
        .round_timeout(Duration::from_secs(2))
        .run(&full)
        .unwrap();
    assert!(out.failed_users().is_empty());
    assert_eq!(out.survivors(), &[0, 1, 2, 3]);
    assert!(out.converged());
    let gap = epsilon_nash_gap(&full, out.profile()).unwrap();
    assert!(gap < 1e-3, "full-system Nash gap {gap}");
}

#[test]
fn stale_observations_do_not_break_convergence() {
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().stale_at(1, 1).stale_at(2, 3))
        .run(&full)
        .unwrap();
    assert!(out.failed_users().is_empty());
    assert!(out.converged());
    let gap = epsilon_nash_gap(&full, out.profile()).unwrap();
    assert!(gap < 1e-3, "full-system Nash gap {gap}");
}

#[test]
fn two_failures_in_different_rounds_are_both_repaired() {
    let full = SystemModel::new(
        vec![10.0, 20.0, 35.0, 50.0, 25.0],
        vec![8.0, 11.0, 14.0, 17.0, 20.0],
    )
    .unwrap();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_at(1, 2).panic_at(3, 5))
        .round_timeout(Duration::from_millis(150))
        .run(&full)
        .unwrap();
    assert_eq!(out.failed_users(), &[1, 3]);
    assert_eq!(out.survivors(), &[0, 2, 4]);
    assert!(out.converged());
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn run_deadline_surfaces_as_ring_timeout() {
    let full = model();
    // The detector's patience exceeds the whole-run deadline, so after
    // the injected crash the run must give up with RingTimeout rather
    // than repair.
    let started = Instant::now();
    let err = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_at(1, 1))
        .round_timeout(Duration::from_secs(30))
        .run_deadline(Duration::from_millis(300))
        .run(&full)
        .unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline did not fire"
    );
    match err {
        GameError::RingTimeout { reason, .. } => {
            assert!(reason.contains("deadline"), "unexpected reason: {reason}")
        }
        other => panic!("expected RingTimeout, got {other:?}"),
    }
}

#[test]
fn losing_every_user_is_an_error_not_a_hang() {
    let m = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
    let err = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_at(0, 1))
        .round_timeout(Duration::from_millis(100))
        .run(&m)
        .unwrap_err();
    match err {
        // Either detection path is acceptable: the event channel
        // disconnecting (every thread gone) or the token timeout firing
        // with nobody left to regenerate for. Both must name user 0.
        GameError::RingTimeout { reason, .. } => {
            assert!(
                reason.contains("no users survive") || reason.contains("failed users: [0]"),
                "unexpected reason: {reason}"
            )
        }
        other => panic!("expected RingTimeout, got {other:?}"),
    }
}

#[test]
fn two_panics_in_the_same_round_are_both_spliced() {
    // Adjacent users die in the *same* round: user 1 takes the token
    // down with it and user 2 is already doomed for the round the
    // repaired ring replays. The splice must survive back-to-back
    // repairs without double-counting either corpse.
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().panic_at(1, 3).panic_at(2, 3))
        .round_timeout(Duration::from_millis(200))
        .run(&full)
        .unwrap();
    assert_eq!(out.failed_users(), &[1, 2]);
    assert_eq!(out.survivors(), &[0, 3]);
    assert!(out.converged());
    assert_eq!(out.user_times().len(), 2);
    let reduced = reduced_model(&full, out.failed_users());
    let gap = epsilon_nash_gap(&reduced, out.profile()).unwrap();
    assert!(gap < 1e-2, "reduced-system Nash gap {gap}");
}

#[test]
fn panic_during_an_in_flight_capacity_event_is_repaired() {
    // A computer crash is queued for the end of the same round in which
    // a user panics while holding the token: the coordinator must both
    // apply the capacity event and repair the ring, in either order,
    // without losing one to the other.
    let full = model();
    let out = DistributedNash::new()
        .fault_plan(FaultPlan::new().crash_computer_at(3, 0).panic_at(1, 3))
        .round_timeout(Duration::from_millis(200))
        .run(&full)
        .unwrap();
    assert_eq!(out.failed_users(), &[1]);
    assert_eq!(out.survivors(), &[0, 2, 3]);
    assert!(out.converged());
    assert_eq!(out.final_capacity(), &[0.0, 20.0, 35.0, 50.0]);

    // The survivors equilibrate the residual game: dead computer's
    // column stripped (its flow is zero after re-convergence), dead
    // user's row gone.
    let degraded = SystemModel::new(
        vec![20.0, 35.0, 50.0],
        out.survivors()
            .iter()
            .map(|&j| full.user_rates()[j])
            .collect(),
    )
    .unwrap();
    let rows: Vec<Strategy> = out
        .profile()
        .strategies()
        .iter()
        .map(|s| Strategy::new(s.fractions()[1..].to_vec()).unwrap())
        .collect();
    let stripped = StrategyProfile::new(rows).unwrap();
    let gap = epsilon_nash_gap(&degraded, &stripped).unwrap();
    assert!(gap < 1e-2, "residual-game Nash gap {gap}");
}

#[test]
fn survivors_reach_a_consistent_outcome_across_reruns() {
    // The compound scenario (double same-round crash plus an in-flight
    // computer crash) must still be a deterministic function of the
    // plan: every rerun's survivors see byte-identical results.
    let full = model();
    let run = || {
        DistributedNash::new()
            .fault_plan(
                FaultPlan::new()
                    .crash_computer_at(3, 1)
                    .panic_at(1, 3)
                    .panic_at(2, 3),
            )
            .round_timeout(Duration::from_millis(200))
            .run(&full)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.failed_users(), b.failed_users());
    assert_eq!(a.survivors(), b.survivors());
    assert_eq!(a.final_capacity(), b.final_capacity());
    assert_eq!(a.user_times(), b.user_times());
    let d = a.profile().max_l1_distance(b.profile()).unwrap();
    assert_eq!(d, 0.0, "profiles differ by {d}");
    assert!(a.converged() && b.converged());
}

#[test]
fn faultless_runs_are_unaffected_by_the_machinery() {
    let full = model();
    let plain = DistributedNash::new().run(&full).unwrap();
    let with_empty_plan = DistributedNash::new()
        .fault_plan(FaultPlan::new())
        .round_timeout(Duration::from_secs(5))
        .run_deadline(Duration::from_secs(60))
        .run(&full)
        .unwrap();
    assert_eq!(plain.rounds(), with_empty_plan.rounds());
    assert_eq!(plain.trace().values(), with_empty_plan.trace().values());
    let d = plain
        .profile()
        .max_l1_distance(with_empty_plan.profile())
        .unwrap();
    assert_eq!(d, 0.0);
    assert_eq!(plain.termination(), Termination::Converged);
}
