//! Randomized end-to-end tests of the distributed token ring: for random
//! stable systems, the ring must terminate, produce a feasible ε-Nash
//! profile, and agree with the sequential solver.

use lb_distributed::runtime::{DistributedNash, RingInit};
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::model::SystemModel;
use lb_game::nash::{Initialization, NashSolver};
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemModel> {
    (
        prop::collection::vec(1.0f64..100.0, 1..6),
        prop::collection::vec(0.1f64..1.0, 1..5),
        0.1f64..0.85,
    )
        .prop_map(|(rates, fractions, rho)| {
            SystemModel::with_utilization(rates, &fractions, rho).expect("valid")
        })
}

proptest! {
    // Thread-spawning tests are slower; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_terminates_feasible_and_epsilon_nash(model in arb_system()) {
        let out = DistributedNash::new()
            .tolerance(1e-7)
            .max_rounds(3000)
            .run(&model)
            .unwrap();
        out.profile().check_stability(&model).unwrap();
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        let scale: f64 = out
            .user_times()
            .iter()
            .cloned()
            .fold(0.0, f64::max)
            .max(1e-6);
        prop_assert!(gap <= 1e-3 * scale, "gap {gap} at scale {scale}");
        // Under the certified rule the accepting round is quiescent (no
        // updates) and already-ε-optimal users skip, so the update count
        // is bounded by the non-final rounds but at least one per round
        // (a fully-skipped round would have terminated instead).
        let m = model.num_users() as u32;
        prop_assert!(out.total_updates() <= (out.rounds() - 1) * m);
        prop_assert!(out.total_updates() >= out.rounds() - 1);
    }

    #[test]
    fn ring_and_sequential_agree_on_random_systems(model in arb_system()) {
        // Pin the paper's absolute-norm rule on both sides: it is the
        // only rule under which the ring and the sequential sweep run in
        // exact lockstep (the certified rule's quiescence protocol costs
        // the ring one extra confirming round).
        let ring = DistributedNash::new()
            .init(RingInit::Proportional)
            .stopping_rule(lb_game::StoppingRule::AbsoluteNorm)
            .tolerance(1e-8)
            .max_rounds(5000)
            .run(&model)
            .unwrap();
        let seq = NashSolver::new(Initialization::Proportional)
            .stopping_rule(lb_game::StoppingRule::AbsoluteNorm)
            .tolerance(1e-8)
            .max_iterations(5000)
            .solve(&model)
            .unwrap();
        prop_assert_eq!(ring.rounds(), seq.iterations());
        let dist = ring.profile().max_l1_distance(seq.profile()).unwrap();
        prop_assert!(dist < 1e-6, "profiles differ by {dist}");
    }
}
