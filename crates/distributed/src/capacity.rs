//! Capacity churn events and the shed trajectory.
//!
//! PR 1 taught the ring to survive *user* failures; this module is the
//! *computer*-side counterpart. A [`CapacityEvent`] changes a computer's
//! service rate mid-run — crash (`μ_i → 0`), degrade (`μ_i → rate`), or
//! recover (`μ_i →` nominal) — and is injected deterministically through
//! the [`FaultPlan`](crate::fault::FaultPlan), keyed by the ring round
//! after which it fires. When the coordinator applies a batch of events
//! it:
//!
//! 1. updates its live capacity vector;
//! 2. zeroes crashed computers' *columns* on the
//!    [`LoadBoard`](crate::board::LoadBoard) (flow routed to a dead
//!    computer is not being served — leaving it would make every user's
//!    availability estimate lie);
//! 3. runs the configured
//!    [`OverloadPolicy`](lb_game::overload::OverloadPolicy) over the
//!    survivors' nominal demand, producing per-user *admitted* rates;
//! 4. bumps the epoch and reconfigures every live user with the new
//!    rate vector and its admitted demand, then regenerates the token —
//!    FIFO channel order guarantees each user sees the reconfiguration
//!    before any new-epoch token, so no user ever best-responds against
//!    stale capacity.
//!
//! Each application appends a [`ShedRecord`] to the run's shed
//! trajectory. The trajectory is a pure function of the event schedule,
//! the nominal rates and the policy — thread timing never enters — so
//! the same plan and seed reproduce it byte for byte.

/// A change to one computer's service rate, applied between rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityEvent {
    /// The computer fails outright: `μ_i → 0`, its board column is
    /// zeroed, and no user may route flow to it until it recovers.
    Crash {
        /// Index of the computer.
        computer: usize,
    },
    /// The computer keeps running at a reduced (or otherwise changed)
    /// absolute rate.
    Degrade {
        /// Index of the computer.
        computer: usize,
        /// New service rate in jobs/s (must be positive and finite).
        rate: f64,
    },
    /// The computer returns to its nominal service rate.
    Recover {
        /// Index of the computer.
        computer: usize,
    },
}

impl CapacityEvent {
    /// The computer the event targets.
    #[must_use]
    pub fn computer(&self) -> usize {
        match *self {
            Self::Crash { computer }
            | Self::Degrade { computer, .. }
            | Self::Recover { computer } => computer,
        }
    }
}

/// One entry of the shed trajectory: the admission-control decision the
/// coordinator took after applying the capacity events of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRecord {
    /// Ring round after which the decision was taken.
    pub round: u32,
    /// Epoch the ring moved to.
    pub epoch: u32,
    /// Capacity vector in force after the events (0 = crashed).
    pub capacity: Vec<f64>,
    /// Per-user admitted arrival rates (0 for failed users).
    pub admitted: Vec<f64>,
    /// Per-user shed arrival rates (`nominal − admitted` for live
    /// users, 0 for failed ones).
    pub shed: Vec<f64>,
}

impl ShedRecord {
    /// Total admitted arrival rate.
    #[must_use]
    pub fn admitted_total(&self) -> f64 {
        self.admitted.iter().sum()
    }

    /// Total shed arrival rate.
    #[must_use]
    pub fn shed_total(&self) -> f64 {
        self.shed.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_its_computer() {
        assert_eq!(CapacityEvent::Crash { computer: 3 }.computer(), 3);
        assert_eq!(
            CapacityEvent::Degrade {
                computer: 1,
                rate: 5.0
            }
            .computer(),
            1
        );
        assert_eq!(CapacityEvent::Recover { computer: 0 }.computer(), 0);
    }

    #[test]
    fn shed_record_totals() {
        let r = ShedRecord {
            round: 4,
            epoch: 2,
            capacity: vec![10.0, 0.0],
            admitted: vec![3.0, 4.0],
            shed: vec![1.0, 2.0],
        };
        assert!((r.admitted_total() - 7.0).abs() < 1e-12);
        assert!((r.shed_total() - 3.0).abs() < 1e-12);
    }
}
