//! Estimating available processing rates from the observable load.
//!
//! The paper's remark after the OPTIMAL algorithm: "the available
//! processing rate can be determined by statistical estimation of the run
//! queue length of each processor". [`ObservationModel::Exact`] reads the
//! board directly (a perfect estimator); [`ObservationModel::Noisy`]
//! perturbs each observation multiplicatively, modeling the sampling
//! error of a finite run-queue estimate — the "uncertainty" direction the
//! paper names as future work.

/// How a user turns board state into available-rate estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObservationModel {
    /// Perfect observation: `a_i = μ_i − λ_i^{(−j)}`.
    Exact,
    /// Each rate is multiplied by an independent factor
    /// `1 + rel_std · Z` with `Z` approximately standard normal, clamped
    /// to `[0.5, 1.5]` so estimates stay physical.
    Noisy {
        /// Relative standard deviation of the estimate (e.g. `0.05`).
        rel_std: f64,
        /// Seed for the user's private observation stream.
        seed: u64,
    },
}

/// A stateful observer owned by one user thread.
#[derive(Debug, Clone)]
pub struct Observer {
    model: ObservationModel,
    state: u64,
    last: Option<Vec<f64>>,
}

impl Observer {
    /// Creates an observer for the given model (the per-user seed for a
    /// noisy model is mixed with `user` so users see independent noise).
    pub fn new(model: ObservationModel, user: usize) -> Self {
        let state = match model {
            ObservationModel::Exact => 0,
            ObservationModel::Noisy { seed, .. } => {
                splitmix(seed ^ (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1)
            }
        };
        Self {
            model,
            state,
            last: None,
        }
    }

    /// The observation model this observer applies.
    pub fn model(&self) -> ObservationModel {
        self.model
    }

    /// Estimates the available rates `a_i = μ_i − other_flows_i`, applying
    /// the model's observation error. The estimate is cached and stays
    /// available through [`Observer::last_observation`] — a fault-injected
    /// "stale" round replays it instead of sampling the board again.
    pub fn observe(&mut self, mu: &[f64], other_flows: &[f64]) -> Vec<f64> {
        debug_assert_eq!(mu.len(), other_flows.len());
        let estimate: Vec<f64> = mu
            .iter()
            .zip(other_flows)
            .map(|(&m, &f)| {
                let truth = m - f;
                match self.model {
                    ObservationModel::Exact => truth,
                    ObservationModel::Noisy { rel_std, .. } => {
                        let z = self.standard_normal();
                        truth * (1.0 + rel_std * z).clamp(0.5, 1.5)
                    }
                }
            })
            .collect();
        self.last = Some(estimate.clone());
        estimate
    }

    /// The most recent estimate returned by [`Observer::observe`], if any.
    pub fn last_observation(&self) -> Option<&[f64]> {
        self.last.as_deref()
    }

    /// Approximate standard normal from twelve uniforms (Irwin–Hall).
    fn standard_normal(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            self.state = splitmix(self.state);
            acc += (self.state >> 11) as f64 / (1u64 << 53) as f64;
        }
        acc - 6.0
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_observation_is_truth() {
        let mut o = Observer::new(ObservationModel::Exact, 3);
        let a = o.observe(&[10.0, 20.0], &[4.0, 0.0]);
        assert_eq!(a, vec![6.0, 20.0]);
    }

    #[test]
    fn last_observation_caches_the_latest_estimate() {
        let mut o = Observer::new(ObservationModel::Exact, 0);
        assert!(o.last_observation().is_none());
        o.observe(&[10.0], &[4.0]);
        assert_eq!(o.last_observation(), Some(&[6.0][..]));
        o.observe(&[10.0], &[1.0]);
        assert_eq!(o.last_observation(), Some(&[9.0][..]));
        assert_eq!(o.model(), ObservationModel::Exact);
    }

    #[test]
    fn noisy_observation_is_unbiased_and_bounded() {
        let mut o = Observer::new(
            ObservationModel::Noisy {
                rel_std: 0.05,
                seed: 42,
            },
            0,
        );
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let a = o.observe(&[10.0], &[0.0])[0];
            assert!((5.0..=15.0).contains(&a), "clamped range violated: {a}");
            sum += a;
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "biased estimate: {mean}");
    }

    #[test]
    fn users_see_independent_noise() {
        let model = ObservationModel::Noisy {
            rel_std: 0.1,
            seed: 7,
        };
        let mut a = Observer::new(model, 0);
        let mut b = Observer::new(model, 1);
        let xa: Vec<f64> = (0..8).map(|_| a.observe(&[10.0], &[0.0])[0]).collect();
        let xb: Vec<f64> = (0..8).map(|_| b.observe(&[10.0], &[0.0])[0]).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn noise_stream_is_reproducible() {
        let model = ObservationModel::Noisy {
            rel_std: 0.1,
            seed: 7,
        };
        let mut a = Observer::new(model, 5);
        let mut b = Observer::new(model, 5);
        for _ in 0..16 {
            assert_eq!(a.observe(&[9.0], &[1.0]), b.observe(&[9.0], &[1.0]));
        }
    }
}
