//! Deterministic fault injection for the token ring.
//!
//! Distributed failure modes are miserable to test when they depend on
//! timing. A [`FaultPlan`] makes them reproducible: it maps
//! `(user, round)` pairs to a [`FaultAction`] that the user thread
//! executes when it holds the token at that round. Because the token
//! serializes the ring, a plan produces the same failure at the same
//! point of the computation on every run — crash tests become ordinary
//! deterministic unit tests.
//!
//! The actions cover the classic failure taxonomy for this protocol:
//!
//! * crash faults — [`FaultAction::PanicHoldingToken`] (the token dies
//!   with the thread) and [`FaultAction::PanicAfterForward`] (the thread
//!   dies but the token survives, so the failure is discovered later by
//!   the predecessor's failed send);
//! * omission faults — [`FaultAction::DropToken`] (the user processes
//!   the round but never forwards);
//! * timing faults — [`FaultAction::DelayForward`] (a slow participant,
//!   possibly slower than the failure detector's patience);
//! * state faults — [`FaultAction::StaleRound`] (the user best-responds
//!   to its previous observation instead of re-reading the board, so it
//!   publishes flows computed from stale information).
//! * capacity faults — [`CapacityEvent`] entries (crash / degrade /
//!   recover a *computer*), applied by the coordinator between rounds.

use crate::capacity::CapacityEvent;
use std::time::Duration;

/// What a user does when it holds the token at a planned `(user, round)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic immediately on receiving the token, before processing the
    /// round. The token is lost; only the coordinator's timeout can
    /// recover the ring.
    PanicHoldingToken,
    /// Process the round and forward the token normally, then panic. The
    /// token survives, so the ring keeps running until someone tries to
    /// send to the dead thread and splices around it via `next2`.
    PanicAfterForward,
    /// Process the round but silently discard the token instead of
    /// forwarding it. Indistinguishable from a crash to the rest of the
    /// ring.
    DropToken,
    /// Sleep for the given duration before forwarding the token. A delay
    /// longer than the round timeout makes the failure detector declare
    /// this user dead even though it is merely slow — the classic
    /// false-positive of timeout-based detection.
    DelayForward(Duration),
    /// Best-respond to the previous round's cached observation instead of
    /// re-reading the board, then publish those (stale) flows.
    StaleRound,
}

/// A deterministic schedule of injected faults, keyed by `(user, round)`.
///
/// Build one with the chained constructors and hand it to
/// `DistributedNash::fault_plan`:
///
/// ```
/// use lb_distributed::fault::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .panic_at(2, 5)
///     .delay_at(0, 3, Duration::from_millis(10))
///     .stale_at(1, 4);
/// assert!(!plan.is_empty());
/// ```
/// Besides user faults, a plan can carry *capacity* events — server
/// crash / degrade / recover — keyed by the round after which the
/// coordinator applies them:
///
/// ```
/// use lb_distributed::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash_computer_at(3, 0)
///     .degrade_computer_at(5, 2, 4.0)
///     .recover_computer_at(8, 0);
/// assert_eq!(plan.capacity_events_at(3).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(usize, u32, FaultAction)>,
    capacity: Vec<(u32, CapacityEvent)>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary action for `user` at `round`.
    ///
    /// Duplicate `(user, round)` keys are permitted: [`FaultPlan::action`]
    /// resolves a collision by insertion order, so the **first action
    /// added wins** and later additions are inert for that key (they
    /// still count toward [`FaultPlan::len`]). This is pinned,
    /// load-bearing behavior — plans are assembled by chaining scenario
    /// fragments, and first-wins lets a caller put an override in front
    /// of a fragment it does not control.
    pub fn with(mut self, user: usize, round: u32, action: FaultAction) -> Self {
        self.faults.push((user, round, action));
        self
    }

    /// `user` panics while holding the token at `round`.
    pub fn panic_at(self, user: usize, round: u32) -> Self {
        self.with(user, round, FaultAction::PanicHoldingToken)
    }

    /// `user` forwards the token at `round`, then panics.
    pub fn panic_after_forward_at(self, user: usize, round: u32) -> Self {
        self.with(user, round, FaultAction::PanicAfterForward)
    }

    /// `user` silently drops the token at `round`.
    pub fn drop_token_at(self, user: usize, round: u32) -> Self {
        self.with(user, round, FaultAction::DropToken)
    }

    /// `user` sleeps for `delay` before forwarding at `round`.
    pub fn delay_at(self, user: usize, round: u32, delay: Duration) -> Self {
        self.with(user, round, FaultAction::DelayForward(delay))
    }

    /// `user` publishes from a stale observation at `round`.
    pub fn stale_at(self, user: usize, round: u32) -> Self {
        self.with(user, round, FaultAction::StaleRound)
    }

    /// Computer `i` crashes (`μ_i → 0`) after the ring completes
    /// `round`.
    pub fn crash_computer_at(mut self, round: u32, computer: usize) -> Self {
        self.capacity
            .push((round, CapacityEvent::Crash { computer }));
        self
    }

    /// Computer `i` degrades to `rate` jobs/s after the ring completes
    /// `round`.
    pub fn degrade_computer_at(mut self, round: u32, computer: usize, rate: f64) -> Self {
        self.capacity
            .push((round, CapacityEvent::Degrade { computer, rate }));
        self
    }

    /// Computer `i` returns to its nominal rate after the ring
    /// completes `round`.
    pub fn recover_computer_at(mut self, round: u32, computer: usize) -> Self {
        self.capacity
            .push((round, CapacityEvent::Recover { computer }));
        self
    }

    /// Adds an arbitrary capacity event after `round`.
    pub fn with_capacity_event(mut self, round: u32, event: CapacityEvent) -> Self {
        self.capacity.push((round, event));
        self
    }

    /// Capacity events scheduled for application after `round`
    /// completes, in insertion order.
    pub fn capacity_events_at(&self, round: u32) -> Vec<CapacityEvent> {
        self.capacity
            .iter()
            .filter(|&&(r, _)| r == round)
            .map(|&(_, e)| e)
            .collect()
    }

    /// Whether the plan schedules any capacity events at all.
    pub fn has_capacity_events(&self) -> bool {
        !self.capacity.is_empty()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.capacity.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The action planned for `user` at `round`, if any. When several
    /// actions collide on the same `(user, round)`, the first one added
    /// wins.
    pub fn action(&self, user: usize, round: u32) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|&&(u, r, _)| u == user && r == round)
            .map(|&(_, _, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_actions() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.action(0, 0), None);
    }

    #[test]
    fn actions_are_keyed_by_user_and_round() {
        let p = FaultPlan::new()
            .panic_at(1, 3)
            .drop_token_at(2, 0)
            .delay_at(0, 1, Duration::from_millis(5))
            .stale_at(1, 4)
            .panic_after_forward_at(3, 2);
        assert_eq!(p.len(), 5);
        assert_eq!(p.action(1, 3), Some(FaultAction::PanicHoldingToken));
        assert_eq!(p.action(2, 0), Some(FaultAction::DropToken));
        assert_eq!(
            p.action(0, 1),
            Some(FaultAction::DelayForward(Duration::from_millis(5)))
        );
        assert_eq!(p.action(1, 4), Some(FaultAction::StaleRound));
        assert_eq!(p.action(3, 2), Some(FaultAction::PanicAfterForward));
        assert_eq!(p.action(1, 0), None);
        assert_eq!(p.action(4, 3), None);
    }

    #[test]
    fn first_action_wins_on_collision() {
        // Pinned precedence (see `with`): duplicate (user, round) keys
        // resolve by insertion order, so reversing a chain reverses the
        // winner.
        let p = FaultPlan::new().drop_token_at(0, 0).panic_at(0, 0);
        assert_eq!(p.action(0, 0), Some(FaultAction::DropToken));
        let q = FaultPlan::new().panic_at(0, 0).drop_token_at(0, 0);
        assert_eq!(q.action(0, 0), Some(FaultAction::PanicHoldingToken));

        // A three-way pile-up still yields the first addition; the inert
        // duplicates keep counting toward `len`, and colliding on one
        // key leaves every other key untouched.
        let r = FaultPlan::new()
            .stale_at(2, 7)
            .drop_token_at(2, 7)
            .panic_at(2, 7)
            .panic_at(1, 7);
        assert_eq!(r.len(), 4);
        assert_eq!(r.action(2, 7), Some(FaultAction::StaleRound));
        assert_eq!(r.action(1, 7), Some(FaultAction::PanicHoldingToken));

        // The override idiom the precedence exists for: a `with` placed
        // before an uncontrolled fragment masks the fragment's action.
        let overridden = FaultPlan::new()
            .with(3, 1, FaultAction::StaleRound)
            .panic_at(3, 1); // "fragment"
        assert_eq!(overridden.action(3, 1), Some(FaultAction::StaleRound));
    }

    #[test]
    fn capacity_events_are_keyed_by_round() {
        let p = FaultPlan::new()
            .crash_computer_at(2, 1)
            .degrade_computer_at(2, 0, 3.5)
            .recover_computer_at(5, 1);
        assert!(p.has_capacity_events());
        assert!(!p.is_empty());
        assert_eq!(
            p.capacity_events_at(2),
            vec![
                CapacityEvent::Crash { computer: 1 },
                CapacityEvent::Degrade {
                    computer: 0,
                    rate: 3.5
                },
            ]
        );
        assert_eq!(
            p.capacity_events_at(5),
            vec![CapacityEvent::Recover { computer: 1 }]
        );
        assert!(p.capacity_events_at(0).is_empty());
        // User-fault accessors are unaffected.
        assert_eq!(p.action(1, 2), None);
        assert_eq!(p.len(), 0);
    }
}
