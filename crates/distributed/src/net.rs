//! A deterministic virtual network for chaos-testing asynchronous
//! equilibration.
//!
//! The token ring's [`crate::fault::FaultPlan`] injects *node* faults at
//! deterministic points because the token serializes the computation.
//! The asynchronous runtime has no such serializer, so this module
//! supplies one: a discrete-event network simulator with a **virtual
//! clock** (microseconds, advanced only by message delivery) and a
//! seeded per-link fault model. Every roll — drop, duplicate, reorder,
//! delay — comes from one splitmix64 stream consumed in event order, so
//! a `(plan, seed)` pair replays the exact same network history on every
//! run, on any machine, at any thread count. Chaos tests become
//! ordinary deterministic unit tests, exactly like the ring's.
//!
//! The fault model is a [`NetFaultPlan`]:
//!
//! * per-link [`LinkFaults`] — drop probability, duplication
//!   probability, reorder probability (an extra-delay roll that lets
//!   later sends overtake), and a bounded uniform delay window;
//! * scheduled [`Partition`] windows — between `start_us` and `heal_us`
//!   messages crossing the cut are dropped, and `net.partition` /
//!   `net.heal` events mark the boundaries;
//! * an embedded node-level [`crate::fault::FaultPlan`], so one plan
//!   can describe both message chaos and process crashes (the async
//!   runtime maps `(user, round)` entries onto update ticks).
//!
//! Timers ([`VirtualNet::schedule`]) share the clock but bypass the
//! fault model: a node's local alarm cannot be lost to the network.

use crate::fault::FaultPlan;
use crate::messages::TraceContext;
use lb_telemetry::{enabled, Collector};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Sequential splitmix64 — the same mixer the observer and DES RNG
/// streams use; one stream suffices because the event loop is
/// sequential.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-link fault probabilities and delay bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a delivered message arrives twice (the copy takes an
    /// independent delay).
    pub duplicate: f64,
    /// Probability a message draws its delay from a 3×-wider window,
    /// letting later sends overtake it.
    pub reorder: f64,
    /// Minimum propagation delay, virtual µs.
    pub delay_min_us: u64,
    /// Maximum propagation delay, virtual µs (inclusive bound of the
    /// uniform window; must be ≥ `delay_min_us`).
    pub delay_max_us: u64,
}

impl Default for LinkFaults {
    /// A healthy link: no loss, no duplication, no reordering, 50–200 µs
    /// propagation delay.
    fn default() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay_min_us: 50,
            delay_max_us: 200,
        }
    }
}

impl LinkFaults {
    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "link fault probability `{name}` must be in [0, 1], got {p}"
            );
        }
        assert!(
            self.delay_max_us >= self.delay_min_us,
            "delay_max_us {} < delay_min_us {}",
            self.delay_max_us,
            self.delay_min_us
        );
    }
}

/// A scheduled network partition: from `start_us` (inclusive) to
/// `heal_us` (exclusive), messages between `side` and its complement are
/// dropped at delivery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Virtual time the cut appears, µs.
    pub start_us: u64,
    /// Virtual time the cut heals, µs.
    pub heal_us: u64,
    /// Node ids on one side of the cut (the complement forms the other).
    pub side: Vec<usize>,
}

/// A deterministic schedule of network faults, composing per-link
/// chaos, partition windows, and a node-level [`FaultPlan`].
///
/// ```
/// use lb_distributed::net::{LinkFaults, NetFaultPlan};
///
/// let plan = NetFaultPlan::new()
///     .loss(0.2)
///     .duplication(0.1)
///     .reordering(0.3)
///     .delay_us(100, 500)
///     .partition_at(10_000, 60_000, vec![0]);
/// assert!(plan.default_link().drop == 0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    default_link: LinkFaults,
    links: Vec<((usize, usize), LinkFaults)>,
    partitions: Vec<Partition>,
    node_faults: FaultPlan,
}

impl NetFaultPlan {
    /// A healthy network: default links, no partitions, no node faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the default-link drop probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.default_link.drop = p;
        self.default_link.validate();
        self
    }

    /// Sets the default-link duplication probability.
    pub fn duplication(mut self, p: f64) -> Self {
        self.default_link.duplicate = p;
        self.default_link.validate();
        self
    }

    /// Sets the default-link reorder probability.
    pub fn reordering(mut self, p: f64) -> Self {
        self.default_link.reorder = p;
        self.default_link.validate();
        self
    }

    /// Sets the default-link propagation-delay window, µs.
    pub fn delay_us(mut self, min: u64, max: u64) -> Self {
        self.default_link.delay_min_us = min;
        self.default_link.delay_max_us = max;
        self.default_link.validate();
        self
    }

    /// Overrides the fault model of the directed link `from → to`.
    pub fn link(mut self, from: usize, to: usize, faults: LinkFaults) -> Self {
        faults.validate();
        self.links.push(((from, to), faults));
        self
    }

    /// Schedules a partition separating `side` from every other node
    /// between `start_us` and `heal_us` (virtual time).
    ///
    /// # Panics
    ///
    /// Panics when `heal_us <= start_us`.
    pub fn partition_at(mut self, start_us: u64, heal_us: u64, side: Vec<usize>) -> Self {
        assert!(
            heal_us > start_us,
            "partition must heal after it starts ({heal_us} <= {start_us})"
        );
        self.partitions.push(Partition {
            start_us,
            heal_us,
            side,
        });
        self
    }

    /// Attaches a node-level fault plan; the async runtime maps its
    /// `(user, round)` entries onto best-reply update ticks.
    pub fn node_faults(mut self, plan: FaultPlan) -> Self {
        self.node_faults = plan;
        self
    }

    /// The embedded node-level fault plan.
    pub fn node_plan(&self) -> &FaultPlan {
        &self.node_faults
    }

    /// The default link fault model.
    pub fn default_link(&self) -> &LinkFaults {
        &self.default_link
    }

    /// The scheduled partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The fault model of the directed link `from → to` (the first
    /// matching override wins, like [`FaultPlan::action`]; otherwise the
    /// default link).
    pub fn link_faults(&self, from: usize, to: usize) -> &LinkFaults {
        self.links
            .iter()
            .find(|&&((f, t), _)| f == from && t == to)
            .map(|(_, l)| l)
            .unwrap_or(&self.default_link)
    }

    /// Whether `a` and `b` are on opposite sides of an active cut at
    /// virtual time `t_us`.
    pub fn partitioned(&self, a: usize, b: usize, t_us: u64) -> bool {
        self.partitions.iter().any(|p| {
            (p.start_us..p.heal_us).contains(&t_us) && (p.side.contains(&a) != p.side.contains(&b))
        })
    }
}

/// Counters describing what the network did to the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`VirtualNet::send`].
    pub sent: u64,
    /// Envelopes delivered to their destination.
    pub delivered: u64,
    /// Messages lost to the drop roll.
    pub dropped: u64,
    /// Extra copies injected by the duplication roll.
    pub duplicated: u64,
    /// Envelopes delivered out of send order on their link.
    pub reordered: u64,
    /// Envelopes destroyed by an active partition.
    pub partition_drops: u64,
    /// Payload bytes handed to [`VirtualNet::send`] (`size_of::<M>()`
    /// per message — the in-memory payload size, counted at send time
    /// whether or not the message survives the fault rolls).
    pub bytes: u64,
}

/// One queued delivery. Ordering compares `(at, tie)` only, so the heap
/// never needs `M: Ord` and ties break in enqueue order —
/// deterministic.
struct Env<M> {
    at: u64,
    tie: u64,
    from: usize,
    to: usize,
    /// Per-link send counter (both copies of a duplicate share it).
    send_seq: u64,
    /// Timers bypass the fault model and the reorder accounting.
    timer: bool,
    /// Causal trace context (both copies of a duplicate share it).
    ctx: Option<TraceContext>,
    msg: M,
}

impl<M> PartialEq for Env<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie
    }
}
impl<M> Eq for Env<M> {}
impl<M> PartialOrd for Env<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Env<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest delivery pops
        // first.
        (other.at, other.tie).cmp(&(self.at, self.tie))
    }
}

/// A delivered message: who sent it, who receives it, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Delivery time, virtual µs (the network clock after this step).
    pub at_us: u64,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Causal trace context the sender attached via
    /// [`VirtualNet::send_traced`] (`None` for plain sends and timers).
    /// A duplicated message delivers the same context twice.
    pub ctx: Option<TraceContext>,
    /// The payload.
    pub msg: M,
}

/// The seeded virtual network: a priority queue of in-flight envelopes
/// over a virtual clock, with the [`NetFaultPlan`] applied at send and
/// delivery time.
pub struct VirtualNet<M> {
    now: u64,
    queue: BinaryHeap<Env<M>>,
    tie: u64,
    rng: u64,
    plan: NetFaultPlan,
    nodes: usize,
    /// Per-directed-link next send sequence number.
    next_seq: Vec<u64>,
    /// Per-directed-link highest delivered sequence number (+1), for
    /// reorder detection.
    high_water: Vec<u64>,
    /// Partition windows whose start/heal boundary events have fired.
    started: Vec<bool>,
    healed: Vec<bool>,
    stats: NetStats,
    collector: Option<Arc<dyn Collector>>,
}

impl<M: Clone> VirtualNet<M> {
    /// Creates a network of `nodes` endpoints ruled by `plan`, with all
    /// fault rolls drawn from `seed`.
    pub fn new(nodes: usize, seed: u64, plan: NetFaultPlan) -> Self {
        let n_parts = plan.partitions.len();
        Self {
            now: 0,
            queue: BinaryHeap::new(),
            tie: 0,
            rng: seed ^ 0xA076_1D64_78BD_642F,
            plan,
            nodes,
            next_seq: vec![0; nodes * nodes],
            high_water: vec![0; nodes * nodes],
            started: vec![false; n_parts],
            healed: vec![false; n_parts],
            stats: NetStats::default(),
            collector: None,
        }
    }

    /// Attaches a telemetry collector for the `net.*` event family.
    pub fn collector(&mut self, collector: Arc<dyn Collector>) {
        self.collector = Some(collector);
    }

    /// The virtual clock, µs.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The fault plan ruling this network.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Whether `a` can currently reach `b` (no active cut between them).
    pub fn reachable(&self, a: usize, b: usize) -> bool {
        !self.plan.partitioned(a, b, self.now)
    }

    fn link_index(&self, from: usize, to: usize) -> usize {
        from * self.nodes + to
    }

    /// Sends `msg` from `from` to `to` at the current virtual time,
    /// rolling the link's fault model. Dropped messages (loss roll or
    /// active partition) still consume a send sequence number, so the
    /// receiver can detect the gap.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        self.send_inner(from, to, None, msg);
    }

    /// Like [`VirtualNet::send`], but attaches a causal
    /// [`TraceContext`] that rides the envelope to the receiver.
    ///
    /// Emits `xspan.send {t_us, trace, span, parent, from, to}` for
    /// every call — *before* the fault rolls, so a lost message leaves
    /// an `xspan.send` with no matching `xspan.recv` (that orphan is
    /// how loss is attributed to a link). A duplicated message delivers
    /// the same `span` id twice; fault events (`net.drop`, `net.dup`,
    /// `net.reorder`) carry the victim's `trace`/`span` ids.
    pub fn send_traced(&mut self, from: usize, to: usize, ctx: TraceContext, msg: M) {
        self.send_inner(from, to, Some(ctx), msg);
    }

    fn send_inner(&mut self, from: usize, to: usize, ctx: Option<TraceContext>, msg: M) {
        assert!(from < self.nodes && to < self.nodes, "node id out of range");
        self.stats.sent += 1;
        self.stats.bytes += std::mem::size_of::<M>() as u64;
        let li = self.link_index(from, to);
        let seq = self.next_seq[li];
        self.next_seq[li] += 1;

        if let (Some(ctx), Some(c)) = (ctx, enabled(self.collector.as_ref())) {
            c.emit(
                "xspan.send",
                &[
                    ("t_us", self.now.into()),
                    ("trace", ctx.trace.into()),
                    ("span", ctx.span.into()),
                    ("parent", ctx.parent.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ],
            );
        }

        // Partition at send time: the sender's packets die at the cut.
        if self.plan.partitioned(from, to, self.now) {
            self.stats.partition_drops += 1;
            return;
        }

        let faults = *self.plan.link_faults(from, to);
        if faults.drop > 0.0 && unit(&mut self.rng) < faults.drop {
            self.stats.dropped += 1;
            if let Some(c) = enabled(self.collector.as_ref()) {
                let mut fields = vec![
                    ("t_us", self.now.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ];
                if let Some(ctx) = ctx {
                    fields.push(("trace", ctx.trace.into()));
                    fields.push(("span", ctx.span.into()));
                }
                c.emit("net.drop", &fields);
            }
            return;
        }

        let copies = if faults.duplicate > 0.0 && unit(&mut self.rng) < faults.duplicate {
            self.stats.duplicated += 1;
            if let Some(c) = enabled(self.collector.as_ref()) {
                let mut fields = vec![
                    ("t_us", self.now.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ];
                if let Some(ctx) = ctx {
                    fields.push(("trace", ctx.trace.into()));
                    fields.push(("span", ctx.span.into()));
                }
                c.emit("net.dup", &fields);
            }
            2
        } else {
            1
        };

        for _ in 0..copies {
            let span = faults.delay_max_us - faults.delay_min_us;
            // A reorder roll triples the jitter window so this envelope
            // can be overtaken by later sends.
            let window = if faults.reorder > 0.0 && unit(&mut self.rng) < faults.reorder {
                span * 3 + 1
            } else {
                span + 1
            };
            let delay = faults.delay_min_us + (splitmix(&mut self.rng) % window);
            self.enqueue(from, to, seq, false, ctx, delay, msg.clone());
        }
    }

    /// Schedules a reliable timer: `msg` is delivered back to `node`
    /// exactly `after_us` from now, immune to the fault model.
    pub fn schedule(&mut self, node: usize, after_us: u64, msg: M) {
        assert!(node < self.nodes, "node id out of range");
        self.enqueue(node, node, 0, true, None, after_us, msg);
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &mut self,
        from: usize,
        to: usize,
        send_seq: u64,
        timer: bool,
        ctx: Option<TraceContext>,
        delay: u64,
        msg: M,
    ) {
        let env = Env {
            at: self.now + delay,
            tie: self.tie,
            from,
            to,
            send_seq,
            timer,
            ctx,
            msg,
        };
        self.tie += 1;
        self.queue.push(env);
    }

    /// Whether any envelope (message or timer) is still in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pops the next envelope, advances the clock to its delivery time,
    /// and returns it — or `None` when the network is idle. Envelopes
    /// that meet an active partition at delivery time are destroyed
    /// (their step returns the next survivor instead).
    pub fn step(&mut self) -> Option<Delivery<M>> {
        loop {
            let env = self.queue.pop()?;
            debug_assert!(env.at >= self.now, "virtual clock ran backwards");
            self.now = env.at;
            self.emit_partition_boundaries();

            if env.timer {
                return Some(Delivery {
                    at_us: env.at,
                    from: env.from,
                    to: env.to,
                    ctx: None,
                    msg: env.msg,
                });
            }

            // Partition at delivery time: in-flight packets die at the
            // cut too (the cut is a cut, not a send-side filter).
            if self.plan.partitioned(env.from, env.to, self.now) {
                self.stats.partition_drops += 1;
                continue;
            }

            let li = self.link_index(env.from, env.to);
            if env.send_seq < self.high_water[li] {
                self.stats.reordered += 1;
                if let Some(c) = enabled(self.collector.as_ref()) {
                    let mut fields = vec![
                        ("t_us", self.now.into()),
                        ("from", env.from.into()),
                        ("to", env.to.into()),
                        ("seq", env.send_seq.into()),
                    ];
                    if let Some(ctx) = env.ctx {
                        fields.push(("trace", ctx.trace.into()));
                        fields.push(("span", ctx.span.into()));
                    }
                    c.emit("net.reorder", &fields);
                }
            } else {
                self.high_water[li] = env.send_seq + 1;
            }
            self.stats.delivered += 1;
            if let (Some(ctx), Some(c)) = (env.ctx, enabled(self.collector.as_ref())) {
                c.emit(
                    "xspan.recv",
                    &[
                        ("t_us", self.now.into()),
                        ("trace", ctx.trace.into()),
                        ("span", ctx.span.into()),
                        ("from", env.from.into()),
                        ("to", env.to.into()),
                    ],
                );
            }
            return Some(Delivery {
                at_us: env.at,
                from: env.from,
                to: env.to,
                ctx: env.ctx,
                msg: env.msg,
            });
        }
    }

    /// Emits `net.partition` / `net.heal` for every window boundary the
    /// clock has crossed, exactly once each.
    fn emit_partition_boundaries(&mut self) {
        for (i, p) in self.plan.partitions.iter().enumerate() {
            if !self.started[i] && self.now >= p.start_us {
                self.started[i] = true;
                if let Some(c) = enabled(self.collector.as_ref()) {
                    c.emit(
                        "net.partition",
                        &[
                            ("t_us", p.start_us.into()),
                            ("side", p.side.len().into()),
                            ("heal_us", p.heal_us.into()),
                        ],
                    );
                }
            }
            if !self.healed[i] && self.now >= p.heal_us {
                self.healed[i] = true;
                if let Some(c) = enabled(self.collector.as_ref()) {
                    c.emit("net.heal", &[("t_us", p.heal_us.into())]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut VirtualNet<u32>) -> Vec<Delivery<u32>> {
        let mut out = Vec::new();
        while let Some(d) = net.step() {
            out.push(d);
        }
        out
    }

    #[test]
    fn healthy_network_delivers_in_order() {
        let mut net = VirtualNet::new(3, 1, NetFaultPlan::new().delay_us(10, 10));
        for k in 0..5 {
            net.send(0, 1, k);
        }
        let got = drain(&mut net);
        assert_eq!(
            got.iter().map(|d| d.msg).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(net.stats().delivered, 5);
        assert_eq!(net.stats().reordered, 0);
        assert_eq!(net.now(), 10);
    }

    #[test]
    fn same_seed_same_history() {
        let plan = || {
            NetFaultPlan::new()
                .loss(0.3)
                .duplication(0.2)
                .reordering(0.5)
                .delay_us(10, 300)
        };
        let run = |seed: u64| {
            let mut net = VirtualNet::new(4, seed, plan());
            for k in 0..50u32 {
                net.send((k % 3) as usize, 3, k);
            }
            (drain(&mut net), net.stats())
        };
        let (a, sa) = run(99);
        let (b, sb) = run(99);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, sc) = run(100);
        assert!(a != c || sa != sc, "different seeds should diverge");
    }

    #[test]
    fn loss_one_drops_everything_loss_zero_drops_nothing() {
        let mut lossy = VirtualNet::new(2, 7, NetFaultPlan::new().loss(1.0));
        let mut clean = VirtualNet::new(2, 7, NetFaultPlan::new());
        for k in 0..20u32 {
            lossy.send(0, 1, k);
            clean.send(0, 1, k);
        }
        assert!(drain(&mut lossy).is_empty());
        assert_eq!(lossy.stats().dropped, 20);
        assert_eq!(drain(&mut clean).len(), 20);
        assert_eq!(clean.stats().dropped, 0);
    }

    #[test]
    fn duplication_delivers_copies_and_reorder_is_detected() {
        let mut net = VirtualNet::new(
            2,
            11,
            NetFaultPlan::new()
                .duplication(1.0)
                .delay_us(0, 500)
                .reordering(0.8),
        );
        for k in 0..30u32 {
            net.send(0, 1, k);
        }
        let got = drain(&mut net);
        assert_eq!(got.len(), 60, "every message delivered twice");
        assert_eq!(net.stats().duplicated, 30);
        assert!(net.stats().reordered > 0, "wide jitter must reorder");
    }

    #[test]
    fn partition_cuts_both_directions_then_heals() {
        let plan = NetFaultPlan::new()
            .delay_us(5, 5)
            .partition_at(100, 200, vec![0]);
        let mut net = VirtualNet::new(2, 3, plan);
        // Before the cut: delivered.
        net.send(0, 1, 1);
        assert_eq!(net.step().unwrap().msg, 1);
        // Walk the clock into the window with timers, then send across
        // the cut both ways.
        net.schedule(0, 145, 0);
        net.step();
        assert_eq!(net.now(), 150);
        assert!(!net.reachable(0, 1));
        net.send(0, 1, 2);
        net.send(1, 0, 3);
        assert!(net.step().is_none());
        assert_eq!(net.stats().partition_drops, 2);
        // After heal: flows again.
        net.schedule(0, 100, 0);
        net.step();
        assert!(net.reachable(0, 1));
        net.send(1, 0, 4);
        assert_eq!(net.step().unwrap().msg, 4);
    }

    #[test]
    fn in_flight_messages_die_at_the_cut() {
        // Sent at t=0 with delay 150, the cut at t=100 kills it mid-air.
        let plan = NetFaultPlan::new()
            .delay_us(150, 150)
            .partition_at(100, 1_000_000, vec![0]);
        let mut net = VirtualNet::new(2, 5, plan);
        net.send(0, 1, 9);
        assert!(net.step().is_none());
        assert_eq!(net.stats().partition_drops, 1);
    }

    #[test]
    fn timers_are_immune_to_faults() {
        let mut net = VirtualNet::new(
            2,
            13,
            NetFaultPlan::new()
                .loss(1.0)
                .partition_at(0, 1_000, vec![0]),
        );
        net.schedule(0, 50, 7);
        let d = net.step().unwrap();
        assert_eq!((d.from, d.to, d.msg, d.at_us), (0, 0, 7, 50));
    }

    #[test]
    fn per_link_override_beats_default() {
        let plan = NetFaultPlan::new()
            .loss(1.0)
            .link(0, 1, LinkFaults::default());
        let mut net = VirtualNet::new(3, 17, plan);
        net.send(0, 1, 1); // overridden link: clean
        net.send(0, 2, 2); // default link: loss = 1
        assert_eq!(drain(&mut net).len(), 1);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn partition_boundary_events_fire_once() {
        use lb_telemetry::MemoryCollector;
        let collector = Arc::new(MemoryCollector::default());
        let plan = NetFaultPlan::new().partition_at(10, 20, vec![0]);
        let mut net: VirtualNet<u32> = VirtualNet::new(2, 1, plan);
        net.collector(collector.clone());
        for k in 0..5 {
            net.schedule(0, 8 + 4 * k, 0);
        }
        drain(&mut net);
        assert_eq!(collector.count("net.partition"), 1);
        assert_eq!(collector.count("net.heal"), 1);
    }

    #[test]
    fn trace_context_survives_chaos_and_dup_repeats_the_span() {
        use lb_telemetry::{FieldValue, MemoryCollector};
        let collector = Arc::new(MemoryCollector::default());
        let plan = NetFaultPlan::new()
            .loss(0.3)
            .duplication(0.4)
            .reordering(0.6)
            .delay_us(0, 400);
        let mut net: VirtualNet<u32> = VirtualNet::new(2, 21, plan);
        net.collector(collector.clone());
        for k in 0..40u64 {
            let ctx = TraceContext::root(1000 + k, 2000 + k);
            net.send_traced(0, 1, ctx, k as u32);
        }
        let mut deliveries = Vec::new();
        while let Some(d) = net.step() {
            deliveries.push(d);
        }
        let stats = net.stats();
        assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.reordered > 0);

        // Every traced send left an xspan.send; every delivery (copies
        // included) left an xspan.recv with an intact context.
        assert_eq!(collector.count("xspan.send"), 40);
        assert_eq!(collector.count("xspan.recv") as u64, stats.delivered);
        for d in &deliveries {
            let ctx = d.ctx.expect("traced sends deliver their context");
            assert_eq!(ctx.trace, 1000 + u64::from(d.msg));
            assert_eq!(ctx.span, 2000 + u64::from(d.msg));
        }

        // A duplicated message delivers the SAME span id twice: count
        // recv events per span id and check multiplicity matches dup.
        let field_u64 = |fields: &[(&str, FieldValue)], key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    FieldValue::U64(u) => Some(*u),
                    _ => None,
                })
                .unwrap()
        };
        let mut per_span = std::collections::BTreeMap::new();
        let mut drop_spans = 0u64;
        for (name, fields) in collector.events() {
            match name {
                "xspan.recv" => *per_span.entry(field_u64(&fields, "span")).or_insert(0u64) += 1,
                "net.drop" => {
                    assert!(field_u64(&fields, "span") >= 2000, "drop names its victim");
                    drop_spans += 1;
                }
                _ => {}
            }
        }
        assert_eq!(drop_spans, stats.dropped);
        let twice = per_span.values().filter(|&&n| n == 2).count() as u64;
        assert_eq!(twice, stats.duplicated, "each dup repeats one span id");
        assert!(per_span.keys().all(|&s| (2000..2040).contains(&s)));
    }

    #[test]
    fn untraced_sends_and_timers_carry_no_context() {
        let collector = Arc::new(lb_telemetry::MemoryCollector::default());
        let mut net: VirtualNet<u32> = VirtualNet::new(2, 1, NetFaultPlan::new());
        net.collector(collector.clone());
        net.send(0, 1, 1);
        net.schedule(1, 5, 2);
        while let Some(d) = net.step() {
            assert_eq!(d.ctx, None);
        }
        assert_eq!(collector.count("xspan.send"), 0);
        assert_eq!(collector.count("xspan.recv"), 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        NetFaultPlan::new().loss(1.5);
    }

    #[test]
    #[should_panic(expected = "heal")]
    fn rejects_inverted_partition_window() {
        NetFaultPlan::new().partition_at(50, 50, vec![0]);
    }
}
