//! The shared load board: the observable state of the computers.
//!
//! In the paper each user estimates the available processing rate of every
//! computer "by statistical estimation of the run queue length". The
//! board is that observable surface: it records each user's current flow
//! to each computer; a user derives any computer's total load (and thus
//! its available rate) from it without ever reading another user's
//! strategy object.
//!
//! Only the token holder mutates the board, but all user threads share it,
//! so it sits behind a `parking_lot::RwLock`.

use parking_lot::RwLock;

/// Shared `m × n` matrix of user→computer flows (jobs/s).
#[derive(Debug)]
pub struct LoadBoard {
    flows: RwLock<Vec<Vec<f64>>>,
    users: usize,
    computers: usize,
}

impl LoadBoard {
    /// An all-zero board for `users × computers` (the NASH_0 start state:
    /// nobody has placed any flow yet).
    pub fn new(users: usize, computers: usize) -> Self {
        Self {
            flows: RwLock::new(vec![vec![0.0; computers]; users]),
            users,
            computers,
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of computers.
    pub fn computers(&self) -> usize {
        self.computers
    }

    /// Seeds every user's row (e.g. the NASH_P proportional start).
    ///
    /// # Panics
    ///
    /// Panics if `rows` has the wrong shape.
    pub fn seed(&self, rows: &[Vec<f64>]) {
        assert_eq!(rows.len(), self.users, "seed row count");
        let mut guard = self.flows.write();
        for (dst, src) in guard.iter_mut().zip(rows) {
            assert_eq!(src.len(), self.computers, "seed column count");
            dst.clone_from(src);
        }
    }

    /// Replaces user `j`'s flow row.
    ///
    /// # Panics
    ///
    /// Panics on a bad index or row length.
    pub fn publish(&self, j: usize, row: &[f64]) {
        assert!(j < self.users, "user index {j}");
        assert_eq!(row.len(), self.computers, "row length");
        self.flows.write()[j].copy_from_slice(row);
    }

    /// Total flow at each computer: `λ_i = Σ_j flow[j][i]`.
    pub fn total_flows(&self) -> Vec<f64> {
        let mut totals = Vec::new();
        self.total_flows_into(&mut totals);
        totals
    }

    /// [`LoadBoard::total_flows`] written into a reused buffer, so the
    /// per-token hot path of the ring runtime stays allocation-free.
    pub fn total_flows_into(&self, totals: &mut Vec<f64>) {
        totals.clear();
        totals.resize(self.computers, 0.0);
        let guard = self.flows.read();
        for row in guard.iter() {
            for (t, &x) in totals.iter_mut().zip(row) {
                *t += x;
            }
        }
    }

    /// Total flow at each computer *excluding* user `j`'s contribution —
    /// what user `j` needs for its available rates.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn flows_excluding(&self, j: usize) -> Vec<f64> {
        let mut totals = Vec::new();
        self.flows_excluding_into(j, &mut totals);
        totals
    }

    /// [`LoadBoard::flows_excluding`] written into a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn flows_excluding_into(&self, j: usize, totals: &mut Vec<f64>) {
        assert!(j < self.users, "user index {j}");
        totals.clear();
        totals.resize(self.computers, 0.0);
        let guard = self.flows.read();
        for (k, row) in guard.iter().enumerate() {
            if k == j {
                continue;
            }
            for (t, &x) in totals.iter_mut().zip(row) {
                *t += x;
            }
        }
    }

    /// Snapshot of user `j`'s current row.
    pub fn row(&self, j: usize) -> Vec<f64> {
        self.flows.read()[j].clone()
    }

    /// [`LoadBoard::row`] copied into a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn row_into(&self, j: usize, out: &mut Vec<f64>) {
        let guard = self.flows.read();
        out.clear();
        out.extend_from_slice(&guard[j]);
    }

    /// Zeroes user `j`'s row. The runtime calls this when it declares a
    /// user failed: a dead user sends no jobs, so its flow must stop
    /// loading the computers before the survivors re-converge.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn clear_row(&self, j: usize) {
        assert!(j < self.users, "user index {j}");
        self.flows.write()[j].fill(0.0);
    }

    /// Zeroes computer `i`'s column across every user. The runtime calls
    /// this when a *computer* crashes: flow routed to a dead computer is
    /// not being served, so leaving it on the board would make every
    /// user's availability estimate lie about the survivors' headroom.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn clear_column(&self, i: usize) {
        assert!(i < self.computers, "computer index {i}");
        let mut guard = self.flows.write();
        for row in guard.iter_mut() {
            row[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let b = LoadBoard::new(2, 3);
        assert_eq!(b.users(), 2);
        assert_eq!(b.computers(), 3);
        assert_eq!(b.total_flows(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn publish_and_aggregate() {
        let b = LoadBoard::new(2, 2);
        b.publish(0, &[1.0, 2.0]);
        b.publish(1, &[0.5, 0.0]);
        assert_eq!(b.total_flows(), vec![1.5, 2.0]);
        assert_eq!(b.flows_excluding(0), vec![0.5, 0.0]);
        assert_eq!(b.flows_excluding(1), vec![1.0, 2.0]);
        assert_eq!(b.row(0), vec![1.0, 2.0]);
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        let b = LoadBoard::new(2, 2);
        b.publish(0, &[1.0, 2.0]);
        b.publish(1, &[0.5, 0.0]);
        // Buffers carry garbage of the wrong length; every call must
        // leave exactly the same contents as the allocating variant.
        let mut buf = vec![9.0; 5];
        b.total_flows_into(&mut buf);
        assert_eq!(buf, b.total_flows());
        b.flows_excluding_into(1, &mut buf);
        assert_eq!(buf, b.flows_excluding(1));
        b.row_into(0, &mut buf);
        assert_eq!(buf, b.row(0));
    }

    #[test]
    fn republish_overwrites() {
        let b = LoadBoard::new(1, 2);
        b.publish(0, &[1.0, 0.0]);
        b.publish(0, &[0.0, 3.0]);
        assert_eq!(b.total_flows(), vec![0.0, 3.0]);
    }

    #[test]
    fn seed_sets_all_rows() {
        let b = LoadBoard::new(2, 2);
        b.seed(&[vec![1.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(b.total_flows(), vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn publish_checks_shape() {
        LoadBoard::new(1, 2).publish(0, &[1.0]);
    }

    #[test]
    fn clear_row_removes_a_failed_users_load() {
        let b = LoadBoard::new(2, 2);
        b.publish(0, &[1.0, 2.0]);
        b.publish(1, &[0.5, 0.5]);
        b.clear_row(0);
        assert_eq!(b.row(0), vec![0.0, 0.0]);
        assert_eq!(b.total_flows(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "user index")]
    fn clear_row_checks_index() {
        LoadBoard::new(1, 1).clear_row(1);
    }

    #[test]
    fn clear_column_removes_a_dead_computers_load() {
        let b = LoadBoard::new(2, 3);
        b.publish(0, &[1.0, 2.0, 3.0]);
        b.publish(1, &[0.5, 0.5, 0.5]);
        b.clear_column(1);
        assert_eq!(b.total_flows(), vec![1.5, 0.0, 3.5]);
        assert_eq!(b.row(0), vec![1.0, 0.0, 3.0]);
        assert_eq!(b.row(1), vec![0.5, 0.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "computer index")]
    fn clear_column_checks_index() {
        LoadBoard::new(1, 1).clear_column(1);
    }

    #[test]
    fn concurrent_reads_do_not_block() {
        use std::sync::Arc;
        let b = Arc::new(LoadBoard::new(4, 4));
        b.publish(0, &[1.0, 0.0, 0.0, 0.0]);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let t = b.total_flows();
                        assert_eq!(t.len(), 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
