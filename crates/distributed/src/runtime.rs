//! The fault-tolerant threaded token-ring runtime for the distributed
//! NASH algorithm.
//!
//! One OS thread per user, connected in a ring by unbounded crossbeam
//! channels. The control token ([`crate::messages::Token`]) circulates
//! round-robin exactly as in the paper's pseudocode; strategies are
//! *never* exchanged — users observe each other only through the shared
//! [`crate::board::LoadBoard`], matching the paper's run-queue-inspection
//! model. The ring tail (the highest-indexed live user) owns the
//! convergence test and initiates a final terminate lap; every user then
//! reports its strategy to the coordinator and exits.
//!
//! # Failure model
//!
//! Unlike the paper's idealized protocol, this runtime survives crash,
//! omission and timing faults (injectable deterministically via
//! [`crate::fault::FaultPlan`]):
//!
//! * every receive — user and coordinator alike — carries a timeout, so a
//!   lost token can never hang the run;
//! * every token forward is announced to the coordinator, which tracks
//!   the expected holder; when no progress happens for
//!   [`DistributedNash::round_timeout`], the holder is declared failed,
//!   its board row is zeroed, the ring is spliced around it, and the
//!   token is regenerated under a new *epoch* (stale tokens from the old
//!   epoch are dropped on receipt);
//! * each user also keeps a channel to its successor's successor: when a
//!   forward fails because the successor's thread is gone, the user
//!   splices around it immediately and tells the coordinator, without
//!   waiting for the timeout;
//! * survivors then re-converge on the residual capacity, and the
//!   [`DistributedOutcome`] names the failed users instead of discarding
//!   the partial result;
//! * *computer* failures (crash / degrade / recover, injected as
//!   [`crate::capacity::CapacityEvent`]s through the plan) are applied by
//!   the coordinator between rounds: it updates the capacity vector,
//!   zeroes crashed computers' board columns, runs the configured
//!   [`OverloadPolicy`] to shed load if the survivors cannot carry the
//!   nominal demand, bumps the epoch and reconfigures every user with
//!   the new rates before regenerating the token. The admission
//!   decisions are logged as the outcome's
//!   [`shed trajectory`](DistributedOutcome::shed_trajectory). Capacity
//!   events scheduled at or after the round that decides termination are
//!   ignored (the ring is already draining).
//!
//! The failure detector is timeout-based and therefore *not* perfect: a
//! user that is merely slower than `round_timeout` (e.g. a
//! [`crate::fault::FaultAction::DelayForward`] longer than the patience)
//! is declared failed, shut down, and excluded like a real crash. That is
//! the standard trade-off of synchronous-detector designs; pick a
//! `round_timeout` comfortably above the per-round compute time.

use crate::board::LoadBoard;
use crate::capacity::{CapacityEvent, ShedRecord};
use crate::fault::{FaultAction, FaultPlan};
use crate::messages::{FinalReport, Reconfigure, RingMsg, Termination, Token};
use crate::observer::{ObservationModel, Observer};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, SendError, Sender};
use lb_game::best_reply::water_fill_flows;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::overload::{shed_to_feasible, OverloadPolicy};
use lb_game::stopping::{relative_regret, user_regret};
use lb_game::strategy::{Strategy, StrategyProfile};
use lb_game::{Certificate, StoppingRule};
use lb_stats::IterationTrace;
use lb_telemetry::{Collector, Field, Span};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often an idle user thread wakes up to check the stop flag.
const IDLE_CHECK: Duration = Duration::from_millis(50);

/// Initial board state, mirroring the paper's two NASH variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingInit {
    /// NASH_0: the board starts empty.
    Zero,
    /// NASH_P: every user starts with the proportional flow split.
    Proportional,
}

/// Configuration for a distributed NASH run.
#[derive(Clone)]
pub struct DistributedNash {
    init: RingInit,
    observation: ObservationModel,
    tolerance: f64,
    stopping: StoppingRule,
    max_rounds: u32,
    round_timeout: Duration,
    run_deadline: Option<Duration>,
    faults: Arc<FaultPlan>,
    overload_policy: OverloadPolicy,
    collector: Option<Arc<dyn Collector>>,
}

impl fmt::Debug for DistributedNash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedNash")
            .field("init", &self.init)
            .field("observation", &self.observation)
            .field("tolerance", &self.tolerance)
            .field("stopping", &self.stopping)
            .field("max_rounds", &self.max_rounds)
            .field("round_timeout", &self.round_timeout)
            .field("run_deadline", &self.run_deadline)
            .field("faults", &self.faults)
            .field("overload_policy", &self.overload_policy)
            .field(
                "collector",
                &self.collector.as_ref().map(|_| "<dyn Collector>"),
            )
            .finish()
    }
}

impl DistributedNash {
    /// Paper defaults: NASH_P start, exact observation, ε = 1e-4, at most
    /// 500 rounds, a 5 s token timeout, no overall deadline, no faults,
    /// and the [`OverloadPolicy::Reject`] overload policy.
    pub fn new() -> Self {
        Self {
            init: RingInit::Proportional,
            observation: ObservationModel::Exact,
            tolerance: 1e-4,
            stopping: StoppingRule::default(),
            max_rounds: 500,
            round_timeout: Duration::from_secs(5),
            run_deadline: None,
            faults: Arc::new(FaultPlan::new()),
            overload_policy: OverloadPolicy::Reject,
            collector: None,
        }
    }

    /// Selects the initial board state.
    pub fn init(mut self, init: RingInit) -> Self {
        self.init = init;
        self
    }

    /// Selects how users observe available rates.
    pub fn observation(mut self, model: ObservationModel) -> Self {
        self.observation = model;
        self
    }

    /// Sets the convergence tolerance ε. Under the default
    /// [`StoppingRule::CertifiedGap`] this is the certified relative
    /// gap; under the norm rules it is the norm threshold.
    pub fn tolerance(mut self, eps: f64) -> Self {
        self.tolerance = eps;
        if let StoppingRule::CertifiedGap { epsilon } = &mut self.stopping {
            *epsilon = eps;
        }
        self
    }

    /// Selects the ring tail's convergence criterion. Passing
    /// [`StoppingRule::CertifiedGap`] also adopts its ε as the
    /// tolerance, mirroring [`lb_game::nash::NashSolver`].
    pub fn stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        if let StoppingRule::CertifiedGap { epsilon } = rule {
            self.tolerance = epsilon;
        }
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the failure detector's patience: if the coordinator sees no
    /// ring progress for this long, it declares the expected token holder
    /// failed and regenerates the token. Must exceed the per-round
    /// compute time by a healthy margin.
    pub fn round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Sets a hard wall-clock deadline for the whole run. When it
    /// expires, `run` returns [`GameError::RingTimeout`] instead of
    /// continuing to repair.
    pub fn run_deadline(mut self, deadline: Duration) -> Self {
        self.run_deadline = Some(deadline);
        self
    }

    /// Installs a deterministic fault-injection plan (see
    /// [`crate::fault`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Arc::new(plan);
        self
    }

    /// Selects what the coordinator does when capacity churn makes the
    /// nominal demand infeasible: abort with [`GameError::Overloaded`]
    /// ([`OverloadPolicy::Reject`], the default) or shed load and keep
    /// running ([`OverloadPolicy::ShedProportional`] /
    /// [`OverloadPolicy::ShedMaxMin`]).
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload_policy = policy;
        self
    }

    /// Attaches a telemetry collector. The coordinator then emits the
    /// `ring.*` event family — `ring.start`, one `ring.hop` per token
    /// forward, `ring.round` per completed round, plus `ring.splice`,
    /// `ring.fault`, `ring.token_lost`, `ring.capacity`, `ring.shed`,
    /// `ring.epoch`, `ring.report` and `ring.done` as the run unfolds.
    /// All events are emitted from the coordinator thread *after* the
    /// state change they describe, so the run's results (trace, profile,
    /// shed trajectory) are identical with or without a collector.
    pub fn collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs the ring to termination and collects the outcome, treating an
    /// exhausted round budget as an error (the historical behavior).
    ///
    /// # Errors
    ///
    /// * [`GameError::DidNotConverge`] when the round budget ran out.
    /// * [`GameError::RingTimeout`] when the deadline expired or no users
    ///   survived to produce a result.
    /// * [`GameError::InfeasibleStrategy`] on protocol violations
    ///   (duplicate or missing reports).
    pub fn run(&self, model: &SystemModel) -> Result<DistributedOutcome, GameError> {
        let outcome = self.run_to_outcome(model)?;
        if outcome.termination() == Termination::Exhausted {
            return Err(GameError::DidNotConverge {
                iterations: outcome.rounds(),
                final_norm: outcome.trace().last().unwrap_or(f64::INFINITY),
            });
        }
        Ok(outcome)
    }

    /// Runs the ring to termination and returns the outcome even when
    /// the round budget was exhausted ([`Termination::Exhausted`]), so
    /// callers can inspect the partial state instead of discarding it.
    ///
    /// # Errors
    ///
    /// * [`GameError::ZeroIterationBudget`] when `max_rounds == 0`, and
    ///   [`GameError::ZeroDuration`] when `round_timeout` or
    ///   `run_deadline` is zero — such a run could not be reported
    ///   honestly, so it is rejected before any thread spawns.
    /// * [`GameError::RingTimeout`] when the deadline expired or no users
    ///   survived to produce a result.
    /// * [`GameError::InfeasibleStrategy`] on protocol violations
    ///   (duplicate or missing reports).
    pub fn run_to_outcome(&self, model: &SystemModel) -> Result<DistributedOutcome, GameError> {
        // A zero budget or a zero timeout cannot produce an honest
        // outcome: no round can both run and be timed. Reject up front
        // (mirrors the solver-side `max_iterations == 0` check).
        if self.max_rounds == 0 {
            return Err(GameError::ZeroIterationBudget);
        }
        if self.round_timeout.is_zero() {
            return Err(GameError::ZeroDuration {
                what: "round_timeout",
            });
        }
        if self.run_deadline.is_some_and(|d| d.is_zero()) {
            return Err(GameError::ZeroDuration {
                what: "run_deadline",
            });
        }
        let m = model.num_users();
        let n = model.num_computers();
        let board = Arc::new(LoadBoard::new(m, n));
        match self.init {
            RingInit::Zero => {}
            RingInit::Proportional => {
                let total: f64 = model.computer_rates().iter().sum();
                let rows: Vec<Vec<f64>> = (0..m)
                    .map(|j| {
                        let phi = model.user_rate(j);
                        model
                            .computer_rates()
                            .iter()
                            .map(|mu| phi * mu / total)
                            .collect()
                    })
                    .collect();
                board.seed(&rows);
            }
        }

        // Initial D_j must be computed from the seeded board *before* any
        // user starts updating — doing it inside each thread would race
        // with earlier users' round-0 publishes.
        let initial_d: Vec<f64> = {
            let totals = board.total_flows();
            let mut row = Vec::with_capacity(n);
            (0..m)
                .map(|j| {
                    board.row_into(j, &mut row);
                    let phi = model.user_rate(j);
                    row.iter()
                        .enumerate()
                        .filter(|(_, &x)| x > 0.0)
                        .map(|(i, &x)| {
                            x / phi
                                * lb_queueing::mm1::response_time(totals[i], model.computer_rate(i))
                        })
                        .sum()
                })
                .collect()
        };

        // Ring channels: user j receives on rxs[j], sends to txs[(j+1)%m].
        // The receivers move into the threads — the coordinator must not
        // hold clones, so that a dead user makes sends to it fail and the
        // fast splice path can trigger.
        let mut rxs: Vec<Option<Receiver<RingMsg>>> = Vec::with_capacity(m);
        let mut txs: Vec<Sender<RingMsg>> = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let (event_tx, event_rx) = unbounded::<Event>();
        let stop = Arc::new(AtomicBool::new(false));

        if let Some(c) = lb_telemetry::enabled(self.collector.as_ref()) {
            c.emit(
                "ring.start",
                &[
                    (
                        "init",
                        match self.init {
                            RingInit::Zero => "NASH_0",
                            RingInit::Proportional => "NASH_P",
                        }
                        .into(),
                    ),
                    ("users", m.into()),
                    ("computers", n.into()),
                    ("tolerance", self.tolerance.into()),
                    ("stopping", self.stopping.label().into()),
                    ("max_rounds", self.max_rounds.into()),
                ],
            );
        }

        let mut handles = Vec::with_capacity(m);
        for (j, rx) in rxs.iter_mut().enumerate() {
            let ctx = UserContext {
                user: j,
                is_tail: j == m - 1,
                epoch: 0,
                mu: model.computer_rates().to_vec(),
                phi: model.user_rate(j),
                board: Arc::clone(&board),
                rx: rx.take().expect("receiver moved twice"),
                next_id: (j + 1) % m,
                next: txs[(j + 1) % m].clone(),
                next2_id: (j + 2) % m,
                next2: txs[(j + 2) % m].clone(),
                events: event_tx.clone(),
                observer: Observer::new(self.observation, j),
                tolerance: self.tolerance,
                stopping: self.stopping,
                max_rounds: self.max_rounds,
                initial_d: initial_d[j],
                faults: Arc::clone(&self.faults),
                stop: Arc::clone(&stop),
                scratch_others: Vec::with_capacity(n),
                scratch_totals: Vec::with_capacity(n),
                scratch_row: Vec::with_capacity(n),
            };
            handles.push(
                thread::Builder::new()
                    .name(format!("nash-user-{j}"))
                    .spawn(move || user_main(ctx))
                    .expect("failed to spawn user thread"),
            );
        }
        drop(event_tx);

        // Root span for the whole distributed run; the coordinator rolls
        // `ring.round` / `ring.hold` children under it as the token moves.
        let run_span = Span::root(
            self.collector.as_ref(),
            "ring.run",
            &[("users", m.into()), ("computers", n.into())],
        );
        let mut coord = Coordinator {
            m,
            board: Arc::clone(&board),
            txs,
            events: event_rx,
            alive: vec![true; m],
            failed: Vec::new(),
            reports: (0..m).map(|_| None).collect(),
            epoch: 0,
            holder: 0,
            mirror: Vec::new(),
            termination: None,
            round_timeout: self.round_timeout,
            nominal_mu: model.computer_rates().to_vec(),
            current_mu: model.computer_rates().to_vec(),
            nominal_phi: model.user_rates().to_vec(),
            current_phi: model.user_rates().to_vec(),
            policy: self.overload_policy,
            faults: Arc::clone(&self.faults),
            shed_log: Vec::new(),
            collector: self.collector.clone(),
            hold_span: None,
            round_span: None,
            run_span,
        };
        coord.inject(0, Token::initial());
        let driven = coord.drive(self.run_deadline);

        // Teardown runs on every path, success or error: raise the stop
        // flag, nudge any parked threads, and reap them all (panicked
        // threads return Err from join — that is the expected fate of
        // fault-injected users, so it is ignored).
        stop.store(true, Ordering::Relaxed);
        for tx in &coord.txs {
            let _ = tx.send(RingMsg::Shutdown);
        }
        for h in handles {
            let _ = h.join();
        }
        driven?;

        let termination = coord
            .termination
            .expect("coordinator loop ended without termination");
        let rounds = coord.mirror.len() as u32;
        let mut rows = Vec::new();
        let mut user_times = Vec::new();
        let mut survivors = Vec::new();
        let mut total_updates = 0;
        for (j, slot) in coord.reports.iter_mut().enumerate() {
            if !coord.alive[j] {
                continue;
            }
            let r = slot.take().ok_or_else(|| GameError::InfeasibleStrategy {
                reason: format!("missing final report from user {j}"),
            })?;
            rows.push(Strategy::new(r.fractions)?);
            user_times.push(r.response_time);
            total_updates += r.updates;
            survivors.push(j);
        }
        // Final admission picture: failed users carry zero admitted/shed
        // (their loss is reported via `failed_users`, not as shedding).
        let mut admitted_rates = coord.current_phi.clone();
        let mut shed_rates: Vec<f64> = coord
            .nominal_phi
            .iter()
            .zip(&coord.current_phi)
            .map(|(&nom, &adm)| (nom - adm).max(0.0))
            .collect();
        for j in 0..m {
            if !coord.alive[j] {
                admitted_rates[j] = 0.0;
                shed_rates[j] = 0.0;
            }
        }
        let degraded = coord
            .current_mu
            .iter()
            .zip(&coord.nominal_mu)
            .enumerate()
            .filter(|(_, (&cur, &nom))| cur < nom)
            .map(|(i, _)| i)
            .collect();
        coord.finish_run_span(termination_label(termination));
        if let Some(c) = lb_telemetry::enabled(self.collector.as_ref()) {
            c.emit(
                "ring.done",
                &[
                    ("rounds", rounds.into()),
                    ("termination", termination_label(termination).into()),
                    ("failed", coord.failed.len().into()),
                    ("survivors", survivors.len().into()),
                    ("total_updates", total_updates.into()),
                ],
            );
        }
        Ok(DistributedOutcome {
            profile: StrategyProfile::new(rows)?,
            trace: coord.mirror.iter().copied().collect(),
            rounds,
            user_times,
            total_updates,
            failed: coord.failed.clone(),
            survivors,
            termination,
            admitted_rates,
            shed_rates,
            degraded,
            capacity: coord.current_mu.clone(),
            shed_log: coord.shed_log.clone(),
        })
    }
}

impl Default for DistributedNash {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a distributed run (converged, exhausted, or repaired after
/// failures — see [`DistributedOutcome::termination`] and
/// [`DistributedOutcome::failed_users`]).
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    profile: StrategyProfile,
    trace: IterationTrace,
    rounds: u32,
    user_times: Vec<f64>,
    total_updates: u32,
    failed: Vec<usize>,
    survivors: Vec<usize>,
    termination: Termination,
    admitted_rates: Vec<f64>,
    shed_rates: Vec<f64>,
    degraded: Vec<usize>,
    capacity: Vec<f64>,
    shed_log: Vec<ShedRecord>,
}

impl DistributedOutcome {
    /// The equilibrium profile assembled from the *surviving* users'
    /// reports, one row per entry of [`DistributedOutcome::survivors`]
    /// in ascending user index.
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// Per-round norms (the distributed Figure-2 series).
    pub fn trace(&self) -> &IterationTrace {
        &self.trace
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Each surviving user's final self-reported `D_j` (aligned with
    /// [`DistributedOutcome::survivors`]).
    pub fn user_times(&self) -> &[f64] {
        &self.user_times
    }

    /// Total best replies computed across the ring.
    pub fn total_updates(&self) -> u32 {
        self.total_updates
    }

    /// Users declared failed during the run, in detection order.
    pub fn failed_users(&self) -> &[usize] {
        &self.failed
    }

    /// Users that survived to report, in ascending index order.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }

    /// How the ring terminated.
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// Whether the final completed round met the convergence tolerance.
    pub fn converged(&self) -> bool {
        self.termination == Termination::Converged
    }

    /// Per-user arrival rates the final admission decision shed
    /// (full-length, indexed by user; zero when nothing was shed and for
    /// failed users, whose loss is reported via
    /// [`DistributedOutcome::failed_users`] instead).
    pub fn shed_rates(&self) -> &[f64] {
        &self.shed_rates
    }

    /// Per-user arrival rates the final admission decision admitted
    /// (full-length; equal to the nominal rates when nothing was shed,
    /// zero for failed users).
    pub fn admitted_rates(&self) -> &[f64] {
        &self.admitted_rates
    }

    /// Computers running below their nominal rate at the end of the run
    /// (crashed or degraded), in index order.
    pub fn degraded_computers(&self) -> &[usize] {
        &self.degraded
    }

    /// The capacity vector in force at the end of the run (0 = crashed).
    pub fn final_capacity(&self) -> &[f64] {
        &self.capacity
    }

    /// Every admission-control decision the coordinator took, in order.
    /// Byte-identical across runs with the same model, plan and policy —
    /// the trajectory depends only on the event schedule and the nominal
    /// rates, never on thread timing.
    pub fn shed_trajectory(&self) -> &[ShedRecord] {
        &self.shed_log
    }
}

/// Static label for telemetry `termination` fields.
fn termination_label(t: Termination) -> &'static str {
    match t {
        Termination::Continue => "continue",
        Termination::Converged => "converged",
        Termination::Exhausted => "exhausted",
    }
}

/// Progress reports from user threads to the coordinator. Every token
/// forward is announced, so the coordinator always knows which user
/// should be holding the token — that user is the suspect when the ring
/// goes quiet.
enum Event {
    /// A user handed the token to `to`.
    Forwarded { to: usize, epoch: u32 },
    /// The tail completed a round with this norm (and possibly decided
    /// termination). `certificate` carries the round's certified
    /// relative regret bound when the stopping rule computes one.
    RoundComplete {
        norm: f64,
        certificate: Option<f64>,
        termination: Termination,
        epoch: u32,
    },
    /// A forward to `skipped` failed because its thread is gone; the
    /// sender spliced around it.
    Spliced { skipped: usize, epoch: u32 },
    /// A user's final report from the terminate lap.
    Report(FinalReport),
}

struct Coordinator {
    m: usize,
    board: Arc<LoadBoard>,
    txs: Vec<Sender<RingMsg>>,
    events: Receiver<Event>,
    alive: Vec<bool>,
    failed: Vec<usize>,
    reports: Vec<Option<FinalReport>>,
    epoch: u32,
    holder: usize,
    mirror: Vec<f64>,
    termination: Option<Termination>,
    round_timeout: Duration,
    /// Capacity vector the model started with (recovery target).
    nominal_mu: Vec<f64>,
    /// Capacity vector currently in force (0 = crashed).
    current_mu: Vec<f64>,
    /// Demand vector the model started with (re-admission target).
    nominal_phi: Vec<f64>,
    /// Per-user admitted rates currently in force.
    current_phi: Vec<f64>,
    policy: OverloadPolicy,
    faults: Arc<FaultPlan>,
    shed_log: Vec<ShedRecord>,
    collector: Option<Arc<dyn Collector>>,
    // Span fields are declared leaf-first so that, if the coordinator is
    // dropped on an error path, the implicit drop-closes arrive in
    // child-before-parent order.
    /// Open `ring.hold` span: the interval one user holds the token.
    hold_span: Option<Span>,
    /// Open `ring.round` span covering the round in progress.
    round_span: Option<Span>,
    /// Root `ring.run` span for the whole distributed computation.
    run_span: Option<Span>,
}

impl Coordinator {
    /// Emits a telemetry event if a collector is attached and enabled.
    /// Runs on the coordinator thread only, so the event stream has a
    /// single deterministic writer.
    fn emit(&self, name: &'static str, fields: &[Field]) {
        if let Some(c) = lb_telemetry::enabled(self.collector.as_ref()) {
            c.emit(name, fields);
        }
    }

    /// Lazily opens the `ring.round` span for the round in progress.
    /// The round index is the count of completed rounds so far; during
    /// the terminate lap that index equals the final round count, so the
    /// lap shows up as one last `ring.round` interval.
    fn ensure_round_span(&mut self) {
        if self.round_span.is_none() {
            if let Some(run) = &self.run_span {
                self.round_span = Some(run.child(
                    "ring.round",
                    &[
                        ("round", (self.mirror.len() as u64).into()),
                        ("epoch", self.epoch.into()),
                    ],
                ));
            }
        }
    }

    /// Rolls the `ring.hold` span to the token's new holder: the open
    /// hold closes and a new one opens under the current round span, so
    /// the spans partition the round into per-user token-holding
    /// intervals (the ring's causal order, serialized by the token).
    fn begin_hold(&mut self, user: usize) {
        if self.run_span.is_none() {
            return;
        }
        if let Some(hold) = self.hold_span.take() {
            hold.close();
        }
        self.ensure_round_span();
        if let Some(round) = &self.round_span {
            self.hold_span = Some(round.child(
                "ring.hold",
                &[("user", user.into()), ("epoch", self.epoch.into())],
            ));
        }
    }

    /// Closes the hold and round spans at a completed round boundary.
    fn finish_round_span(&mut self, norm: f64) {
        if let Some(hold) = self.hold_span.take() {
            hold.close();
        }
        if let Some(round) = self.round_span.take() {
            round.close_with(&[("norm", norm.into())]);
        }
    }

    /// Closes any open hold/round spans when the round was cut short
    /// (token loss) rather than completed.
    fn interrupt_spans(&mut self, cause: &'static str) {
        if let Some(hold) = self.hold_span.take() {
            hold.close_with(&[("interrupted", true.into())]);
        }
        if let Some(round) = self.round_span.take() {
            round.close_with(&[("interrupted", true.into()), ("cause", cause.into())]);
        }
    }

    /// Closes the whole span stack at the end of the run.
    fn finish_run_span(&mut self, termination: &'static str) {
        if let Some(hold) = self.hold_span.take() {
            hold.close();
        }
        if let Some(round) = self.round_span.take() {
            round.close();
        }
        if let Some(run) = self.run_span.take() {
            run.close_with(&[
                ("rounds", (self.mirror.len() as u64).into()),
                ("termination", termination.into()),
            ]);
        }
    }
    /// The event loop: applies progress events, detects token loss via
    /// timeout, and repairs the ring until every surviving user has
    /// reported.
    fn drive(&mut self, run_deadline: Option<Duration>) -> Result<(), GameError> {
        let started = Instant::now();
        let deadline = run_deadline.map(|d| started + d);
        loop {
            if self.termination.is_some() && self.all_alive_reported() {
                return Ok(());
            }
            let wait = match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(self.deadline_error(started));
                    }
                    self.round_timeout.min(dl - now)
                }
                None => self.round_timeout,
            };
            match self.events.recv_timeout(wait) {
                Ok(ev) => self.apply(ev)?,
                Err(RecvTimeoutError::Timeout) => {
                    if deadline.is_some_and(|dl| Instant::now() >= dl) {
                        return Err(self.deadline_error(started));
                    }
                    self.repair_token_loss()?;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every user thread is gone. Anyone who did not
                    // report is failed; if some did, salvage the partial
                    // outcome, otherwise the run is unrecoverable.
                    for j in 0..self.m {
                        if self.alive[j] && self.reports[j].is_none() {
                            self.declare_failed(j);
                        }
                    }
                    if self.termination.is_some() && self.reports.iter().any(Option::is_some) {
                        continue;
                    }
                    return Err(GameError::RingTimeout {
                        round: self.mirror.len() as u32,
                        waited_ms: started.elapsed().as_millis() as u64,
                        reason: format!(
                            "all user threads exited before the run completed; failed users: {:?}",
                            self.failed
                        ),
                    });
                }
            }
        }
    }

    fn apply(&mut self, ev: Event) -> Result<(), GameError> {
        match ev {
            Event::Forwarded { to, epoch } if epoch == self.epoch => {
                self.holder = to;
                self.emit("ring.hop", &[("to", to.into()), ("epoch", epoch.into())]);
                self.begin_hold(to);
            }
            Event::RoundComplete {
                norm,
                certificate,
                termination,
                epoch,
            } if epoch == self.epoch => {
                self.mirror.push(norm);
                let mut fields: Vec<Field> = vec![
                    ("round", (self.mirror.len() as u64 - 1).into()),
                    ("norm", norm.into()),
                    ("epoch", epoch.into()),
                    ("termination", termination_label(termination).into()),
                ];
                if let Some(rel) = certificate {
                    fields.push(("cert_rel", rel.into()));
                }
                self.emit("ring.round", &fields);
                self.finish_round_span(norm);
                if termination != Termination::Continue {
                    self.termination = Some(termination);
                } else {
                    // The round that just completed. Capacity events are
                    // keyed by it; a terminating ring is already draining,
                    // so events on the deciding round are skipped above.
                    let round = self.mirror.len() as u32 - 1;
                    let events = self.faults.capacity_events_at(round);
                    if !events.is_empty() {
                        self.apply_capacity_events(round, &events)?;
                    }
                }
            }
            Event::Spliced { skipped, epoch } if epoch == self.epoch => {
                self.emit(
                    "ring.splice",
                    &[("skipped", skipped.into()), ("epoch", epoch.into())],
                );
                if self.alive[skipped] {
                    self.declare_failed(skipped);
                    self.reconfigure();
                }
            }
            Event::Report(r) => {
                let user = r.user;
                if self.reports[user].is_some() {
                    return Err(GameError::InfeasibleStrategy {
                        reason: format!("duplicate final report from user {user}"),
                    });
                }
                self.emit(
                    "ring.report",
                    &[
                        ("user", user.into()),
                        ("response_time", r.response_time.into()),
                        ("updates", r.updates.into()),
                    ],
                );
                self.reports[user] = Some(r);
            }
            // Events stamped with an old epoch come from a user that was
            // (rightly or wrongly) declared failed; its token is stale.
            Event::Forwarded { .. } | Event::RoundComplete { .. } | Event::Spliced { .. } => {}
        }
        Ok(())
    }

    /// Applies the capacity events scheduled after `round` completed:
    /// update the rate vector, zero crashed computers' board columns,
    /// run the overload policy over the survivors' nominal demand, then
    /// bump the epoch, reconfigure every live user with the new rates
    /// and admitted demand, and regenerate the token for the next round.
    ///
    /// FIFO channel order makes this safe: each user receives its
    /// `Reconfigure` (carrying `mu`/`phi`) before any token of the new
    /// epoch, so nobody best-responds against stale capacity. A stale
    /// old-epoch token still in flight is dropped on receipt.
    fn apply_capacity_events(
        &mut self,
        round: u32,
        events: &[CapacityEvent],
    ) -> Result<(), GameError> {
        for &ev in events {
            let i = ev.computer();
            if i >= self.current_mu.len() {
                return Err(GameError::DimensionMismatch {
                    expected: self.current_mu.len(),
                    actual: i + 1,
                });
            }
            match ev {
                CapacityEvent::Crash { .. } => {
                    self.current_mu[i] = 0.0;
                    self.board.clear_column(i);
                }
                CapacityEvent::Degrade { rate, .. } => {
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(GameError::InvalidRate {
                            name: "degraded mu",
                            value: rate,
                        });
                    }
                    self.current_mu[i] = rate;
                }
                CapacityEvent::Recover { .. } => {
                    self.current_mu[i] = self.nominal_mu[i];
                }
            }
            self.emit(
                "ring.capacity",
                &[
                    ("round", round.into()),
                    (
                        "kind",
                        match ev {
                            CapacityEvent::Crash { .. } => "crash",
                            CapacityEvent::Degrade { .. } => "degrade",
                            CapacityEvent::Recover { .. } => "recover",
                        }
                        .into(),
                    ),
                    ("computer", i.into()),
                    ("rate", self.current_mu[i].into()),
                ],
            );
        }
        // Admission control over the *nominal* demand of the live users:
        // recovered capacity re-admits previously shed load automatically.
        let nominal: Vec<f64> = (0..self.m)
            .map(|j| {
                if self.alive[j] {
                    self.nominal_phi[j]
                } else {
                    0.0
                }
            })
            .collect();
        let plan = shed_to_feasible(&self.current_mu, &nominal, self.policy)?;
        self.current_phi = plan.admitted;
        self.epoch += 1;
        self.emit(
            "ring.epoch",
            &[
                ("epoch", self.epoch.into()),
                ("round", round.into()),
                ("cause", "capacity".into()),
            ],
        );
        self.shed_log.push(ShedRecord {
            round,
            epoch: self.epoch,
            capacity: self.current_mu.clone(),
            admitted: self.current_phi.clone(),
            shed: plan.shed,
        });
        let record = self.shed_log.last().expect("record just pushed");
        self.emit(
            "ring.shed",
            &[
                ("round", round.into()),
                ("epoch", self.epoch.into()),
                ("capacity_total", self.current_mu.iter().sum::<f64>().into()),
                ("admitted_total", record.admitted_total().into()),
                ("shed_total", record.shed_total().into()),
            ],
        );
        self.reconfigure();
        let ring = self.alive_ring();
        if let Some(&head) = ring.first() {
            self.inject(head, Token::regenerated(round + 1, self.epoch));
        }
        Ok(())
    }

    /// No progress for a full `round_timeout`: the expected holder took
    /// the token down with it. Kill it, splice, and regenerate the token
    /// under a fresh epoch.
    fn repair_token_loss(&mut self) -> Result<(), GameError> {
        let suspect = self.holder;
        self.emit(
            "ring.token_lost",
            &[
                ("suspect", suspect.into()),
                ("round", (self.mirror.len() as u64).into()),
                ("epoch", self.epoch.into()),
            ],
        );
        self.interrupt_spans("token_lost");
        self.declare_failed(suspect);
        let ring = self.alive_ring();
        if ring.is_empty() {
            return Err(GameError::RingTimeout {
                round: self.mirror.len() as u32,
                waited_ms: self.round_timeout.as_millis() as u64,
                reason: format!("token lost at user {suspect}; no users survive"),
            });
        }
        self.epoch += 1;
        self.emit(
            "ring.epoch",
            &[
                ("epoch", self.epoch.into()),
                ("round", (self.mirror.len() as u64).into()),
                ("cause", "token_lost".into()),
            ],
        );
        self.reconfigure();
        let round = self.mirror.len() as u32;
        match self.termination {
            // The terminate lap was interrupted. Reports are collected in
            // ring order, so the users still owed one form a suffix of
            // the live ring — restart the lap at the first of them.
            Some(term) => {
                if let Some(&target) = ring.iter().find(|&&j| self.reports[j].is_none()) {
                    let mut token = Token::regenerated(round, self.epoch);
                    token.terminate = term;
                    self.inject(target, token);
                }
            }
            // Restart the interrupted round from the top of the live
            // ring, exactly as a fresh Gauss–Seidel sweep of the reduced
            // system.
            None => self.inject(ring[0], Token::regenerated(round, self.epoch)),
        }
        Ok(())
    }

    fn declare_failed(&mut self, j: usize) {
        if !self.alive[j] {
            return;
        }
        self.alive[j] = false;
        self.failed.push(j);
        self.emit(
            "ring.fault",
            &[
                ("user", j.into()),
                ("round", (self.mirror.len() as u64).into()),
                ("epoch", self.epoch.into()),
            ],
        );
        self.board.clear_row(j);
        // A dead user places no demand; its admitted rate must not count
        // toward feasibility nor show up as shed load in the outcome.
        self.current_phi[j] = 0.0;
        // If the thread is merely slow rather than dead, this tells it to
        // exit without reporting once it wakes up.
        let _ = self.txs[j].send(RingMsg::Shutdown);
    }

    /// Sends every live user its post-splice topology: successor,
    /// successor's successor, and whether it is now the tail.
    fn reconfigure(&mut self) {
        let ring = self.alive_ring();
        let k = ring.len();
        for (pos, &j) in ring.iter().enumerate() {
            let next_id = ring[(pos + 1) % k];
            let next2_id = ring[(pos + 2) % k];
            let _ = self.txs[j].send(RingMsg::Reconfigure(Reconfigure {
                epoch: self.epoch,
                next_id,
                next: self.txs[next_id].clone(),
                next2_id,
                next2: self.txs[next2_id].clone(),
                is_tail: pos == k - 1,
                mu: self.current_mu.clone(),
                phi: self.current_phi[j],
            }));
        }
    }

    fn inject(&mut self, target: usize, token: Token) {
        self.holder = target;
        self.begin_hold(target);
        let _ = self.txs[target].send(RingMsg::Token(token));
    }

    fn alive_ring(&self) -> Vec<usize> {
        (0..self.m).filter(|&j| self.alive[j]).collect()
    }

    fn all_alive_reported(&self) -> bool {
        (0..self.m).all(|j| !self.alive[j] || self.reports[j].is_some())
    }

    fn deadline_error(&self, started: Instant) -> GameError {
        GameError::RingTimeout {
            round: self.mirror.len() as u32,
            waited_ms: started.elapsed().as_millis() as u64,
            reason: "run deadline exceeded".into(),
        }
    }
}

struct UserContext {
    user: usize,
    is_tail: bool,
    epoch: u32,
    mu: Vec<f64>,
    phi: f64,
    board: Arc<LoadBoard>,
    rx: Receiver<RingMsg>,
    next_id: usize,
    next: Sender<RingMsg>,
    next2_id: usize,
    next2: Sender<RingMsg>,
    events: Sender<Event>,
    observer: Observer,
    tolerance: f64,
    stopping: StoppingRule,
    max_rounds: u32,
    initial_d: f64,
    faults: Arc<FaultPlan>,
    stop: Arc<AtomicBool>,
    // Board-read buffers reused across token rounds so the steady-state
    // update loop performs no per-token allocations.
    scratch_others: Vec<f64>,
    scratch_totals: Vec<f64>,
    scratch_row: Vec<f64>,
}

fn user_main(mut ctx: UserContext) {
    // D_j of the initial board state, computed race-free by the
    // coordinator (0 for the unseeded NASH_0 start).
    let mut prev_d = ctx.initial_d;
    let mut updates = 0_u32;
    // A token whose forward failed in both directions, parked until the
    // coordinator sends us the repaired topology.
    let mut pending: Option<Token> = None;

    loop {
        let msg = match ctx.rx.recv_timeout(IDLE_CHECK) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match msg {
            RingMsg::Shutdown => return,
            RingMsg::Reconfigure(rc) => {
                if rc.epoch < ctx.epoch {
                    continue;
                }
                ctx.epoch = rc.epoch;
                ctx.next_id = rc.next_id;
                ctx.next = rc.next;
                ctx.next2_id = rc.next2_id;
                ctx.next2 = rc.next2;
                ctx.is_tail = rc.is_tail;
                ctx.mu = rc.mu;
                ctx.phi = rc.phi;
                if let Some(token) = pending.take() {
                    // Only forward the parked token if the coordinator
                    // spliced in-place; after an epoch bump it already
                    // regenerated a replacement.
                    if token.epoch == ctx.epoch {
                        forward_token(&mut ctx, &mut pending, token);
                    }
                }
            }
            RingMsg::Token(token) => {
                if token.epoch != ctx.epoch {
                    continue; // stale token from before a repair
                }
                if handle_token(&mut ctx, &mut pending, token, &mut prev_d, &mut updates) {
                    return;
                }
            }
        }
    }
}

/// Processes one token. Returns `true` when the user has reported and
/// must exit.
fn handle_token(
    ctx: &mut UserContext,
    pending: &mut Option<Token>,
    mut token: Token,
    prev_d: &mut f64,
    updates: &mut u32,
) -> bool {
    match token.terminate {
        Termination::Continue => {
            let fault = ctx.faults.action(ctx.user, token.round);
            match fault {
                Some(FaultAction::PanicHoldingToken) => panic!(
                    "injected fault: user {} panics at round {} holding the token",
                    ctx.user, token.round
                ),
                Some(FaultAction::DropToken) => return false,
                _ => {}
            }

            // Certified stopping measures each user's *current* strategy
            // against the live board BEFORE it updates — measuring after
            // a best reply is vacuous (a fresh reply has ~zero regret by
            // construction). The regret is read from the true board, so
            // observation noise cannot launder it, and an ε-optimal user
            // skips its update entirely: once every user skips, the
            // board is static, the round's norm is exactly zero, and the
            // state all regrets were measured against is the state the
            // ring returns.
            let mut skip = false;
            if ctx.stopping.needs_certificate() {
                ctx.board.total_flows_into(&mut ctx.scratch_totals);
                ctx.board.row_into(ctx.user, &mut ctx.scratch_row);
                let placed: f64 = ctx.scratch_row.iter().sum();
                let (regret, dj) = if (placed - ctx.phi).abs() <= 1e-9 * ctx.phi {
                    user_regret(&ctx.mu, &ctx.scratch_totals, &ctx.scratch_row, ctx.phi)
                } else {
                    // The row does not carry the admitted demand — an
                    // unseeded NASH_0 start, or a stale allocation from
                    // before a capacity event changed φ. Nothing can be
                    // certified about it, and it must update.
                    (f64::INFINITY, f64::INFINITY)
                };
                token.certificate.absorb(regret, dj);
                skip = relative_regret(regret, dj) <= ctx.tolerance;
            }

            // Observe, best-respond, publish. A stale-round fault replays
            // the previous observation instead of re-reading the board.
            if !skip {
                let avail = match fault {
                    Some(FaultAction::StaleRound) => {
                        ctx.observer.last_observation().map(<[f64]>::to_vec)
                    }
                    _ => None,
                };
                let avail = avail.unwrap_or_else(|| {
                    ctx.board
                        .flows_excluding_into(ctx.user, &mut ctx.scratch_others);
                    ctx.observer.observe(&ctx.mu, &ctx.scratch_others)
                });
                match water_fill_flows(&avail, ctx.phi) {
                    Ok(flows) => {
                        ctx.board.publish(ctx.user, &flows);
                        *updates += 1;
                    }
                    Err(_) => {
                        // A (noisy or stale) observation made the
                        // subproblem look infeasible; keep the current
                        // strategy.
                    }
                }
            }
            let d = response_time_from_board(ctx);
            token.norm_acc += (d - *prev_d).abs();
            token.d_acc += d;
            *prev_d = d;

            if ctx.is_tail {
                let norm = token.norm_acc;
                let total_d = token.d_acc;
                let certificate = token.certificate;
                token.round += 1;
                token.norm_acc = 0.0;
                token.d_acc = 0.0;
                token.certificate = Certificate::zero();
                let converged = match ctx.stopping {
                    // Regrets are measured pre-update at each user's
                    // turn; requiring a quiescent round (norm exactly
                    // zero — nobody moved, so the board the regrets
                    // were measured against IS the returned state)
                    // makes the acceptance a sound ε-Nash certificate.
                    StoppingRule::CertifiedGap { epsilon } => {
                        certificate.relative <= epsilon && norm == 0.0
                    }
                    rule => rule.accepts(ctx.tolerance, norm, total_d, Some(&certificate)),
                };
                if converged {
                    token.terminate = Termination::Converged;
                } else if token.round >= ctx.max_rounds {
                    token.terminate = Termination::Exhausted;
                }
                let _ = ctx.events.send(Event::RoundComplete {
                    norm,
                    certificate: ctx
                        .stopping
                        .needs_certificate()
                        .then_some(certificate.relative),
                    termination: token.terminate,
                    epoch: ctx.epoch,
                });
                // When capacity events are scheduled after the round that
                // just completed, the coordinator bumps the epoch and
                // regenerates the token itself — forwarding the old one
                // here would let the head race a stale round against the
                // reconfiguration and perturb the norm trace. Drop it;
                // the next round starts only from the regenerated token.
                if token.terminate == Termination::Continue
                    && !ctx.faults.capacity_events_at(token.round - 1).is_empty()
                {
                    return false;
                }
            }
            if let Some(FaultAction::DelayForward(delay)) = fault {
                thread::sleep(delay);
            }
            let round = token.round;
            forward_token(ctx, pending, token);
            if fault == Some(FaultAction::PanicAfterForward) {
                panic!(
                    "injected fault: user {} panics after forwarding at round {round}",
                    ctx.user
                );
            }
            false
        }
        _ => {
            // Terminate lap: report and (unless tail) forward.
            ctx.board.row_into(ctx.user, &mut ctx.scratch_row);
            let fractions: Vec<f64> = ctx.scratch_row.iter().map(|x| x / ctx.phi).collect();
            let _ = ctx.events.send(Event::Report(FinalReport {
                user: ctx.user,
                fractions,
                response_time: *prev_d,
                updates: *updates,
            }));
            if !ctx.is_tail {
                forward_token(ctx, pending, token);
            }
            true
        }
    }
}

/// Forwards the token to the successor, splicing around dead threads via
/// the successor's successor. Announces every hop (and every splice) to
/// the coordinator; if both forwards fail the token is parked until a
/// `Reconfigure` arrives.
fn forward_token(ctx: &mut UserContext, pending: &mut Option<Token>, token: Token) {
    let _ = ctx.events.send(Event::Forwarded {
        to: ctx.next_id,
        epoch: ctx.epoch,
    });
    let token = match ctx.next.send(RingMsg::Token(token)) {
        Ok(()) => return,
        Err(SendError(RingMsg::Token(t))) => t,
        Err(_) => return,
    };
    let _ = ctx.events.send(Event::Spliced {
        skipped: ctx.next_id,
        epoch: ctx.epoch,
    });
    let _ = ctx.events.send(Event::Forwarded {
        to: ctx.next2_id,
        epoch: ctx.epoch,
    });
    let token = match ctx.next2.send(RingMsg::Token(token)) {
        Ok(()) => return,
        Err(SendError(RingMsg::Token(t))) => t,
        Err(_) => return,
    };
    let _ = ctx.events.send(Event::Spliced {
        skipped: ctx.next2_id,
        epoch: ctx.epoch,
    });
    *pending = Some(token);
}

/// The user's actual expected response time given the *true* board state.
/// Reads the board through the context's scratch buffers (no allocation).
fn response_time_from_board(ctx: &mut UserContext) -> f64 {
    ctx.board.total_flows_into(&mut ctx.scratch_totals);
    ctx.board.row_into(ctx.user, &mut ctx.scratch_row);
    let mut d = 0.0;
    for i in 0..ctx.mu.len() {
        if ctx.scratch_row[i] > 0.0 {
            let f = lb_queueing::mm1::response_time(ctx.scratch_totals[i], ctx.mu[i]);
            d += ctx.scratch_row[i] / ctx.phi * f;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::equilibrium::epsilon_nash_gap;
    use lb_game::nash::{Initialization, NashSolver};

    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn zero_round_budget_is_rejected() {
        let err = DistributedNash::new().max_rounds(0).run(&model());
        assert!(matches!(err, Err(GameError::ZeroIterationBudget)));
    }

    #[test]
    fn zero_round_timeout_is_rejected() {
        let err = DistributedNash::new()
            .round_timeout(Duration::ZERO)
            .run(&model());
        assert!(matches!(
            err,
            Err(GameError::ZeroDuration {
                what: "round_timeout"
            })
        ));
    }

    #[test]
    fn zero_run_deadline_is_rejected() {
        let err = DistributedNash::new()
            .run_deadline(Duration::ZERO)
            .run(&model());
        assert!(matches!(
            err,
            Err(GameError::ZeroDuration {
                what: "run_deadline"
            })
        ));
    }

    #[test]
    fn ring_converges_to_epsilon_nash() {
        let m = model();
        let out = DistributedNash::new().run(&m).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(gap < 1e-3, "gap {gap}");
        assert!(out.rounds() > 0);
        assert_eq!(out.user_times().len(), 2);
        assert!(out.converged());
        assert!(out.failed_users().is_empty());
        assert_eq!(out.survivors(), &[0, 1]);
    }

    #[test]
    fn matches_sequential_solver() {
        let m = model();
        let dist = DistributedNash::new().tolerance(1e-8).run(&m).unwrap();
        let seq = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-8)
            .solve(&m)
            .unwrap();
        let d = dist.profile().max_l1_distance(seq.profile()).unwrap();
        assert!(d < 1e-4, "distributed and sequential differ by {d}");
        // Identical round counts too: the ring replays the same dynamics.
        assert_eq!(dist.rounds(), seq.iterations());
    }

    #[test]
    fn zero_init_matches_sequential_nash0() {
        let m = model();
        let dist = DistributedNash::new()
            .init(RingInit::Zero)
            .tolerance(1e-8)
            .run(&m)
            .unwrap();
        let seq = NashSolver::new(Initialization::Zero)
            .tolerance(1e-8)
            .solve(&m)
            .unwrap();
        assert_eq!(dist.rounds(), seq.iterations());
        let d = dist.profile().max_l1_distance(seq.profile()).unwrap();
        assert!(d < 1e-4);
    }

    #[test]
    fn single_user_ring_works() {
        let m = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
        let out = DistributedNash::new().run(&m).unwrap();
        assert!(epsilon_nash_gap(&m, out.profile()).unwrap() < 1e-6);
        // The accepting round is quiescent: the lone user skips it.
        assert_eq!(out.total_updates(), out.rounds() - 1);
    }

    #[test]
    fn ring_spans_nest_run_round_hold_and_all_close() {
        use lb_telemetry::{FieldValue, MemoryCollector, SPAN_CLOSE, SPAN_OPEN};

        let m = model();
        let mem = Arc::new(MemoryCollector::default());
        let out = DistributedNash::new()
            .collector(mem.clone())
            .run(&m)
            .unwrap();

        let events = mem.events();
        let field_u64 = |fields: &[Field], key: &str| -> Option<u64> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| match v {
                    FieldValue::U64(n) => *n,
                    other => panic!("field {key} was {other:?}"),
                })
        };
        let opens: Vec<_> = events.iter().filter(|(n, _)| *n == SPAN_OPEN).collect();
        let closes = events.iter().filter(|(n, _)| *n == SPAN_CLOSE).count();
        assert_eq!(opens.len(), closes, "unbalanced span open/close");

        // One run root; every round span is its child; every hold span is
        // a child of some round span. The completed rounds match the
        // outcome (plus one optional terminate-lap interval).
        let mut run_id = None;
        let mut round_ids = std::collections::BTreeSet::new();
        let (mut rounds, mut holds) = (0usize, 0usize);
        for (_, fields) in &opens {
            let id = field_u64(fields, "span").unwrap();
            let parent = field_u64(fields, "parent");
            let name = match &fields.iter().find(|(k, _)| *k == "name").unwrap().1 {
                FieldValue::Str(s) => s.to_string(),
                other => panic!("name was {other:?}"),
            };
            match name.as_str() {
                "ring.run" => {
                    assert!(run_id.replace(id).is_none(), "two run roots");
                    assert_eq!(parent, None);
                }
                "ring.round" => {
                    rounds += 1;
                    round_ids.insert(id);
                    assert_eq!(parent, run_id, "round not parented under run");
                }
                "ring.hold" => {
                    holds += 1;
                    assert!(
                        round_ids.contains(&parent.unwrap()),
                        "hold not parented under a round"
                    );
                }
                other => panic!("unexpected span {other}"),
            }
        }
        let completed = out.rounds() as usize;
        assert!(
            rounds == completed || rounds == completed + 1,
            "round spans {rounds} vs completed rounds {completed}"
        );
        // Each round holds the token once per user (2 users here), and
        // the terminate lap adds at most one partial lap of holds.
        assert!(holds >= completed * 2, "holds {holds}");
    }

    #[test]
    fn round_budget_is_enforced() {
        let m = SystemModel::table1_system(0.9).unwrap();
        let err = DistributedNash::new()
            .init(RingInit::Zero)
            .tolerance(1e-12)
            .max_rounds(2)
            .run(&m)
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::DidNotConverge { iterations: 2, .. }
        ));
    }

    #[test]
    fn run_to_outcome_keeps_the_exhausted_partial_state() {
        let m = SystemModel::table1_system(0.9).unwrap();
        let out = DistributedNash::new()
            .init(RingInit::Zero)
            .tolerance(1e-12)
            .max_rounds(2)
            .run_to_outcome(&m)
            .unwrap();
        assert_eq!(out.termination(), Termination::Exhausted);
        assert!(!out.converged());
        assert_eq!(out.rounds(), 2);
        // The partial profile is still a feasible strategy profile.
        assert_eq!(out.profile().num_users(), m.num_users());
    }

    #[test]
    fn noisy_observation_still_roughly_equilibrates() {
        let m = SystemModel::table1_system(0.5).unwrap();
        // Noise keeps the true regret above any tight ε forever, so the
        // certified rule would (rightly) never accept — this test is
        // about rough equilibration and pins the paper's norm rule.
        let out = DistributedNash::new()
            .observation(ObservationModel::Noisy {
                rel_std: 0.02,
                seed: 11,
            })
            .stopping_rule(StoppingRule::AbsoluteNorm)
            .tolerance(5e-3)
            .max_rounds(2000)
            .run(&m)
            .unwrap();
        // With 2% observation noise the profile is still a loose eps-Nash.
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        let d_avg: f64 = out.user_times().iter().sum::<f64>() / out.user_times().len() as f64;
        assert!(gap < 0.25 * d_avg, "gap {gap} vs avg time {d_avg}");
    }

    #[test]
    fn collector_sees_hops_rounds_and_done_without_perturbing_the_run() {
        use lb_telemetry::MemoryCollector;

        let m = model();
        let plain = DistributedNash::new().run(&m).unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let traced = DistributedNash::new()
            .collector(mem.clone())
            .run(&m)
            .unwrap();

        // The ring replays the same deterministic dynamics.
        assert_eq!(traced.rounds(), plain.rounds());
        for (a, b) in traced.trace().values().iter().zip(plain.trace().values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        assert_eq!(mem.count("ring.start"), 1);
        assert_eq!(mem.count("ring.round"), traced.rounds() as usize);
        // Every user forwards once per round (tail included), plus the
        // terminate lap's m-1 forwards; the coordinator's own injections
        // are not hops. Just require a healthy lower bound.
        assert!(
            mem.count("ring.hop") >= traced.rounds() as usize * m.num_users() - 1,
            "hops {} for {} rounds",
            mem.count("ring.hop"),
            traced.rounds()
        );
        assert_eq!(mem.count("ring.report"), m.num_users());
        assert_eq!(mem.count("ring.done"), 1);
        assert_eq!(mem.count("ring.fault"), 0);
    }

    #[test]
    fn collector_sees_faults_and_capacity_churn() {
        use crate::fault::FaultPlan;
        use lb_telemetry::MemoryCollector;

        // Four users so the ring survives one crash; degrade then
        // recover computer 1 to trigger capacity/epoch/shed events.
        let m = SystemModel::with_equal_users(vec![10.0, 20.0, 50.0], 4, 0.5).unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let plan = FaultPlan::new()
            .drop_token_at(1, 2)
            .degrade_computer_at(4, 1, 8.0)
            .recover_computer_at(6, 1);
        let out = DistributedNash::new()
            .fault_plan(plan)
            .round_timeout(Duration::from_millis(300))
            .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
            .collector(mem.clone())
            .run(&m)
            .unwrap();

        assert_eq!(out.failed_users(), &[1]);
        assert_eq!(mem.count("ring.token_lost"), 1);
        assert_eq!(mem.count("ring.fault"), 1);
        assert_eq!(mem.count("ring.capacity"), 2);
        assert_eq!(mem.count("ring.shed"), 2);
        // One epoch bump per repair/capacity application.
        assert_eq!(mem.count("ring.epoch"), 3);
        assert_eq!(mem.count("ring.report"), 3);
        assert_eq!(mem.count("ring.done"), 1);
    }

    #[test]
    fn table1_ring_at_medium_load() {
        let m = SystemModel::table1_system(0.6).unwrap();
        let out = DistributedNash::new().run(&m).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(gap < 1e-2, "gap {gap}");
        assert_eq!(out.profile().num_users(), 10);
        // Users skip once ε-optimal (the accepting round is fully
        // quiescent), so updates land strictly below users × rounds.
        assert!(out.total_updates() < 10 * out.rounds());
        assert!(out.total_updates() >= 10 * (out.rounds() - 1) / 2);
    }
}
