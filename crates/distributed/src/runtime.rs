//! The threaded token-ring runtime for the distributed NASH algorithm.
//!
//! One OS thread per user, connected in a ring by unbounded crossbeam
//! channels. The control token ([`crate::messages::Token`]) circulates
//! round-robin exactly as in the paper's pseudocode; strategies are
//! *never* exchanged — users observe each other only through the shared
//! [`crate::board::LoadBoard`], matching the paper's run-queue-inspection
//! model. The ring tail (user `m−1`) owns the convergence test and
//! initiates a final terminate lap; every user then reports its strategy
//! to the coordinator and exits.

use crate::board::LoadBoard;
use crate::messages::{FinalReport, Termination, Token};
use crate::observer::{ObservationModel, Observer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lb_game::best_reply::water_fill_flows;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::{Strategy, StrategyProfile};
use lb_stats::IterationTrace;
use std::sync::Arc;
use std::thread;

/// Initial board state, mirroring the paper's two NASH variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingInit {
    /// NASH_0: the board starts empty.
    Zero,
    /// NASH_P: every user starts with the proportional flow split.
    Proportional,
}

/// Configuration for a distributed NASH run.
#[derive(Debug, Clone)]
pub struct DistributedNash {
    init: RingInit,
    observation: ObservationModel,
    tolerance: f64,
    max_rounds: u32,
}

impl DistributedNash {
    /// Paper defaults: NASH_P start, exact observation, ε = 1e-4, at most
    /// 500 rounds.
    pub fn new() -> Self {
        Self {
            init: RingInit::Proportional,
            observation: ObservationModel::Exact,
            tolerance: 1e-4,
            max_rounds: 500,
        }
    }

    /// Selects the initial board state.
    pub fn init(mut self, init: RingInit) -> Self {
        self.init = init;
        self
    }

    /// Selects how users observe available rates.
    pub fn observation(mut self, model: ObservationModel) -> Self {
        self.observation = model;
        self
    }

    /// Sets the convergence tolerance ε.
    pub fn tolerance(mut self, eps: f64) -> Self {
        self.tolerance = eps;
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Runs the ring to termination and collects the outcome.
    ///
    /// # Errors
    ///
    /// * [`GameError::DidNotConverge`] when the round budget ran out (the
    ///   assembled profile is discarded, as in the sequential solver).
    /// * Channel failures surface as [`GameError::InfeasibleStrategy`]
    ///   (they indicate a crashed user thread).
    pub fn run(&self, model: &SystemModel) -> Result<DistributedOutcome, GameError> {
        let m = model.num_users();
        let n = model.num_computers();
        let board = Arc::new(LoadBoard::new(m, n));
        match self.init {
            RingInit::Zero => {}
            RingInit::Proportional => {
                let total: f64 = model.computer_rates().iter().sum();
                let rows: Vec<Vec<f64>> = (0..m)
                    .map(|j| {
                        let phi = model.user_rate(j);
                        model
                            .computer_rates()
                            .iter()
                            .map(|mu| phi * mu / total)
                            .collect()
                    })
                    .collect();
                board.seed(&rows);
            }
        }

        // Initial D_j must be computed from the seeded board *before* any
        // user starts updating — doing it inside each thread would race
        // with earlier users' round-0 publishes.
        let initial_d: Vec<f64> = {
            let totals = board.total_flows();
            (0..m)
                .map(|j| {
                    let row = board.row(j);
                    let phi = model.user_rate(j);
                    row.iter()
                        .enumerate()
                        .filter(|(_, &x)| x > 0.0)
                        .map(|(i, &x)| {
                            x / phi
                                * lb_queueing::mm1::response_time(
                                    totals[i],
                                    model.computer_rate(i),
                                )
                        })
                        .sum()
                })
                .collect()
        };

        // Ring channels: user j receives on rx[j], sends to tx[(j+1)%m].
        let (txs, rxs): (Vec<Sender<Token>>, Vec<Receiver<Token>>) =
            (0..m).map(|_| unbounded()).unzip();
        let (report_tx, report_rx) = unbounded::<ThreadResult>();

        let mut handles = Vec::with_capacity(m);
        for j in 0..m {
            let ctx = UserContext {
                user: j,
                is_tail: j == m - 1,
                mu: model.computer_rates().to_vec(),
                phi: model.user_rate(j),
                board: Arc::clone(&board),
                rx: rxs[j].clone(),
                next: txs[(j + 1) % m].clone(),
                report: report_tx.clone(),
                observer: Observer::new(self.observation, j),
                tolerance: self.tolerance,
                max_rounds: self.max_rounds,
                initial_d: initial_d[j],
            };
            handles.push(
                thread::Builder::new()
                    .name(format!("nash-user-{j}"))
                    .spawn(move || user_main(ctx))
                    .expect("failed to spawn user thread"),
            );
        }
        drop(report_tx);

        // Inject the token at user 0.
        txs[0]
            .send(Token::initial())
            .map_err(|_| ring_broken("token injection"))?;

        // Collect all reports plus the tail's trace.
        let mut reports: Vec<Option<FinalReport>> = (0..m).map(|_| None).collect();
        let mut trace_info: Option<(Vec<f64>, Termination)> = None;
        for _ in 0..m {
            let msg = report_rx.recv().map_err(|_| ring_broken("report"))?;
            if let Some(t) = msg.trace {
                trace_info = Some(t);
            }
            let user = msg.report.user;
            reports[user] = Some(msg.report);
        }
        for h in handles {
            h.join().map_err(|_| ring_broken("join"))?;
        }

        let (trace, termination) = trace_info.ok_or_else(|| ring_broken("missing trace"))?;
        let rounds = trace.len() as u32;
        if termination == Termination::Exhausted {
            return Err(GameError::DidNotConverge {
                iterations: rounds,
                final_norm: trace.last().copied().unwrap_or(f64::INFINITY),
            });
        }

        let mut rows = Vec::with_capacity(m);
        let mut user_times = Vec::with_capacity(m);
        let mut total_updates = 0;
        for r in reports.into_iter().map(Option::unwrap) {
            rows.push(Strategy::new(r.fractions)?);
            user_times.push(r.response_time);
            total_updates += r.updates;
        }
        Ok(DistributedOutcome {
            profile: StrategyProfile::new(rows)?,
            trace: trace.into_iter().collect(),
            rounds,
            user_times,
            total_updates,
        })
    }
}

impl Default for DistributedNash {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a converged distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    profile: StrategyProfile,
    trace: IterationTrace,
    rounds: u32,
    user_times: Vec<f64>,
    total_updates: u32,
}

impl DistributedOutcome {
    /// The equilibrium profile assembled from the users' reports.
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// Per-round norms (the distributed Figure-2 series).
    pub fn trace(&self) -> &IterationTrace {
        &self.trace
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Each user's final self-reported `D_j`.
    pub fn user_times(&self) -> &[f64] {
        &self.user_times
    }

    /// Total best replies computed across the ring.
    pub fn total_updates(&self) -> u32 {
        self.total_updates
    }
}

struct ThreadResult {
    report: FinalReport,
    trace: Option<(Vec<f64>, Termination)>,
}

struct UserContext {
    user: usize,
    is_tail: bool,
    mu: Vec<f64>,
    phi: f64,
    board: Arc<LoadBoard>,
    rx: Receiver<Token>,
    next: Sender<Token>,
    report: Sender<ThreadResult>,
    observer: Observer,
    tolerance: f64,
    max_rounds: u32,
    initial_d: f64,
}

fn user_main(mut ctx: UserContext) {
    // D_j of the initial board state, computed race-free by the
    // coordinator (0 for the unseeded NASH_0 start).
    let mut prev_d = ctx.initial_d;
    let mut updates = 0_u32;

    while let Ok(mut token) = ctx.rx.recv() {
        match token.terminate {
            Termination::Continue => {
                // Observe, best-respond, publish.
                let others = ctx.board.flows_excluding(ctx.user);
                let avail = ctx.observer.observe(&ctx.mu, &others);
                match water_fill_flows(&avail, ctx.phi) {
                    Ok(flows) => {
                        ctx.board.publish(ctx.user, &flows);
                        updates += 1;
                    }
                    Err(_) => {
                        // A (noisy) observation made the subproblem look
                        // infeasible; keep the current strategy this round.
                    }
                }
                let d = response_time_from_board(&ctx);
                token.norm_acc += (d - prev_d).abs();
                prev_d = d;

                if ctx.is_tail {
                    let norm = token.norm_acc;
                    token.trace.push(norm);
                    token.round += 1;
                    token.norm_acc = 0.0;
                    if norm <= ctx.tolerance {
                        token.terminate = Termination::Converged;
                    } else if token.round >= ctx.max_rounds {
                        token.terminate = Termination::Exhausted;
                    }
                }
                if ctx.next.send(token).is_err() {
                    return; // ring collapsed; coordinator will notice
                }
            }
            term => {
                // Terminate lap: report and (unless tail) forward.
                let row = ctx.board.row(ctx.user);
                let fractions: Vec<f64> = row.iter().map(|x| x / ctx.phi).collect();
                let trace = if ctx.is_tail {
                    Some((token.trace.clone(), term))
                } else {
                    None
                };
                let _ = ctx.report.send(ThreadResult {
                    report: FinalReport {
                        user: ctx.user,
                        fractions,
                        response_time: prev_d,
                        updates,
                    },
                    trace,
                });
                if !ctx.is_tail {
                    let _ = ctx.next.send(token);
                }
                return;
            }
        }
    }
}

/// The user's actual expected response time given the *true* board state.
fn response_time_from_board(ctx: &UserContext) -> f64 {
    let totals = ctx.board.total_flows();
    let own = ctx.board.row(ctx.user);
    let mut d = 0.0;
    for i in 0..ctx.mu.len() {
        if own[i] > 0.0 {
            let f = lb_queueing::mm1::response_time(totals[i], ctx.mu[i]);
            d += own[i] / ctx.phi * f;
        }
    }
    d
}

fn ring_broken(stage: &str) -> GameError {
    GameError::InfeasibleStrategy {
        reason: format!("distributed ring failed during {stage}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::equilibrium::epsilon_nash_gap;
    use lb_game::nash::{Initialization, NashSolver};

    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn ring_converges_to_epsilon_nash() {
        let m = model();
        let out = DistributedNash::new().run(&m).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(gap < 1e-3, "gap {gap}");
        assert!(out.rounds() > 0);
        assert_eq!(out.user_times().len(), 2);
    }

    #[test]
    fn matches_sequential_solver() {
        let m = model();
        let dist = DistributedNash::new().tolerance(1e-8).run(&m).unwrap();
        let seq = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-8)
            .solve(&m)
            .unwrap();
        let d = dist.profile().max_l1_distance(seq.profile()).unwrap();
        assert!(d < 1e-4, "distributed and sequential differ by {d}");
        // Identical round counts too: the ring replays the same dynamics.
        assert_eq!(dist.rounds(), seq.iterations());
    }

    #[test]
    fn zero_init_matches_sequential_nash0() {
        let m = model();
        let dist = DistributedNash::new()
            .init(RingInit::Zero)
            .tolerance(1e-8)
            .run(&m)
            .unwrap();
        let seq = NashSolver::new(Initialization::Zero)
            .tolerance(1e-8)
            .solve(&m)
            .unwrap();
        assert_eq!(dist.rounds(), seq.iterations());
        let d = dist.profile().max_l1_distance(seq.profile()).unwrap();
        assert!(d < 1e-4);
    }

    #[test]
    fn single_user_ring_works() {
        let m = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
        let out = DistributedNash::new().run(&m).unwrap();
        assert!(epsilon_nash_gap(&m, out.profile()).unwrap() < 1e-6);
        assert_eq!(out.total_updates(), out.rounds());
    }

    #[test]
    fn round_budget_is_enforced() {
        let m = SystemModel::table1_system(0.9).unwrap();
        let err = DistributedNash::new()
            .init(RingInit::Zero)
            .tolerance(1e-12)
            .max_rounds(2)
            .run(&m)
            .unwrap_err();
        assert!(matches!(err, GameError::DidNotConverge { iterations: 2, .. }));
    }

    #[test]
    fn noisy_observation_still_roughly_equilibrates() {
        let m = SystemModel::table1_system(0.5).unwrap();
        let out = DistributedNash::new()
            .observation(ObservationModel::Noisy {
                rel_std: 0.02,
                seed: 11,
            })
            .tolerance(5e-3)
            .max_rounds(2000)
            .run(&m)
            .unwrap();
        // With 2% observation noise the profile is still a loose eps-Nash.
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        let d_avg: f64 =
            out.user_times().iter().sum::<f64>() / out.user_times().len() as f64;
        assert!(gap < 0.25 * d_avg, "gap {gap} vs avg time {d_avg}");
    }

    #[test]
    fn table1_ring_at_medium_load() {
        let m = SystemModel::table1_system(0.6).unwrap();
        let out = DistributedNash::new().run(&m).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(gap < 1e-2, "gap {gap}");
        assert_eq!(out.profile().num_users(), 10);
        assert_eq!(out.total_updates(), 10 * out.rounds());
    }
}
