//! # lb-distributed — the NASH algorithm as a real distributed runtime
//!
//! The paper presents NASH as a *distributed* algorithm (§3): each user is
//! an independent decision maker that receives `(norm, iteration)` from
//! its predecessor, observes the computers' available processing rates
//! ("by inspecting the run queue of each computer"), plays its best reply,
//! and forwards the token to its successor; the last user in the ring
//! decides termination.
//!
//! `lb-game::nash` implements that dynamics sequentially. This crate runs
//! it **for real**: one OS thread per user, crossbeam channels for the
//! token ring, and a shared load board standing in for the computers'
//! observable run-queue state:
//!
//! * [`messages`] — the token protocol (with repair epochs and ring
//!   reconfiguration).
//! * [`board`] — the shared per-user flow board users observe and update.
//! * [`observer`] — how users estimate available rates from the board
//!   (exact, or with multiplicative noise modeling run-queue sampling
//!   error).
//! * [`fault`] — deterministic fault injection: crash, token-drop, delay
//!   and stale-observation faults keyed by `(user, round)`, plus
//!   capacity events keyed by round.
//! * [`capacity`] — computer-side churn: crash / degrade / recover
//!   events and the shed trajectory the coordinator records when its
//!   overload policy sheds load.
//! * [`runtime`] — thread spawning, the ring, failure detection and
//!   repair, termination, and result collection.
//! * [`net`] — a seeded virtual network: per-link drop / duplicate /
//!   reorder / bounded-delay faults and scheduled partitions over a
//!   deterministic virtual clock.
//! * [`async_runtime`] — asynchronous bounded-staleness best-reply
//!   dynamics over that network, terminating via a certified ε-Nash
//!   gap accepted only from a provably fresh view.
//!
//! The runtime is fault-tolerant: every receive has a timeout, a lost
//! token is detected by the coordinator and regenerated under a new
//! epoch, dead users are spliced out of the ring and their load cleared
//! from the board, and the survivors re-converge on the residual
//! capacity. See the [`runtime`] module docs for the failure model.
//!
//! The integration tests verify the threaded runtime reaches the same
//! equilibrium as the sequential solver, and that it survives injected
//! crashes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod async_runtime;
pub mod board;
pub mod capacity;
pub mod fault;
pub mod messages;
pub mod net;
pub mod observer;
pub mod runtime;

pub use async_runtime::{AsyncNash, AsyncOutcome, AsyncTermination};
pub use capacity::{CapacityEvent, ShedRecord};
pub use fault::{FaultAction, FaultPlan};
pub use net::{LinkFaults, NetFaultPlan, NetStats, VirtualNet};
pub use observer::ObservationModel;
pub use runtime::{DistributedNash, DistributedOutcome};
