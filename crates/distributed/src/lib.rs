//! # lb-distributed — the NASH algorithm as a real distributed runtime
//!
//! The paper presents NASH as a *distributed* algorithm (§3): each user is
//! an independent decision maker that receives `(norm, iteration)` from
//! its predecessor, observes the computers' available processing rates
//! ("by inspecting the run queue of each computer"), plays its best reply,
//! and forwards the token to its successor; the last user in the ring
//! decides termination.
//!
//! `lb-game::nash` implements that dynamics sequentially. This crate runs
//! it **for real**: one OS thread per user, crossbeam channels for the
//! token ring, and a shared load board standing in for the computers'
//! observable run-queue state:
//!
//! * [`messages`] — the token protocol.
//! * [`board`] — the shared per-user flow board users observe and update.
//! * [`observer`] — how users estimate available rates from the board
//!   (exact, or with multiplicative noise modeling run-queue sampling
//!   error).
//! * [`runtime`] — thread spawning, the ring, termination, and result
//!   collection.
//!
//! The integration tests verify the threaded runtime reaches the same
//! equilibrium as the sequential solver.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod board;
pub mod messages;
pub mod observer;
pub mod runtime;

pub use observer::ObservationModel;
pub use runtime::{DistributedNash, DistributedOutcome};
