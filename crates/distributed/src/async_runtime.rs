//! Asynchronous bounded-staleness equilibration over an unreliable
//! network.
//!
//! The token ring ([`crate::runtime`]) reproduces the paper's lockstep
//! protocol: reliable, ordered, one best reply at a time. This module
//! drops all three assumptions, following Berenbrink et al.
//! (*Distributed Selfish Load Balancing*: concurrent selfish updates
//! from stale views still converge) and Chakraborty et al. (approximate
//! equilibria under imperfect information — which the certified-gap
//! machinery lets us *detect* instead of assume):
//!
//! * Each user keeps a **local copy** of the load board and best-replies
//!   against it on a periodic tick — concurrently with everyone else,
//!   against a view whose staleness is bounded by τ
//!   ([`AsyncNash::staleness_us`]) because every node re-announces its
//!   row at least every τ/2 of virtual time.
//! * Updates ship as **versioned per-row deltas** with per-sender
//!   sequence numbers: versions make application idempotent and
//!   commutative (apply-iff-newer), sequence numbers give duplicate
//!   suppression and gap detection over the lossy link.
//! * Unacknowledged updates are **retried** with capped exponential
//!   backoff and deterministic decorrelated jitter
//!   ([`lb_retry::DecorrelatedJitter`]); repeated ack-less retries mark
//!   a peer unreachable.
//! * **Partitions** are handled by epoch: a node that can reach only a
//!   minority of users freezes its best replies (bumping its epoch) and
//!   sheds load via the configured
//!   [`OverloadPolicy`](lb_game::overload::OverloadPolicy) against the
//!   capacity left by the unreachable side's (stale, frozen) flows; the
//!   majority keeps converging. The first message from a formerly
//!   unreachable peer triggers an **anti-entropy** exchange
//!   (`SyncReq`/`SyncResp` reconciled by version vector) and an
//!   unfreeze.
//! * **Termination** reuses the ring's certified ε-Nash rule
//!   ([`StoppingRule::CertifiedGap`]): the coordinator accepts only when
//!   every live user's status (a) was generated within the last τ of
//!   virtual time, (b) reports a relative regret ≤ ε, (c) is not
//!   frozen, and (d) carries a version vector identical to the
//!   coordinator's own — so there are provably no in-flight updates and
//!   the state the regrets were measured against *is* the state the run
//!   returns. ε-optimal users skip their updates (the ring's pre-update
//!   skip rule), so an accepted board is quiescent by construction.
//!
//! The whole runtime executes as a **sequential discrete-event
//! simulation** over [`crate::net::VirtualNet`]'s virtual clock: every
//! message interleaving is produced by the seeded network, never by OS
//! scheduling, so a `(model, plan, seed)` triple yields a bit-identical
//! [`AsyncOutcome`] on every run — and at every
//! [`AsyncNash::threads`] setting, because worker threads only
//! parallelize the *pure* final certificate recomputation (independent
//! per-user reductions merged in index order).

use crate::fault::FaultAction;
use crate::messages::TraceContext;
use crate::net::{NetFaultPlan, NetStats, VirtualNet};
use lb_game::best_reply::water_fill_flows;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::overload::{shed_to_feasible, OverloadPolicy};
use lb_game::stopping::{relative_regret, user_regret, StoppingRule, ViewFreshness};
use lb_game::strategy::{Strategy, StrategyProfile};
use lb_retry::DecorrelatedJitter;
use lb_telemetry::{enabled, Collector};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Version-vector sentinel for an evicted (declared-failed) user: any
/// real version compares below it, so eviction propagates through the
/// same apply-iff-newer rule as ordinary updates.
const EVICTED: u64 = u64::MAX;

/// Hard ceiling on delivered events, independent of the virtual-time
/// budget — the "never hangs" backstop for adversarial configurations.
const MAX_EVENTS: u64 = 20_000_000;

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// The next span id for `node`: a per-node monotone counter namespaced
/// by the node id in the high bits. Pure run state — no process-wide
/// atomics — so trace trees replay bit-identically for a given seed,
/// and ids are nonzero and globally unique (until 2⁴⁰ spans per node,
/// far past [`MAX_EVENTS`]).
fn span_id(node: usize, counter: &mut u64) -> u64 {
    *counter += 1;
    ((node as u64 + 1) << 40) + *counter
}

/// Derives the trace context for an outgoing message at `node`: a child
/// of the message being answered when there is one, otherwise a fresh
/// root (trace id = root span id).
fn derive_ctx(node: usize, counter: &mut u64, cause: Option<TraceContext>) -> TraceContext {
    let span = span_id(node, counter);
    match cause {
        Some(c) => c.child(span),
        None => TraceContext::root(span, span),
    }
}

/// A user's periodic self-report to the coordinator.
#[derive(Debug, Clone)]
struct StatusMsg {
    vv: Vec<u64>,
    regret: f64,
    d: f64,
    epoch: u32,
    frozen: bool,
    gen_us: u64,
}

/// The wire protocol plus node-local timers (timers are delivered by
/// the same virtual clock but bypass the fault model).
#[derive(Debug, Clone)]
enum Msg {
    /// A versioned row announcement (fresh update or heartbeat).
    Update {
        seq: u64,
        version: u64,
        row: Vec<f64>,
    },
    /// Acknowledges the sender's application-level sequence number.
    Ack {
        seq: u64,
    },
    Status(StatusMsg),
    /// Anti-entropy request: "send me everything newer than this."
    SyncReq {
        vv: Vec<u64>,
    },
    /// Anti-entropy response: rows strictly newer than the requested vv.
    SyncResp {
        rows: Vec<(usize, u64, Vec<f64>)>,
    },
    /// Coordinator verdict: `user` is declared failed.
    Evict {
        user: usize,
    },
    /// Timer: a user's best-reply tick.
    TickUpdate,
    /// Timer: retry the pending update to `dest` if `seq` is still
    /// unacknowledged.
    Retry {
        dest: usize,
        seq: u64,
    },
    /// Timer: a `DelayForward` fault releasing a held-back broadcast.
    DelayedBroadcast,
    /// Timer: the coordinator's periodic liveness / acceptance sweep.
    Check,
}

/// An unacknowledged update to one destination. Retries resend the
/// sender's *current* row under the same sequence number — newer
/// versions supersede, and application is idempotent either way.
struct Pending {
    seq: u64,
    /// Trace the original send rooted; retries send fresh spans under
    /// this same trace (parented at the root), so an update and all its
    /// retries reconstruct as one tree.
    trace: u64,
    jitter: DecorrelatedJitter,
    episode: u32,
}

/// Shared, immutable run parameters.
#[derive(Clone)]
struct Cfg {
    m: usize,
    coord: usize,
    mu: Vec<f64>,
    phis: Vec<f64>,
    epsilon: f64,
    tau: u64,
    period: u64,
    retry_base_us: u64,
    retry_cap_us: u64,
    retry_attempts: u32,
    unreachable_after: u32,
    policy: OverloadPolicy,
    damping: f64,
    seed: u64,
}

fn proportional_rows(cfg: &Cfg) -> Vec<Vec<f64>> {
    let total: f64 = cfg.mu.iter().sum();
    (0..cfg.m)
        .map(|j| cfg.mu.iter().map(|mu| cfg.phis[j] * mu / total).collect())
        .collect()
}

/// Pre/post-update regret of `row` against the full board: `(∞, ∞)`
/// when the row does not place the user's whole (nominal) demand —
/// nothing can be certified about a shed or unseeded row.
fn measure(cfg: &Cfg, rows: &[Vec<f64>], user: usize) -> (f64, f64) {
    let n = cfg.mu.len();
    let mut loads = vec![0.0; n];
    for row in rows {
        for (l, x) in loads.iter_mut().zip(row) {
            *l += x;
        }
    }
    let phi = cfg.phis[user];
    let placed: f64 = rows[user].iter().sum();
    if (placed - phi).abs() <= 1e-9 * phi {
        user_regret(&cfg.mu, &loads, &rows[user], phi)
    } else {
        (f64::INFINITY, f64::INFINITY)
    }
}

fn jitter_for(cfg: &Cfg, node: usize, dest: usize, episode: u32) -> DecorrelatedJitter {
    DecorrelatedJitter::new(
        cfg.retry_base_us as f64,
        cfg.retry_cap_us as f64,
        cfg.retry_attempts,
        mix(
            cfg.seed,
            ((node as u64) << 40) ^ ((dest as u64) << 20) ^ episode as u64,
        ),
    )
}

/// One user endpoint: local board, version vector, retry state,
/// partition bookkeeping.
struct UserNode {
    id: usize,
    cfg: Cfg,
    rows: Vec<Vec<f64>>,
    versions: Vec<u64>,
    dead: bool,
    frozen: bool,
    epoch: u32,
    round: u32,
    last_broadcast: u64,
    next_seq: Vec<u64>,
    expected: Vec<u64>,
    outbox: Vec<Option<Pending>>,
    attempts: Vec<u32>,
    updates: u64,
    dup_msgs: u64,
    gap_msgs: u64,
    retries: u64,
    next_span: u64,
}

impl UserNode {
    fn new(id: usize, cfg: &Cfg, rows: Vec<Vec<f64>>) -> Self {
        let peers = cfg.m + 1;
        Self {
            id,
            cfg: cfg.clone(),
            rows,
            versions: vec![1; cfg.m],
            dead: false,
            frozen: false,
            epoch: 0,
            round: 0,
            last_broadcast: 0,
            next_seq: vec![0; peers],
            expected: vec![0; peers],
            outbox: (0..peers).map(|_| None).collect(),
            attempts: vec![0; peers],
            updates: 0,
            dup_msgs: 0,
            gap_msgs: 0,
            retries: 0,
            next_span: 0,
        }
    }

    fn ctx(&mut self, cause: Option<TraceContext>) -> TraceContext {
        derive_ctx(self.id, &mut self.next_span, cause)
    }

    fn alive_peers(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.cfg.m).filter(move |&k| k != self.id && self.versions[k] != EVICTED)
    }

    /// Sends (or resends) the current row to one destination and arms
    /// the retry timer. The first send roots a trace; every retry is a
    /// fresh span under it, parented at the root.
    fn send_update(&mut self, dest: usize, net: &mut VirtualNet<Msg>, fresh: bool) {
        let (seq, ctx) = if fresh {
            let s = self.next_seq[dest];
            self.next_seq[dest] += 1;
            (s, self.ctx(None))
        } else {
            let (seq, trace) = match &self.outbox[dest] {
                Some(p) => (p.seq, p.trace),
                None => return,
            };
            self.retries += 1;
            (seq, self.ctx(Some(TraceContext::root(trace, trace))))
        };
        self.attempts[dest] = self.attempts[dest].saturating_add(1);
        net.send_traced(
            self.id,
            dest,
            ctx,
            Msg::Update {
                seq,
                version: self.versions[self.id],
                row: self.rows[self.id].clone(),
            },
        );
        let pending = if fresh {
            self.outbox[dest] = Some(Pending {
                seq,
                trace: ctx.trace,
                jitter: jitter_for(&self.cfg, self.id, dest, 0),
                episode: 0,
            });
            self.outbox[dest].as_mut().expect("just stored")
        } else {
            self.outbox[dest].as_mut().expect("caller checked")
        };
        let delay = match pending.jitter.next_delay() {
            Some(d) => d,
            None => {
                // Episode exhausted: keep probing at the cap cadence with
                // a fresh (still deterministic) jitter stream, so a heal
                // is always eventually noticed.
                pending.episode += 1;
                pending.jitter = jitter_for(&self.cfg, self.id, dest, pending.episode);
                pending.jitter.next_delay().expect("fresh jitter budget")
            }
        };
        net.schedule(
            self.id,
            (delay.round() as u64).max(1),
            Msg::Retry { dest, seq },
        );
    }

    /// Announces the current row to every live peer and the coordinator.
    fn broadcast(&mut self, net: &mut VirtualNet<Msg>, now: u64) {
        let dests: Vec<usize> = self.alive_peers().chain([self.cfg.coord]).collect();
        for dest in dests {
            self.send_update(dest, net, true);
        }
        self.last_broadcast = now;
        self.check_freeze(net, now);
    }

    fn send_status(&mut self, net: &mut VirtualNet<Msg>, now: u64) {
        let (regret, d) = measure(&self.cfg, &self.rows, self.id);
        let ctx = self.ctx(None);
        net.send_traced(
            self.id,
            self.cfg.coord,
            ctx,
            Msg::Status(StatusMsg {
                vv: self.versions.clone(),
                regret,
                d,
                epoch: self.epoch,
                frozen: self.frozen,
                gen_us: now,
            }),
        );
    }

    /// Re-evaluates the partition state from the per-peer failure
    /// counters; freezing sheds, unfreezing resumes (the next tick's
    /// best reply restores the full row).
    fn check_freeze(&mut self, _net: &mut VirtualNet<Msg>, _now: u64) {
        let alive: Vec<usize> = self.alive_peers().collect();
        let total = alive.len() + 1;
        let reachable = alive
            .iter()
            .filter(|&&k| self.attempts[k] < self.cfg.unreachable_after)
            .count()
            + 1;
        let minority = total > 1 && 2 * reachable <= total;
        if minority && !self.frozen {
            self.frozen = true;
            self.epoch += 1;
            self.shed_for_group(&alive);
        } else if !minority && self.frozen {
            self.frozen = false;
            self.epoch += 1;
        }
    }

    /// Minority-side admission control: shed own demand so the group's
    /// residual game (capacity minus the unreachable side's frozen
    /// flows) is feasible under the configured policy.
    fn shed_for_group(&mut self, alive: &[usize]) {
        let mut residual = self.cfg.mu.clone();
        for &k in alive {
            if self.attempts[k] >= self.cfg.unreachable_after {
                for (r, x) in residual.iter_mut().zip(&self.rows[k]) {
                    *r = (*r - x).max(0.0);
                }
            }
        }
        let mut members: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&k| self.attempts[k] < self.cfg.unreachable_after)
            .chain([self.id])
            .collect();
        members.sort_unstable();
        let group_phis: Vec<f64> = members.iter().map(|&k| self.cfg.phis[k]).collect();
        let demand: f64 = group_phis.iter().sum();
        let capacity: f64 = residual.iter().sum();
        if demand < capacity * 0.999 {
            return; // the residual game is already feasible
        }
        if let Ok(plan) = shed_to_feasible(&residual, &group_phis, self.cfg.policy) {
            let me = members.iter().position(|&k| k == self.id).expect("member");
            let phi = self.cfg.phis[self.id];
            if phi > 0.0 && plan.admitted[me] < phi {
                let scale = plan.admitted[me] / phi;
                for x in &mut self.rows[self.id] {
                    *x *= scale;
                }
                self.versions[self.id] += 1;
                self.updates += 1;
            }
        }
    }

    /// Applies a row announcement iff its version is newer. Returns
    /// whether it advanced the local view.
    fn apply(&mut self, user: usize, version: u64, row: &[f64]) -> bool {
        if user >= self.cfg.m || self.versions[user] == EVICTED || version <= self.versions[user] {
            return false;
        }
        self.versions[user] = version;
        self.rows[user].copy_from_slice(row);
        true
    }

    /// Any receipt from `from` proves reachability; a recovery after the
    /// unreachable threshold triggers anti-entropy and an unfreeze check.
    /// The sync request is a child of the message that proved liveness.
    fn mark_heard(
        &mut self,
        from: usize,
        cause: Option<TraceContext>,
        net: &mut VirtualNet<Msg>,
        now: u64,
    ) {
        let was_unreachable = self.attempts[from] >= self.cfg.unreachable_after;
        self.attempts[from] = 0;
        if was_unreachable {
            let ctx = self.ctx(cause);
            net.send_traced(
                self.id,
                from,
                ctx,
                Msg::SyncReq {
                    vv: self.versions.clone(),
                },
            );
            self.check_freeze(net, now);
        }
    }

    fn track_seq(&mut self, from: usize, seq: u64) {
        let expected = self.expected[from];
        if seq < expected {
            self.dup_msgs += 1;
        } else {
            if seq > expected {
                self.gap_msgs += seq - expected;
            }
            self.expected[from] = seq + 1;
        }
    }

    fn handle(
        &mut self,
        from: usize,
        msg: Msg,
        ctx: Option<TraceContext>,
        net: &mut VirtualNet<Msg>,
        now: u64,
    ) {
        if self.dead {
            return;
        }
        match msg {
            Msg::Update { seq, version, row } => {
                self.track_seq(from, seq);
                let ack = self.ctx(ctx);
                net.send_traced(self.id, from, ack, Msg::Ack { seq });
                self.apply(from, version, &row);
                self.mark_heard(from, ctx, net, now);
            }
            Msg::Ack { seq } => {
                if let Some(p) = &self.outbox[from] {
                    if p.seq == seq {
                        self.outbox[from] = None;
                    }
                }
                self.mark_heard(from, ctx, net, now);
            }
            Msg::SyncReq { vv } => {
                let rows: Vec<(usize, u64, Vec<f64>)> = (0..self.cfg.m)
                    .filter(|&k| {
                        self.versions[k] != EVICTED
                            && vv.get(k).is_some_and(|&v| self.versions[k] > v)
                    })
                    .map(|k| (k, self.versions[k], self.rows[k].clone()))
                    .collect();
                if !rows.is_empty() {
                    let resp = self.ctx(ctx);
                    net.send_traced(self.id, from, resp, Msg::SyncResp { rows });
                }
                self.mark_heard(from, ctx, net, now);
            }
            Msg::SyncResp { rows } => {
                for (user, version, row) in rows {
                    self.apply(user, version, &row);
                }
                self.mark_heard(from, ctx, net, now);
            }
            Msg::Evict { user } => {
                if user == self.id {
                    // The coordinator declared us failed; a node that has
                    // been voted out halts rather than split-brains.
                    self.dead = true;
                    return;
                }
                if user < self.cfg.m && self.versions[user] != EVICTED {
                    self.versions[user] = EVICTED;
                    self.rows[user].iter_mut().for_each(|x| *x = 0.0);
                    self.outbox[user] = None;
                    self.attempts[user] = 0;
                    self.check_freeze(net, now);
                }
            }
            Msg::TickUpdate => self.tick(net, now),
            Msg::Retry { dest, seq } => {
                let live = matches!(&self.outbox[dest], Some(p) if p.seq == seq);
                if live && self.versions.get(dest).copied() != Some(EVICTED) {
                    self.send_update(dest, net, false);
                    self.check_freeze(net, now);
                }
            }
            Msg::DelayedBroadcast => self.broadcast(net, now),
            Msg::Status(_) | Msg::Check => {}
        }
    }

    /// One best-reply tick: measure, reply if not ε-optimal, status,
    /// broadcast / heartbeat, reschedule.
    fn tick(&mut self, net: &mut VirtualNet<Msg>, now: u64) {
        let fault = self.cfg_fault(net);
        if fault == Some(FaultAction::PanicHoldingToken) {
            self.dead = true;
            return;
        }
        self.round += 1;

        let mut changed = false;
        if !self.frozen && fault != Some(FaultAction::StaleRound) {
            let (regret, d) = measure(&self.cfg, &self.rows, self.id);
            if relative_regret(regret, d) > self.cfg.epsilon {
                let n = self.cfg.mu.len();
                let mut avail = self.cfg.mu.clone();
                for (k, row) in self.rows.iter().enumerate() {
                    if k == self.id {
                        continue;
                    }
                    for i in 0..n {
                        avail[i] = (avail[i] - row[i]).max(0.0);
                    }
                }
                let phi = self.cfg.phis[self.id];
                if let Ok(flows) = water_fill_flows(&avail, phi) {
                    // Damped step `(1−β)·old + β·reply` (the sampled
                    // solver's idiom): concurrent undamped best replies
                    // against stale boards oscillate for m ≥ 3 — everyone
                    // floods the least-loaded computer, then everyone
                    // flees it. Dust below 1e-6·φ is dropped and the row
                    // rescaled to carry exactly φ again.
                    let beta = self.cfg.damping;
                    let mut blend: Vec<f64> = self.rows[self.id]
                        .iter()
                        .zip(&flows)
                        .map(|(&old, &reply)| {
                            let x = (1.0 - beta) * old + beta * reply;
                            if x >= 1e-6 * phi {
                                x
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    let sum: f64 = blend.iter().sum();
                    if sum > 0.0 {
                        let scale = phi / sum;
                        for x in &mut blend {
                            *x *= scale;
                        }
                        if blend != self.rows[self.id] {
                            self.rows[self.id] = blend;
                            self.versions[self.id] += 1;
                            self.updates += 1;
                            changed = true;
                        }
                    }
                }
            }
        }

        self.send_status(net, now);

        let announce = changed || now.saturating_sub(self.last_broadcast) >= self.cfg.tau / 2;
        match fault {
            Some(FaultAction::DropToken) => {
                // Local update applied but never announced: peers must
                // recover via the next heartbeat.
                self.last_broadcast = now;
            }
            Some(FaultAction::DelayForward(delay)) if announce => {
                self.last_broadcast = now;
                let d_us = (delay.as_micros() as u64).max(1);
                net.schedule(self.id, d_us, Msg::DelayedBroadcast);
            }
            _ => {
                if announce {
                    self.broadcast(net, now);
                }
            }
        }

        if fault == Some(FaultAction::PanicAfterForward) {
            self.dead = true;
            return;
        }
        net.schedule(self.id, self.cfg.period, Msg::TickUpdate);
    }

    /// The node-level fault scheduled for this tick, mapped from the
    /// ring plan's `(user, round)` key: the tick counter plays the role
    /// of the round number.
    fn cfg_fault(&self, net: &VirtualNet<Msg>) -> Option<FaultAction> {
        net.plan().node_plan().action(self.id, self.round)
    }
}

/// The coordinator endpoint: mirror board, liveness tracking, eviction,
/// and the certified acceptance check.
struct CoordNode {
    cfg: Cfg,
    rows: Vec<Vec<f64>>,
    versions: Vec<u64>,
    expected: Vec<u64>,
    last_heard: Vec<u64>,
    statuses: Vec<Option<StatusMsg>>,
    evicted: Vec<bool>,
    failure_timeout: u64,
    certified: Option<f64>,
    updates_applied: u64,
    syncs: u64,
    max_epoch: u32,
    next_span: u64,
    collector: Option<Arc<dyn Collector>>,
}

impl CoordNode {
    fn new(cfg: &Cfg, rows: Vec<Vec<f64>>, failure_timeout: u64) -> Self {
        Self {
            cfg: cfg.clone(),
            rows,
            versions: vec![1; cfg.m],
            expected: vec![0; cfg.m],
            last_heard: vec![0; cfg.m],
            statuses: (0..cfg.m).map(|_| None).collect(),
            evicted: vec![false; cfg.m],
            failure_timeout,
            certified: None,
            updates_applied: 0,
            syncs: 0,
            max_epoch: 0,
            next_span: 0,
            collector: None,
        }
    }

    fn ctx(&mut self, cause: Option<TraceContext>) -> TraceContext {
        derive_ctx(self.cfg.coord, &mut self.next_span, cause)
    }

    fn apply(&mut self, user: usize, version: u64, row: &[f64], now: u64) {
        if user >= self.cfg.m || self.evicted[user] || version <= self.versions[user] {
            return;
        }
        self.versions[user] = version;
        self.rows[user].copy_from_slice(row);
        self.updates_applied += 1;
        if let Some(c) = enabled(self.collector.as_ref()) {
            c.emit(
                "async.update",
                &[
                    ("t_us", now.into()),
                    ("user", user.into()),
                    ("version", version.into()),
                ],
            );
        }
    }

    fn mark_heard(
        &mut self,
        from: usize,
        cause: Option<TraceContext>,
        net: &mut VirtualNet<Msg>,
        now: u64,
    ) {
        if from >= self.cfg.m || self.evicted[from] {
            return;
        }
        // A long-silent peer resurfacing means we likely missed updates
        // from its side of a cut: reconcile by version vector.
        if now.saturating_sub(self.last_heard[from]) > 2 * self.cfg.tau {
            let ctx = self.ctx(cause);
            net.send_traced(
                self.cfg.coord,
                from,
                ctx,
                Msg::SyncReq {
                    vv: self.versions.clone(),
                },
            );
        }
        self.last_heard[from] = now;
    }

    fn handle(
        &mut self,
        from: usize,
        msg: Msg,
        ctx: Option<TraceContext>,
        net: &mut VirtualNet<Msg>,
        now: u64,
    ) {
        match msg {
            Msg::Update { seq, version, row } if from < self.cfg.m => {
                let expected = self.expected[from];
                if seq >= expected {
                    self.expected[from] = seq + 1;
                }
                let ack = self.ctx(ctx);
                net.send_traced(self.cfg.coord, from, ack, Msg::Ack { seq });
                self.mark_heard(from, ctx, net, now);
                self.apply(from, version, &row, now);
            }
            Msg::Status(s) if from < self.cfg.m && !self.evicted[from] => {
                self.max_epoch = self.max_epoch.max(s.epoch);
                // View staleness as certification sees it: the age of
                // the freshest self-report from this user.
                if let Some(c) = enabled(self.collector.as_ref()) {
                    c.emit(
                        "async.staleness",
                        &[
                            ("t_us", now.into()),
                            ("user", from.into()),
                            ("age_us", now.saturating_sub(s.gen_us).into()),
                        ],
                    );
                }
                self.mark_heard(from, ctx, net, now);
                self.statuses[from] = Some(s);
                self.try_accept(now, ctx.map_or(0, |c| c.trace));
            }
            Msg::SyncResp { rows } => {
                let mut merged = 0u64;
                for (user, version, row) in rows {
                    let before = self.versions.get(user).copied();
                    self.apply(user, version, &row, now);
                    if self.versions.get(user).copied() != before {
                        merged += 1;
                    }
                }
                self.mark_heard(from, ctx, net, now);
                if merged > 0 {
                    self.syncs += 1;
                    if let Some(c) = enabled(self.collector.as_ref()) {
                        c.emit(
                            "async.sync",
                            &[
                                ("t_us", now.into()),
                                ("peer", from.into()),
                                ("rows", merged.into()),
                            ],
                        );
                    }
                }
            }
            Msg::SyncReq { vv } => {
                let rows: Vec<(usize, u64, Vec<f64>)> = (0..self.cfg.m)
                    .filter(|&k| {
                        !self.evicted[k] && vv.get(k).is_some_and(|&v| self.versions[k] > v)
                    })
                    .map(|k| (k, self.versions[k], self.rows[k].clone()))
                    .collect();
                if !rows.is_empty() {
                    let resp = self.ctx(ctx);
                    net.send_traced(self.cfg.coord, from, resp, Msg::SyncResp { rows });
                }
                self.mark_heard(from, ctx, net, now);
            }
            Msg::Check => {
                for j in 0..self.cfg.m {
                    if !self.evicted[j]
                        && now.saturating_sub(self.last_heard[j]) > self.failure_timeout
                    {
                        self.evicted[j] = true;
                        self.versions[j] = EVICTED;
                        self.rows[j].iter_mut().for_each(|x| *x = 0.0);
                        self.statuses[j] = None;
                    }
                }
                // Re-announce verdicts until the survivors' version
                // vectors show the tombstones (Evict is unreliable).
                for j in 0..self.cfg.m {
                    if self.evicted[j] {
                        for k in 0..self.cfg.m {
                            if !self.evicted[k] {
                                let verdict = self.ctx(None);
                                net.send_traced(self.cfg.coord, k, verdict, Msg::Evict { user: j });
                            }
                        }
                    }
                }
                self.try_accept(now, 0);
                net.schedule(self.cfg.coord, self.cfg.tau, Msg::Check);
            }
            Msg::Ack { .. } | Msg::Evict { .. } => {}
            _ => {}
        }
    }

    /// The certificate-freshness acceptance rule (see module docs): all
    /// live statuses fresh within τ, unfrozen, ε-certified, and in
    /// version-vector agreement with the coordinator's mirror. `trace`
    /// is the causal trace of the status message that completed the
    /// certificate (0 when the sweep timer triggered the check), so the
    /// quiesce event joins the cross-node span tree.
    fn try_accept(&mut self, now: u64, trace: u64) {
        if self.certified.is_some() {
            return;
        }
        let gate = ViewFreshness {
            staleness_bound: self.cfg.tau,
        };
        let mut gap: f64 = 0.0;
        let mut any = false;
        for j in 0..self.cfg.m {
            if self.evicted[j] {
                continue;
            }
            any = true;
            let s = match &self.statuses[j] {
                Some(s) => s,
                None => return,
            };
            if s.frozen || !gate.accepts(s.gen_us, now, &s.vv, &self.versions) {
                return;
            }
            // NaN (e.g. from an ∞/∞ mismatch regret) must reject, so
            // compare via `partial_cmp` rather than `rel > epsilon`.
            let rel = relative_regret(s.regret, s.d);
            if !matches!(
                rel.partial_cmp(&self.cfg.epsilon),
                Some(Ordering::Less | Ordering::Equal)
            ) {
                return;
            }
            gap = gap.max(rel);
        }
        if !any {
            return;
        }
        self.certified = Some(gap);
        if let Some(c) = enabled(self.collector.as_ref()) {
            c.emit(
                "async.quiesce",
                &[
                    ("t_us", now.into()),
                    ("gap", gap.into()),
                    ("epoch", self.max_epoch.into()),
                    ("trace", trace.into()),
                ],
            );
        }
    }
}

/// How an asynchronous run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncTermination {
    /// The coordinator accepted a certified relative ε-Nash gap from a
    /// provably fresh, quiescent view.
    Converged,
    /// The run stopped without a certificate; the outcome carries the
    /// best known (partial) state.
    Exhausted {
        /// Which budget ran out.
        reason: &'static str,
    },
}

/// The result of an [`AsyncNash`] run: the coordinator's final board,
/// the certificate, and the chaos bookkeeping. Byte-identical across
/// runs and thread counts for a fixed `(model, plan, seed)`.
#[derive(Debug, Clone)]
pub struct AsyncOutcome {
    termination: AsyncTermination,
    certified_gap: Option<f64>,
    final_gap: f64,
    rows: Vec<Vec<f64>>,
    user_times: Vec<f64>,
    phis: Vec<f64>,
    evicted: Vec<usize>,
    epoch: u32,
    virtual_time_us: u64,
    updates: u64,
    syncs: u64,
    retries: u64,
    net: NetStats,
}

impl AsyncOutcome {
    /// How the run ended.
    pub fn termination(&self) -> AsyncTermination {
        self.termination
    }

    /// Whether the run ended with a certified gap.
    pub fn converged(&self) -> bool {
        self.termination == AsyncTermination::Converged
    }

    /// The certified relative ε-Nash gap accepted by the coordinator
    /// (`None` for partial outcomes).
    pub fn certified_gap(&self) -> Option<f64> {
        self.certified_gap
    }

    /// The relative gap recomputed from the final board over surviving
    /// users — advisory for partial outcomes (`∞` when a survivor's row
    /// does not place its full demand).
    pub fn final_gap(&self) -> f64 {
        self.final_gap
    }

    /// The coordinator's final flow board (jobs/s), one row per user;
    /// evicted users' rows are zero.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Final per-user expected response times (`NaN` for evicted users).
    pub fn user_times(&self) -> &[f64] {
        &self.user_times
    }

    /// Users the coordinator declared failed.
    pub fn evicted(&self) -> &[usize] {
        &self.evicted
    }

    /// The highest partition epoch any user reported (0 when no node
    /// ever froze).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Virtual time consumed, µs.
    pub fn virtual_time_us(&self) -> u64 {
        self.virtual_time_us
    }

    /// Best-reply updates applied at the coordinator's mirror.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Anti-entropy merges performed at the coordinator.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Ack-less resends performed across all users (each consumes a
    /// fresh span under the original trace).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// What the network did to the traffic.
    pub fn net_stats(&self) -> NetStats {
        self.net
    }

    /// The final board as a strategy profile (fractions of each user's
    /// nominal demand).
    ///
    /// # Errors
    ///
    /// [`GameError::InfeasibleStrategy`] when a row is not a valid
    /// strategy (e.g. an evicted user's zeroed row).
    pub fn profile(&self) -> Result<StrategyProfile, GameError> {
        let rows = self
            .rows
            .iter()
            .zip(&self.phis)
            .map(|(row, &phi)| Strategy::new(row.iter().map(|x| x / phi).collect()))
            .collect::<Result<Vec<_>, _>>()?;
        StrategyProfile::new(rows)
    }
}

/// Builder/runner for the asynchronous bounded-staleness dynamics. See
/// the module docs for the protocol.
///
/// ```
/// use lb_distributed::async_runtime::AsyncNash;
/// use lb_distributed::net::NetFaultPlan;
/// use lb_game::model::SystemModel;
///
/// let model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap();
/// let out = AsyncNash::new()
///     .seed(7)
///     .fault_plan(NetFaultPlan::new().loss(0.2).reordering(0.3))
///     .run(&model)
///     .unwrap();
/// assert!(out.converged());
/// ```
pub struct AsyncNash {
    seed: u64,
    plan: NetFaultPlan,
    stopping: StoppingRule,
    staleness_us: u64,
    update_period_us: u64,
    max_virtual_us: u64,
    retry_base_us: u64,
    retry_cap_us: u64,
    retry_attempts: u32,
    unreachable_after: u32,
    failure_timeout_us: Option<u64>,
    overload_policy: OverloadPolicy,
    damping: f64,
    threads: usize,
    collector: Option<Arc<dyn Collector>>,
}

impl fmt::Debug for AsyncNash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncNash")
            .field("seed", &self.seed)
            .field("stopping", &self.stopping)
            .field("staleness_us", &self.staleness_us)
            .field("update_period_us", &self.update_period_us)
            .field("max_virtual_us", &self.max_virtual_us)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Default for AsyncNash {
    fn default() -> Self {
        Self::new()
    }
}

impl AsyncNash {
    /// A runner with the default chaos-free network, ε = 10⁻⁴, τ = 20 ms
    /// of virtual time, 1 ms update period, and a 30 s virtual budget.
    pub fn new() -> Self {
        Self {
            seed: 1,
            plan: NetFaultPlan::new(),
            stopping: StoppingRule::default(),
            staleness_us: 20_000,
            update_period_us: 1_000,
            max_virtual_us: 30_000_000,
            retry_base_us: 500,
            retry_cap_us: 16_000,
            retry_attempts: 8,
            unreachable_after: 5,
            failure_timeout_us: None,
            overload_policy: OverloadPolicy::ShedProportional { headroom: 0.05 },
            damping: 0.3,
            threads: 1,
            collector: None,
        }
    }

    /// Seed for the network fault rolls and retry jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The network fault schedule (defaults to a healthy network).
    pub fn fault_plan(mut self, plan: NetFaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The stopping rule. The asynchronous runtime certifies its result
    /// and therefore accepts only [`StoppingRule::CertifiedGap`]; any
    /// other rule makes [`AsyncNash::run`] return a typed error.
    pub fn stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Shorthand: certified relative ε-Nash tolerance.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.stopping = StoppingRule::CertifiedGap { epsilon };
        self
    }

    /// The staleness bound τ (virtual µs): rows are re-announced at
    /// least every τ/2, and certificates are accepted only from statuses
    /// generated within the last τ.
    pub fn staleness_us(mut self, tau: u64) -> Self {
        self.staleness_us = tau;
        self
    }

    /// Virtual time between a user's best-reply ticks.
    pub fn update_period_us(mut self, period: u64) -> Self {
        self.update_period_us = period;
        self
    }

    /// The virtual-time budget after which the run returns a typed
    /// partial outcome.
    pub fn max_virtual_us(mut self, budget: u64) -> Self {
        self.max_virtual_us = budget;
        self
    }

    /// Retry backoff bounds (virtual µs) for unacknowledged updates.
    pub fn retry_us(mut self, base: u64, cap: u64) -> Self {
        self.retry_base_us = base;
        self.retry_cap_us = cap;
        self
    }

    /// Consecutive ack-less sends after which a peer counts as
    /// unreachable for partition detection.
    pub fn unreachable_after(mut self, attempts: u32) -> Self {
        self.unreachable_after = attempts.max(1);
        self
    }

    /// Silence (virtual µs) after which the coordinator declares a user
    /// failed and evicts it (default: 50 τ).
    pub fn failure_timeout_us(mut self, timeout: u64) -> Self {
        self.failure_timeout_us = Some(timeout);
        self
    }

    /// Admission policy a minority partition uses to shed load.
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload_policy = policy;
        self
    }

    /// Best-reply step size β ∈ (0, 1] (clamped). Concurrent undamped
    /// replies oscillate for m ≥ 3 (the synchronous Jacobi failure
    /// mode), and asynchrony tightens the stable range further: the
    /// sampled solver's β = 0.5 still cycles when views are a full
    /// update period stale, while β = 0.3 converges across the chaos
    /// sweep — hence the smaller default. A damped stationary point is
    /// still an exact mutual best reply, so the certificate is
    /// unaffected.
    pub fn damping(mut self, beta: f64) -> Self {
        self.damping = if beta.is_finite() {
            beta.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            1.0
        };
        self
    }

    /// Worker threads for the final certificate recomputation. Purely a
    /// throughput knob: the outcome is byte-identical at any setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a telemetry collector (`net.*` and `async.*` events).
    pub fn collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs the asynchronous dynamics to a certified equilibrium or a
    /// typed partial outcome. Never hangs: virtual time and event count
    /// are both budgeted.
    ///
    /// # Errors
    ///
    /// * [`GameError::ZeroDuration`] for a zero `staleness_us`,
    ///   `update_period_us`, or `max_virtual_us`.
    /// * [`GameError::InfeasibleStrategy`] for a stopping rule other
    ///   than [`StoppingRule::CertifiedGap`].
    pub fn run(&self, model: &SystemModel) -> Result<AsyncOutcome, GameError> {
        let epsilon = match self.stopping {
            StoppingRule::CertifiedGap { epsilon } => epsilon,
            ref other => {
                return Err(GameError::InfeasibleStrategy {
                    reason: format!(
                        "the async runtime certifies its result and supports only \
                         StoppingRule::CertifiedGap, got {other:?}"
                    ),
                })
            }
        };
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(GameError::InvalidRate {
                name: "epsilon",
                value: epsilon,
            });
        }
        for (what, v) in [
            ("staleness_bound", self.staleness_us),
            ("update_period", self.update_period_us),
            ("max_virtual_time", self.max_virtual_us),
        ] {
            if v == 0 {
                return Err(GameError::ZeroDuration { what });
            }
        }
        let m = model.num_users();
        let cfg = Cfg {
            m,
            coord: m,
            mu: model.computer_rates().to_vec(),
            phis: model.user_rates().to_vec(),
            epsilon,
            tau: self.staleness_us,
            period: self.update_period_us,
            retry_base_us: self.retry_base_us,
            retry_cap_us: self.retry_cap_us,
            retry_attempts: self.retry_attempts,
            unreachable_after: self.unreachable_after,
            policy: self.overload_policy,
            damping: self.damping,
            seed: self.seed,
        };
        let failure_timeout = self
            .failure_timeout_us
            .unwrap_or(50 * self.staleness_us)
            .max(1);

        let seed_rows = proportional_rows(&cfg);
        let mut users: Vec<UserNode> = (0..m)
            .map(|j| UserNode::new(j, &cfg, seed_rows.clone()))
            .collect();
        let mut coord = CoordNode::new(&cfg, seed_rows, failure_timeout);
        coord.collector = self.collector.clone();

        let mut net: VirtualNet<Msg> = VirtualNet::new(m + 1, self.seed, self.plan.clone());
        if let Some(c) = &self.collector {
            net.collector(c.clone());
        }
        // Staggered first ticks decorrelate the users' update phases —
        // the async analogue of the ring's round-robin order.
        for (j, user) in users.iter().enumerate() {
            let _ = user;
            net.schedule(j, 1 + (j as u64 * cfg.period) / m as u64, Msg::TickUpdate);
        }
        net.schedule(m, cfg.tau, Msg::Check);

        let mut termination = AsyncTermination::Exhausted {
            reason: "virtual-time budget exhausted",
        };
        let mut events = 0u64;
        while let Some(d) = net.step() {
            if d.at_us > self.max_virtual_us {
                break;
            }
            events += 1;
            if events > MAX_EVENTS {
                termination = AsyncTermination::Exhausted {
                    reason: "event budget exhausted",
                };
                break;
            }
            let now = d.at_us;
            if d.to == m {
                coord.handle(d.from, d.msg, d.ctx, &mut net, now);
                if coord.certified.is_some() {
                    termination = AsyncTermination::Converged;
                    break;
                }
            } else {
                users[d.to].handle(d.from, d.msg, d.ctx, &mut net, now);
            }
            if users.iter().all(|u| u.dead) {
                termination = AsyncTermination::Exhausted {
                    reason: "all users failed",
                };
                break;
            }
        }

        let virtual_time_us = net.now().min(self.max_virtual_us);
        let alive: Vec<usize> = (0..m).filter(|&j| !coord.evicted[j]).collect();
        let per_user = certificate_rows(&cfg, &coord.rows, &alive, self.threads);
        let mut final_gap: f64 = 0.0;
        let mut user_times = vec![f64::NAN; m];
        for (&j, &(regret, dj)) in alive.iter().zip(&per_user) {
            final_gap = final_gap.max(relative_regret(regret, dj));
            user_times[j] = dj;
        }
        let updates: u64 = users.iter().map(|u| u.updates).sum();
        let retries: u64 = users.iter().map(|u| u.retries).sum();
        // Resource-accounting snapshot: what the episode cost the
        // network, every field an integer (schema `account.*` rule).
        let stats = net.stats();
        if let Some(c) = enabled(self.collector.as_ref()) {
            c.emit(
                "account.net",
                &[
                    ("sent", stats.sent.into()),
                    ("delivered", stats.delivered.into()),
                    ("dropped", stats.dropped.into()),
                    ("duplicated", stats.duplicated.into()),
                    ("reordered", stats.reordered.into()),
                    ("partition_drops", stats.partition_drops.into()),
                    ("bytes", stats.bytes.into()),
                    ("retries", retries.into()),
                ],
            );
        }
        Ok(AsyncOutcome {
            certified_gap: (termination == AsyncTermination::Converged).then_some(final_gap),
            termination,
            final_gap,
            rows: coord.rows,
            user_times,
            phis: cfg.phis.clone(),
            evicted: (0..m).filter(|&j| coord.evicted[j]).collect(),
            epoch: coord.max_epoch,
            virtual_time_us,
            updates,
            syncs: coord.syncs,
            retries,
            net: stats,
        })
    }
}

/// Per-user `(regret, D_j)` over the final board — the pure reduction
/// the `threads` knob parallelizes. Chunk results are merged in index
/// order, so the output is bitwise identical at any thread count.
fn certificate_rows(
    cfg: &Cfg,
    rows: &[Vec<f64>],
    alive: &[usize],
    threads: usize,
) -> Vec<(f64, f64)> {
    let compute = |&j: &usize| measure(cfg, rows, j);
    if threads <= 1 || alive.len() <= 1 {
        return alive.iter().map(compute).collect();
    }
    let chunk = alive.len().div_ceil(threads);
    let mut out = Vec::with_capacity(alive.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = alive
            .chunks(chunk)
            .map(|part| s.spawn(move |_| part.iter().map(compute).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
    })
    .unwrap_or_else(|p| std::panic::resume_unwind(p));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::equilibrium::epsilon_nash_gap;

    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn converges_on_a_healthy_network() {
        let m = model();
        let out = AsyncNash::new().run(&m).unwrap();
        assert!(out.converged(), "termination {:?}", out.termination());
        assert!(out.certified_gap().unwrap() <= 1e-4);
        let gap = epsilon_nash_gap(&m, &out.profile().unwrap()).unwrap();
        assert!(gap < 1e-3, "true gap {gap}");
        assert!(out.updates() > 0);
        assert!(out.evicted().is_empty());
    }

    #[test]
    fn converges_under_loss_dup_and_reorder() {
        let m = model();
        let plan = NetFaultPlan::new()
            .loss(0.3)
            .duplication(0.15)
            .reordering(0.4)
            .delay_us(50, 2_000);
        let out = AsyncNash::new().seed(11).fault_plan(plan).run(&m).unwrap();
        assert!(out.converged(), "termination {:?}", out.termination());
        let stats = out.net_stats();
        assert!(stats.dropped > 0 && stats.duplicated > 0);
        let gap = epsilon_nash_gap(&m, &out.profile().unwrap()).unwrap();
        assert!(gap < 1e-3, "true gap {gap}");
    }

    #[test]
    fn same_seed_bitwise_identical_outcome() {
        let m = model();
        let plan = || {
            NetFaultPlan::new()
                .loss(0.25)
                .reordering(0.5)
                .delay_us(10, 900)
        };
        let a = AsyncNash::new().seed(5).fault_plan(plan()).run(&m).unwrap();
        let b = AsyncNash::new().seed(5).fault_plan(plan()).run(&m).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let m = model();
        let plan = || {
            NetFaultPlan::new()
                .loss(0.2)
                .duplication(0.1)
                .delay_us(10, 700)
        };
        let run = |threads: usize| {
            AsyncNash::new()
                .seed(3)
                .threads(threads)
                .fault_plan(plan())
                .run(&m)
                .unwrap()
        };
        let t1 = format!("{:?}", run(1));
        assert_eq!(t1, format!("{:?}", run(2)));
        assert_eq!(t1, format!("{:?}", run(8)));
    }

    #[test]
    fn partition_freezes_minority_then_heals_and_certifies() {
        let m = SystemModel::new(vec![10.0, 20.0, 50.0], vec![12.0, 15.0, 20.0]).unwrap();
        // User 0 is cut off from everyone (users 1, 2 + coordinator)
        // for the first 200 ms of virtual time, then heals.
        let plan = NetFaultPlan::new()
            .delay_us(50, 400)
            .partition_at(0, 200_000, vec![0]);
        let out = AsyncNash::new().seed(9).fault_plan(plan).run(&m).unwrap();
        assert!(out.converged(), "termination {:?}", out.termination());
        assert!(out.epoch() >= 2, "minority must freeze and unfreeze");
        assert!(out.net_stats().partition_drops > 0);
        let gap = epsilon_nash_gap(&m, &out.profile().unwrap()).unwrap();
        assert!(gap < 1e-3, "true gap {gap}");
    }

    #[test]
    fn budget_exhaustion_returns_typed_partial_outcome() {
        let m = model();
        let out = AsyncNash::new().max_virtual_us(2_000).run(&m).unwrap();
        assert_eq!(
            out.termination(),
            AsyncTermination::Exhausted {
                reason: "virtual-time budget exhausted"
            }
        );
        assert!(out.certified_gap().is_none());
        assert!(out.final_gap().is_finite() || out.final_gap().is_infinite());
    }

    #[test]
    fn crashed_user_is_evicted_and_survivors_certify() {
        let m = SystemModel::new(vec![10.0, 20.0, 50.0], vec![12.0, 15.0, 20.0]).unwrap();
        let plan = NetFaultPlan::new().node_faults(crate::fault::FaultPlan::new().panic_at(1, 3));
        let out = AsyncNash::new()
            .seed(2)
            .staleness_us(10_000)
            .failure_timeout_us(60_000)
            .fault_plan(plan)
            .run(&m)
            .unwrap();
        assert_eq!(out.evicted(), &[1]);
        assert!(out.converged(), "termination {:?}", out.termination());
        assert!(out.rows()[1].iter().all(|&x| x == 0.0));
        assert!(out.user_times()[1].is_nan());
    }

    #[test]
    fn zero_durations_are_rejected() {
        let m = model();
        for (what, build) in [
            ("staleness_bound", AsyncNash::new().staleness_us(0)),
            ("update_period", AsyncNash::new().update_period_us(0)),
            ("max_virtual_time", AsyncNash::new().max_virtual_us(0)),
        ] {
            match build.run(&m) {
                Err(GameError::ZeroDuration { what: got }) => assert_eq!(got, what),
                other => panic!("expected ZeroDuration for {what}, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_certified_stopping_rule_is_rejected() {
        let err = AsyncNash::new()
            .stopping_rule(StoppingRule::AbsoluteNorm)
            .run(&model());
        assert!(matches!(err, Err(GameError::InfeasibleStrategy { .. })));
    }

    #[test]
    fn emits_the_async_event_family() {
        use lb_telemetry::MemoryCollector;
        let collector = Arc::new(MemoryCollector::default());
        let m = model();
        let plan = NetFaultPlan::new().loss(0.2).duplication(0.1);
        let out = AsyncNash::new()
            .seed(4)
            .fault_plan(plan)
            .collector(collector.clone())
            .run(&m)
            .unwrap();
        assert!(out.converged());
        assert!(collector.count("async.update") > 0);
        assert_eq!(collector.count("async.quiesce"), 1);
        assert!(collector.count("net.drop") > 0);
        // v3 families: every protocol message is traced, and the
        // coordinator reports per-user view staleness on every status.
        assert!(collector.count("xspan.send") > 0);
        assert!(collector.count("xspan.recv") > 0);
        assert!(collector.count("async.staleness") > 0);
        assert!(
            collector.count("xspan.send") >= collector.count("xspan.recv"),
            "loss leaves orphan sends, never orphan recvs"
        );
        // v4: the episode closes with one resource-accounting snapshot
        // whose counters agree with the outcome's own bookkeeping.
        assert_eq!(collector.count("account.net"), 1);
        let (_, fields) = collector
            .events()
            .into_iter()
            .find(|(name, _)| *name == "account.net")
            .unwrap();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    lb_telemetry::FieldValue::U64(n) => Some(*n),
                    _ => None,
                })
                .unwrap()
        };
        let stats = out.net_stats();
        assert_eq!(get("sent"), stats.sent);
        assert_eq!(get("dropped"), stats.dropped);
        assert_eq!(get("bytes"), stats.bytes);
        assert_eq!(get("retries"), out.retries());
        assert!(stats.bytes >= stats.sent, "payloads are non-empty");
    }

    #[test]
    fn attaching_observability_does_not_change_the_outcome() {
        use lb_telemetry::{MemoryCollector, SloEngine, SloSpec};
        let m = model();
        let plan = || {
            NetFaultPlan::new()
                .loss(0.25)
                .duplication(0.1)
                .reordering(0.4)
                .delay_us(10, 900)
        };
        let bare = AsyncNash::new().seed(6).fault_plan(plan()).run(&m).unwrap();
        let engine = Arc::new(SloEngine::new(
            vec![SloSpec::staleness_max(20_000.0, 10_000)],
            Some(Arc::new(MemoryCollector::default()) as _),
        ));
        let watched = AsyncNash::new()
            .seed(6)
            .fault_plan(plan())
            .collector(engine)
            .run(&m)
            .unwrap();
        assert_eq!(format!("{bare:?}"), format!("{watched:?}"));
    }
}
