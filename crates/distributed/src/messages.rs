//! The token-ring protocol of the distributed NASH algorithm.
//!
//! The paper's pseudocode passes `(norm, s)` between users with
//! `Send`/`Recv`. Here the strategies live on the shared [`crate::board`]
//! (users observe each other through computer state, not by reading each
//! other's strategies — exactly the paper's "inspect the run queue"
//! remark), so the token carries only the control state: the round
//! number, the accumulated norm, the completed norm trace, and the
//! termination flag.

/// The control token circulating the user ring.
#[derive(Debug, Clone)]
pub struct Token {
    /// Current round (sweep) number, starting at 0.
    pub round: u32,
    /// Norm accumulated so far in this round: partial
    /// `Σ_j |D_j^{(l)} − D_j^{(l−1)}|`.
    pub norm_acc: f64,
    /// Completed rounds' norms (the Figure-2 series).
    pub trace: Vec<f64>,
    /// Set by the ring tail when the algorithm must stop (converged or
    /// out of budget); one final lap delivers it to everyone.
    pub terminate: Termination,
}

/// Why (or whether) the ring is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Keep iterating.
    Continue,
    /// Converged: the last completed round's norm met the tolerance.
    Converged,
    /// The round budget was exhausted before convergence.
    Exhausted,
}

impl Token {
    /// A fresh token starting round 0.
    pub fn initial() -> Self {
        Self {
            round: 0,
            norm_acc: 0.0,
            trace: Vec::new(),
            terminate: Termination::Continue,
        }
    }
}

/// A user's final report, sent to the coordinator on shutdown.
#[derive(Debug, Clone)]
pub struct FinalReport {
    /// The user's index.
    pub user: usize,
    /// The user's final strategy (job fractions).
    pub fractions: Vec<f64>,
    /// The user's final expected response time `D_j`.
    pub response_time: f64,
    /// Best replies the user computed.
    pub updates: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_token_is_clean() {
        let t = Token::initial();
        assert_eq!(t.round, 0);
        assert_eq!(t.norm_acc, 0.0);
        assert!(t.trace.is_empty());
        assert_eq!(t.terminate, Termination::Continue);
    }
}
