//! Property tests on the game-theoretic kernels (crate-level; the
//! workspace-level `tests/properties.rs` covers the cross-scheme
//! invariants).

use lb_game::best_reply::{satisfies_kkt, split_cost, water_fill_flows};
use lb_game::dynamics::{remap_profile, remap_profile_columns};
use lb_game::equilibrium::epsilon_nash_gap;
use lb_game::model::SystemModel;
use lb_game::sampled::SampledNashSolver;
use lb_game::schemes::{wardrop_flows, StackelbergScheme};
use lb_game::stopping::profile_certificate;
use lb_game::strategy::{Strategy as UserStrategy, StrategyProfile};
use proptest::prelude::*;

fn arb_rates() -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..200.0, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn water_filling_uses_a_rate_threshold(rates in arb_rates(), frac in 0.01f64..0.95) {
        // The optimal support is "all computers at least as fast as the
        // slowest used one" — a threshold structure in available rate.
        let demand = rates.iter().sum::<f64>() * frac;
        let flows = water_fill_flows(&rates, demand).unwrap();
        let slowest_used = flows
            .iter()
            .zip(&rates)
            .filter(|(&x, _)| x > 0.0)
            .map(|(_, &a)| a)
            .fold(f64::INFINITY, f64::min);
        for (&x, &a) in flows.iter().zip(&rates) {
            if a > slowest_used {
                prop_assert!(x > 0.0, "faster computer unused: rate {a} vs threshold {slowest_used}");
            }
        }
    }

    #[test]
    fn water_filling_conserves_demand_and_satisfies_kkt(rates in arb_rates(), frac in 0.01f64..0.95) {
        // Conservation must hold to tight absolute tolerance: the clamp
        // at the prefix boundary used to leak a few ulps of demand per
        // call, which compounds over thousands of best replies.
        let demand = rates.iter().sum::<f64>() * frac;
        let flows = water_fill_flows(&rates, demand).unwrap();
        let sum: f64 = flows.iter().sum();
        prop_assert!(
            (sum - demand).abs() <= 1e-9,
            "conservation drift {:e} (demand {demand})",
            (sum - demand).abs()
        );
        for (&x, &a) in flows.iter().zip(&rates) {
            prop_assert!(x >= 0.0, "negative flow {x}");
            if x > 0.0 {
                prop_assert!(x < a, "saturating flow {x} on rate {a}");
            }
        }
        prop_assert!(
            satisfies_kkt(&rates, &flows, 1e-6),
            "KKT violated for rates {rates:?}, demand {demand}"
        );
    }

    #[test]
    fn water_filling_cost_is_monotone_in_demand(rates in arb_rates(), f1 in 0.01f64..0.9, f2 in 0.01f64..0.9) {
        let total: f64 = rates.iter().sum();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let c_lo = split_cost(&rates, &water_fill_flows(&rates, total * lo).unwrap());
        let c_hi = split_cost(&rates, &water_fill_flows(&rates, total * hi).unwrap());
        prop_assert!(c_lo <= c_hi + 1e-9, "cost not monotone: {c_lo} vs {c_hi}");
    }

    #[test]
    fn water_filling_is_scale_equivariant(rates in arb_rates(), frac in 0.05f64..0.9, scale in 0.1f64..10.0) {
        // Scaling all rates and the demand scales the flows.
        let demand = rates.iter().sum::<f64>() * frac;
        let base = water_fill_flows(&rates, demand).unwrap();
        let scaled_rates: Vec<f64> = rates.iter().map(|a| a * scale).collect();
        let scaled = water_fill_flows(&scaled_rates, demand * scale).unwrap();
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s - b * scale).abs() < 1e-6 * (1.0 + s.abs()));
        }
    }

    #[test]
    fn wardrop_satisfies_the_equilibrium_inequalities(rates in arb_rates(), frac in 0.01f64..0.95) {
        let phi = rates.iter().sum::<f64>() * frac;
        let flows = wardrop_flows(&rates, phi).unwrap();
        let used_time = flows
            .iter()
            .zip(&rates)
            .filter(|(&l, _)| l > 0.0)
            .map(|(&l, &m)| 1.0 / (m - l))
            .fold(0.0f64, f64::max);
        for (&l, &m) in flows.iter().zip(&rates) {
            if l > 0.0 {
                prop_assert!((1.0 / (m - l) - used_time).abs() < 1e-6 * used_time);
            } else {
                prop_assert!(1.0 / m >= used_time - 1e-9, "unused computer is strictly better");
            }
        }
    }

    #[test]
    fn wardrop_never_beats_the_social_optimum(rates in arb_rates(), frac in 0.01f64..0.95) {
        let phi = rates.iter().sum::<f64>() * frac;
        let wardrop = wardrop_flows(&rates, phi).unwrap();
        let optimal = water_fill_flows(&rates, phi).unwrap();
        prop_assert!(
            split_cost(&rates, &optimal) <= split_cost(&rates, &wardrop) + 1e-9
        );
        prop_assert!(satisfies_kkt(&rates, &optimal, 1e-5));
    }

    #[test]
    fn stackelberg_cost_is_sandwiched(rates in prop::collection::vec(1.0f64..100.0, 2..8), frac in 0.1f64..0.9, alpha in 0.0f64..1.0) {
        // For any alpha, LLF + Wardrop followers is between the optimum
        // and the pure Wardrop cost.
        let users: Vec<f64> = vec![rates.iter().sum::<f64>() * frac];
        let model = SystemModel::new(rates.clone(), users).unwrap();
        let st = StackelbergScheme::new(alpha).unwrap();
        let p = lb_game::schemes::LoadBalancingScheme::compute(&st, &model).unwrap();
        let d = lb_game::response::overall_response_time(&model, &p).unwrap();
        let phi = model.total_arrival_rate();
        let d_opt = split_cost(&rates, &water_fill_flows(&rates, phi).unwrap());
        let d_wardrop = split_cost(&rates, &wardrop_flows(&rates, phi).unwrap());
        prop_assert!(d >= d_opt - 1e-9, "beats the optimum: {d} < {d_opt}");
        prop_assert!(d <= d_wardrop + 1e-9, "worse than Wardrop: {d} > {d_wardrop}");
    }

    #[test]
    fn strategy_profile_flows_match_manual_sum(
        fractions in prop::collection::vec(0.01f64..1.0, 2..6),
        phis in prop::collection::vec(0.1f64..5.0, 1..4),
    ) {
        // Build a model large enough to be stable and a replicated
        // normalized strategy; flows must equal phi-weighted fractions.
        let n = fractions.len();
        let sum: f64 = fractions.iter().sum();
        let normalized: Vec<f64> = fractions.iter().map(|f| f / sum).collect();
        let capacity_needed: f64 = phis.iter().sum::<f64>() * 2.0 + 1.0;
        let rates = vec![capacity_needed; n];
        let model = SystemModel::new(rates, phis.clone()).unwrap();
        let profile = StrategyProfile::replicated(
            UserStrategy::new(normalized.clone()).unwrap(),
            phis.len(),
        )
        .unwrap();
        let flows = profile.computer_flows(&model).unwrap();
        let phi_total: f64 = phis.iter().sum();
        for (i, &f) in flows.iter().enumerate() {
            prop_assert!((f - normalized[i] * phi_total).abs() < 1e-9 * (1.0 + f));
        }
    }

    #[test]
    fn remap_profile_stays_row_stochastic_under_reshaping(
        m_old in 1usize..6,
        n_old in 1usize..8,
        weights in prop::collection::vec(0.0f64..1.0, 48),
        m_new in 1usize..6,
        n_new in 1usize..10,
        rate_pool in prop::collection::vec(0.5f64..100.0, 10),
        user_pool in prop::collection::vec(0.01f64..1.0, 6),
        util in 0.1f64..0.9,
        col_picks in prop::collection::vec(0usize..16, 10),
    ) {
        // Arbitrary old profile: m_old rows over n_old computers.
        let old = profile_from_pool(m_old, n_old, &weights);
        // Arbitrary new model: n_new computers, m_new users at `util`.
        let rates: Vec<f64> = rate_pool[..n_new].to_vec();
        let capacity: f64 = rates.iter().sum();
        let wsum: f64 = user_pool[..m_new].iter().sum();
        let users: Vec<f64> = user_pool[..m_new]
            .iter()
            .map(|w| w / wsum * util * capacity)
            .collect();
        let model = SystemModel::new(rates, users).unwrap();

        // Positional remap (computers appended/truncated at the end).
        let remapped = remap_profile(&old, &model).unwrap();
        assert_row_stochastic(&remapped, m_new, n_new)?;

        // Index-aware remap under arbitrary removals/additions: each new
        // column pulls from a random old column or starts fresh.
        let columns: Vec<Option<usize>> = col_picks[..n_new]
            .iter()
            .map(|&p| if p < n_old { Some(p) } else { None })
            .collect();
        let remapped = remap_profile_columns(&old, &model, &columns).unwrap();
        assert_row_stochastic(&remapped, m_new, n_new)?;
    }

    #[test]
    fn certificate_bounds_the_exact_nash_gap(
        rates in prop::collection::vec(1.0f64..100.0, 2..10),
        fractions in prop::collection::vec(0.1f64..1.0, 1..5),
        rho in 0.1f64..0.45,
        tilt in prop::collection::vec(0.0f64..1.0, 10),
    ) {
        // Soundness of the stopping certificate: on any feasible profile
        // the water-filling KKT regret bound dominates the exact best-
        // reply improvement, so a certified ε is never an understatement.
        let model = SystemModel::with_utilization(rates.clone(), &fractions, rho).expect("valid");
        let n = model.num_computers();
        // A rate-proportional split tilted per computer; with ρ < 0.45
        // and tilt weights in [1, 2) every load stays under capacity.
        let weights: Vec<f64> = (0..n).map(|i| rates[i] * (1.0 + tilt[i])).collect();
        let wsum: f64 = weights.iter().sum();
        let row = UserStrategy::new(weights.iter().map(|w| w / wsum).collect()).unwrap();
        let profile = StrategyProfile::replicated(row, model.num_users()).unwrap();

        let cert = profile_certificate(&model, &profile).unwrap();
        let gap = epsilon_nash_gap(&model, &profile).unwrap();
        prop_assert!(
            cert.absolute + 1e-9 * (1.0 + gap) >= gap,
            "certificate {} understates the exact gap {}",
            cert.absolute,
            gap
        );
    }

    #[test]
    fn water_filling_never_panics_on_non_finite_rates(
        rates in arb_rates(),
        pos in 0usize..12,
        bad_pick in 0usize..3,
        frac in 0.01f64..0.95,
    ) {
        // Regression: the descending-rate sort used `partial_cmp().unwrap()`,
        // which panicked the solver thread when a churn event produced a
        // NaN rate. With `total_cmp` the call must always return.
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_pick];
        let demand = rates.iter().sum::<f64>() * frac;
        let mut poisoned = rates.clone();
        let idx = pos % poisoned.len();
        poisoned[idx] = bad;
        if let Ok(flows) = water_fill_flows(&poisoned, demand) {
            prop_assert_eq!(flows.len(), poisoned.len());
        }
    }

    #[test]
    fn sampled_solver_is_byte_identical_across_thread_counts(
        rates in prop::collection::vec(5.0f64..100.0, 4..16),
        fractions in prop::collection::vec(0.1f64..1.0, 2..6),
        rho in 0.2f64..0.7,
        seed in 0u64..u64::MAX,
    ) {
        // The sampled solver's parallel certificate pass is a pure
        // max-reduction and its update sweep is sequential, so the
        // outcome must not depend on the worker pool size.
        let model = SystemModel::with_utilization(rates, &fractions, rho).expect("valid");
        let solve = |threads: usize| {
            SampledNashSolver::new()
                .seed(seed)
                .threads(threads)
                .max_sweeps(64)
                .solve(&model)
                .unwrap()
        };
        let base = solve(1);
        for threads in [2, 8] {
            let other = solve(threads);
            prop_assert_eq!(base.iterations(), other.iterations());
            prop_assert_eq!(base.flows().len(), other.flows().len());
            for (a, b) in base.flows().iter().zip(other.flows()) {
                prop_assert_eq!(a.len(), b.len());
                for (&(ia, xa), &(ib, xb)) in a.iter().zip(b) {
                    prop_assert_eq!(ia, ib);
                    prop_assert_eq!(xa.to_bits(), xb.to_bits(), "flows differ bitwise");
                }
            }
        }
    }
}

/// Builds an `m × n` strategy profile from a flat weight pool,
/// normalizing each row (uniform fallback for all-zero rows).
fn profile_from_pool(m: usize, n: usize, weights: &[f64]) -> StrategyProfile {
    let rows: Vec<UserStrategy> = (0..m)
        .map(|j| {
            let row = &weights[j * n..(j + 1) * n];
            let sum: f64 = row.iter().sum();
            let fr: Vec<f64> = if sum > 1e-9 {
                row.iter().map(|x| x / sum).collect()
            } else {
                vec![1.0 / n as f64; n]
            };
            UserStrategy::new(fr).unwrap()
        })
        .collect();
    StrategyProfile::new(rows).unwrap()
}

fn assert_row_stochastic(profile: &StrategyProfile, m: usize, n: usize) -> Result<(), String> {
    prop_assert_eq!(profile.num_users(), m);
    for j in 0..m {
        let fr = profile.strategy(j).fractions();
        prop_assert_eq!(fr.len(), n);
        let mut sum = 0.0;
        for &x in fr {
            prop_assert!(x >= 0.0, "negative fraction {} in row {}", x, j);
            prop_assert!(x.is_finite(), "non-finite fraction in row {}", j);
            sum += x;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", j, sum);
    }
    Ok(())
}
