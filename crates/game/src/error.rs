//! Error type for the load-balancing game.

use lb_queueing::QueueingError;
use std::fmt;

/// Errors raised by model construction, best-reply computation and the
/// equilibrium algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A rate was non-positive or non-finite.
    InvalidRate {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The model has no computers or no users.
    EmptyModel {
        /// Which collection was empty: `"computers"` or `"users"`.
        what: &'static str,
    },
    /// The standing stability assumption `Φ < Σ μ_i` fails.
    ///
    /// The payload is actionable: `utilization` says how far past
    /// capacity the demand sits, and `min_shed` is the smallest total
    /// arrival rate that must be shed (admission-controlled away) to
    /// restore strict feasibility. Pair with
    /// [`crate::overload::shed_to_feasible`] to compute *which* users
    /// give up *how much*.
    Overloaded {
        /// Total user arrival rate Φ.
        total_arrival_rate: f64,
        /// Aggregate capacity Σ μ_i.
        total_capacity: f64,
        /// System utilization Φ / Σ μ_i (≥ 1 when this error fires;
        /// `+∞` when the capacity is zero).
        utilization: f64,
        /// Minimum arrival rate to shed for `Φ < Σ μ_i` to hold again:
        /// `Φ − Σ μ_i` (plus any strict-inequality margin the caller
        /// wants on top).
        min_shed: f64,
    },
    /// Vector lengths disagree with the model dimensions.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A strategy violated positivity or conservation.
    InfeasibleStrategy {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A user's best-reply subproblem has no feasible solution — the other
    /// users leave less available capacity than the user's arrival rate.
    InfeasibleBestReply {
        /// Index of the user.
        user: usize,
        /// Capacity left to the user.
        available: f64,
        /// The user's arrival rate.
        demand: f64,
    },
    /// The iterative algorithm exhausted its iteration budget without
    /// meeting the convergence tolerance.
    DidNotConverge {
        /// Iterations performed.
        iterations: u32,
        /// Final value of the convergence norm.
        final_norm: f64,
    },
    /// An iterative solver was asked to run with `max_iterations == 0`:
    /// no sweep can execute, so no convergence norm exists and nothing
    /// can be reported honestly.
    ZeroIterationBudget,
    /// A timeout or deadline was configured as zero: the run would
    /// either hang (never fire) or abort before any work, depending on
    /// an implementation detail — reject it up front instead.
    ZeroDuration {
        /// Which knob was zero, e.g. `"round_timeout"`.
        what: &'static str,
    },
    /// A distributed ring stalled: the token was lost (or a deadline
    /// expired) and the run could not be repaired into a result.
    RingTimeout {
        /// Rounds the ring had completed when it stalled.
        round: u32,
        /// How long the coordinator waited before giving up, in ms.
        waited_ms: u64,
        /// What the coordinator was waiting for when it gave up.
        reason: String,
    },
    /// An error bubbled up from the queueing substrate.
    Queueing(QueueingError),
}

impl GameError {
    /// Builds an [`GameError::Overloaded`] from the raw demand/capacity
    /// pair, deriving the actionable `utilization` and `min_shed` fields.
    #[must_use]
    pub fn overloaded(total_arrival_rate: f64, total_capacity: f64) -> Self {
        let utilization = if total_capacity > 0.0 {
            total_arrival_rate / total_capacity
        } else {
            f64::INFINITY
        };
        Self::Overloaded {
            total_arrival_rate,
            total_capacity,
            utilization,
            min_shed: (total_arrival_rate - total_capacity).max(0.0),
        }
    }
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRate { name, value } => {
                write!(f, "rate `{name}` must be positive and finite, got {value}")
            }
            Self::EmptyModel { what } => write!(f, "model must have at least one of: {what}"),
            Self::Overloaded {
                total_arrival_rate,
                total_capacity,
                utilization,
                min_shed,
            } => write!(
                f,
                "system overloaded: total arrival rate {total_arrival_rate} >= capacity \
                 {total_capacity} (utilization {utilization:.4}); shed at least {min_shed} \
                 jobs/s to restore feasibility"
            ),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Self::InfeasibleStrategy { reason } => write!(f, "infeasible strategy: {reason}"),
            Self::InfeasibleBestReply {
                user,
                available,
                demand,
            } => write!(
                f,
                "best reply infeasible for user {user}: available capacity {available} < demand {demand}"
            ),
            Self::DidNotConverge {
                iterations,
                final_norm,
            } => write!(
                f,
                "did not converge after {iterations} iterations (norm {final_norm})"
            ),
            Self::ZeroIterationBudget => {
                write!(f, "iteration budget is zero: no sweep can run, so convergence is undefined")
            }
            Self::ZeroDuration { what } => {
                write!(f, "duration `{what}` must be positive, got zero")
            }
            Self::RingTimeout {
                round,
                waited_ms,
                reason,
            } => write!(
                f,
                "distributed ring timed out at round {round} after {waited_ms} ms: {reason}"
            ),
            Self::Queueing(e) => write!(f, "queueing error: {e}"),
        }
    }
}

impl std::error::Error for GameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Queueing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueueingError> for GameError {
    fn from(e: QueueingError) -> Self {
        Self::Queueing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<GameError> = vec![
            GameError::InvalidRate {
                name: "phi",
                value: -1.0,
            },
            GameError::EmptyModel { what: "users" },
            GameError::overloaded(10.0, 5.0),
            GameError::DimensionMismatch {
                expected: 3,
                actual: 1,
            },
            GameError::InfeasibleStrategy {
                reason: "sums to 0.9".into(),
            },
            GameError::InfeasibleBestReply {
                user: 2,
                available: 1.0,
                demand: 2.0,
            },
            GameError::DidNotConverge {
                iterations: 100,
                final_norm: 0.5,
            },
            GameError::ZeroIterationBudget,
            GameError::ZeroDuration {
                what: "round_timeout",
            },
            GameError::RingTimeout {
                round: 3,
                waited_ms: 250,
                reason: "token lost at user 1".into(),
            },
            GameError::Queueing(QueueingError::EmptySystem),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn overloaded_payload_is_actionable() {
        let e = GameError::overloaded(12.0, 10.0);
        match &e {
            GameError::Overloaded {
                utilization,
                min_shed,
                ..
            } => {
                assert!((utilization - 1.2).abs() < 1e-12);
                assert!((min_shed - 2.0).abs() < 1e-12);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let msg = e.to_string();
        assert!(msg.contains("utilization 1.2000"), "message: {msg}");
        assert!(msg.contains("shed at least 2"), "message: {msg}");

        // Zero capacity: utilization degenerates to infinity, everything
        // must be shed.
        match GameError::overloaded(3.0, 0.0) {
            GameError::Overloaded {
                utilization,
                min_shed,
                ..
            } => {
                assert!(utilization.is_infinite());
                assert!((min_shed - 3.0).abs() < 1e-12);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn queueing_error_converts_and_sources() {
        use std::error::Error;
        let e: GameError = QueueingError::EmptySystem.into();
        assert!(matches!(e, GameError::Queueing(_)));
        assert!(e.source().is_some());
        let e = GameError::EmptyModel { what: "users" };
        assert!(e.source().is_none());
    }
}
