//! The heterogeneous distributed system shared by selfish users.
//!
//! A [`SystemModel`] couples the computer bank (rates `μ_1 … μ_n`, each an
//! M/M/1 queue) with the user population (Poisson rates `φ_1 … φ_m`) under
//! the standing assumption `Φ = Σ φ_j < Σ μ_i`. It also provides the
//! paper's concrete configurations:
//!
//! * [`SystemModel::table1_system`] — Table 1: 16 computers with relative
//!   rates {1, 2, 5, 10} in counts {6, 5, 3, 2} (10/20/50/100 jobs/s).
//! * [`paper_user_fractions`] — the heterogeneous 10-user split used by
//!   the utilization/fairness experiments (few heavy + many light users;
//!   see DESIGN.md substitution #2).
//! * [`SystemModel::skewed_system`] — §4.2.3's heterogeneity study: 2 fast
//!   and 14 slow computers at a given speed skewness.

use crate::error::GameError;
use lb_queueing::ParallelQueues;

/// Job fractions of the 10 users in the paper-style experiments, as
/// fractions of the total arrival rate Φ (they sum to 1).
///
/// The IPDPS text does not list the user split; this heavy-tailed split
/// (few heavy users, many light ones) mirrors the journal version's setup
/// and is what makes the fairness comparisons informative.
pub const PAPER_USER_FRACTIONS: [f64; 10] =
    [0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.05, 0.05, 0.04];

/// Returns the paper-style user fractions as a vector.
pub fn paper_user_fractions() -> Vec<f64> {
    PAPER_USER_FRACTIONS.to_vec()
}

/// The distributed system: `n` heterogeneous M/M/1 computers shared by
/// `m` users with Poisson job streams.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    computers: ParallelQueues,
    user_rates: Vec<f64>,
    total_arrival_rate: f64,
}

impl SystemModel {
    /// Starts a builder.
    pub fn builder() -> SystemModelBuilder {
        SystemModelBuilder::default()
    }

    /// Builds a model directly from computer and user rates.
    ///
    /// # Errors
    ///
    /// See [`SystemModelBuilder::build`].
    pub fn new(computer_rates: Vec<f64>, user_rates: Vec<f64>) -> Result<Self, GameError> {
        Self::builder()
            .computer_rates(computer_rates)
            .user_rates(user_rates)
            .build()
    }

    /// Number of computers `n`.
    pub fn num_computers(&self) -> usize {
        self.computers.len()
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.user_rates.len()
    }

    /// The computer bank.
    pub fn computers(&self) -> &ParallelQueues {
        &self.computers
    }

    /// Processing rates `μ_i`, in declaration order.
    pub fn computer_rates(&self) -> &[f64] {
        self.computers.rates()
    }

    /// Processing rate of computer `i`.
    pub fn computer_rate(&self, i: usize) -> f64 {
        self.computers.rate(i)
    }

    /// Arrival rates `φ_j`.
    pub fn user_rates(&self) -> &[f64] {
        &self.user_rates
    }

    /// Arrival rate of user `j`.
    pub fn user_rate(&self, j: usize) -> f64 {
        self.user_rates[j]
    }

    /// Total arrival rate `Φ = Σ_j φ_j`.
    pub fn total_arrival_rate(&self) -> f64 {
        self.total_arrival_rate
    }

    /// Aggregate capacity `Σ_i μ_i`.
    pub fn total_capacity(&self) -> f64 {
        self.computers.total_capacity()
    }

    /// System utilization `ρ = Φ / Σ μ_i` (paper §4.2.2).
    pub fn system_utilization(&self) -> f64 {
        self.computers.system_utilization(self.total_arrival_rate)
    }

    /// Speed skewness `max μ / min μ` (paper §4.2.3).
    pub fn speed_skewness(&self) -> f64 {
        self.computers.speed_skewness()
    }

    /// The paper's Table 1 computer bank: 6 computers at 10 jobs/s, 5 at
    /// 20, 3 at 50 and 2 at 100 (relative rates 1/2/5/10), 510 jobs/s
    /// aggregate capacity.
    pub fn table1_rates() -> Vec<f64> {
        let mut rates = vec![10.0; 6];
        rates.extend(std::iter::repeat_n(20.0, 5));
        rates.extend(std::iter::repeat_n(50.0, 3));
        rates.extend(std::iter::repeat_n(100.0, 2));
        rates
    }

    /// The full Table-1 experiment system: the Table-1 computers shared by
    /// the 10 paper-style users at system utilization `rho ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// [`GameError::InvalidRate`] for a utilization outside `(0, 1)`.
    pub fn table1_system(rho: f64) -> Result<Self, GameError> {
        Self::with_utilization(Self::table1_rates(), &paper_user_fractions(), rho)
    }

    /// §4.2.3's heterogeneity system: 2 fast computers at `skew × base` and
    /// 14 slow computers at `base = 10` jobs/s, shared by the 10
    /// paper-style users at utilization `rho`.
    ///
    /// # Errors
    ///
    /// [`GameError::InvalidRate`] for `skew < 1` or a bad utilization.
    pub fn skewed_system(skew: f64, rho: f64) -> Result<Self, GameError> {
        if !skew.is_finite() || skew < 1.0 {
            return Err(GameError::InvalidRate {
                name: "skew",
                value: skew,
            });
        }
        const BASE: f64 = 10.0;
        let mut rates = vec![BASE * skew; 2];
        rates.extend(std::iter::repeat_n(BASE, 14));
        Self::with_utilization(rates, &paper_user_fractions(), rho)
    }

    /// Builds a model from computer rates, per-user *fractions* of the
    /// total arrival rate, and a target system utilization.
    ///
    /// # Errors
    ///
    /// * [`GameError::InvalidRate`] for `rho ∉ (0, 1)` or non-positive
    ///   fractions.
    /// * Anything [`SystemModelBuilder::build`] raises.
    pub fn with_utilization(
        computer_rates: Vec<f64>,
        user_fractions: &[f64],
        rho: f64,
    ) -> Result<Self, GameError> {
        if !rho.is_finite() || rho <= 0.0 || rho >= 1.0 {
            return Err(GameError::InvalidRate {
                name: "rho",
                value: rho,
            });
        }
        let capacity: f64 = computer_rates.iter().sum();
        let phi = rho * capacity;
        let frac_sum: f64 = user_fractions.iter().sum();
        if frac_sum <= 0.0 {
            return Err(GameError::InvalidRate {
                name: "user_fractions",
                value: frac_sum,
            });
        }
        let user_rates = user_fractions.iter().map(|q| phi * q / frac_sum).collect();
        Self::builder()
            .computer_rates(computer_rates)
            .user_rates(user_rates)
            .build()
    }

    /// Builds a model with `m` *equal-rate* users at system utilization
    /// `rho` — the configuration of the paper's Figure 3 (convergence vs
    /// number of users).
    ///
    /// # Errors
    ///
    /// As for [`SystemModel::with_utilization`]; additionally
    /// [`GameError::EmptyModel`] for `m == 0`.
    pub fn with_equal_users(
        computer_rates: Vec<f64>,
        m: usize,
        rho: f64,
    ) -> Result<Self, GameError> {
        if m == 0 {
            return Err(GameError::EmptyModel { what: "users" });
        }
        Self::with_utilization(computer_rates, &vec![1.0; m], rho)
    }
}

/// Builder for [`SystemModel`].
#[derive(Debug, Default, Clone)]
pub struct SystemModelBuilder {
    computer_rates: Vec<f64>,
    user_rates: Vec<f64>,
}

impl SystemModelBuilder {
    /// Sets the computer processing rates `μ_i`.
    pub fn computer_rates(mut self, rates: Vec<f64>) -> Self {
        self.computer_rates = rates;
        self
    }

    /// Sets the user arrival rates `φ_j`.
    pub fn user_rates(mut self, rates: Vec<f64>) -> Self {
        self.user_rates = rates;
        self
    }

    /// Validates and builds the model.
    ///
    /// # Errors
    ///
    /// * [`GameError::EmptyModel`] when either collection is empty.
    /// * [`GameError::InvalidRate`] for a non-positive or non-finite rate.
    /// * [`GameError::Overloaded`] when `Σ φ_j >= Σ μ_i` (the paper's
    ///   standing stability assumption).
    pub fn build(self) -> Result<SystemModel, GameError> {
        if self.computer_rates.is_empty() {
            return Err(GameError::EmptyModel { what: "computers" });
        }
        if self.user_rates.is_empty() {
            return Err(GameError::EmptyModel { what: "users" });
        }
        for &phi in &self.user_rates {
            if !phi.is_finite() || phi <= 0.0 {
                return Err(GameError::InvalidRate {
                    name: "phi",
                    value: phi,
                });
            }
        }
        let computers = ParallelQueues::new(self.computer_rates)?;
        let total_arrival_rate: f64 = self.user_rates.iter().sum();
        if total_arrival_rate >= computers.total_capacity() {
            return Err(GameError::overloaded(
                total_arrival_rate,
                computers.total_capacity(),
            ));
        }
        Ok(SystemModel {
            computers,
            user_rates: self.user_rates,
            total_arrival_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(matches!(
            SystemModel::new(vec![], vec![1.0]),
            Err(GameError::EmptyModel { what: "computers" })
        ));
        assert!(matches!(
            SystemModel::new(vec![1.0], vec![]),
            Err(GameError::EmptyModel { what: "users" })
        ));
        assert!(matches!(
            SystemModel::new(vec![1.0], vec![0.0]),
            Err(GameError::InvalidRate { name: "phi", .. })
        ));
        assert!(matches!(
            SystemModel::new(vec![-1.0], vec![0.5]),
            Err(GameError::Queueing(_))
        ));
        assert!(matches!(
            SystemModel::new(vec![1.0, 1.0], vec![1.0, 1.0]),
            Err(GameError::Overloaded { .. })
        ));
    }

    #[test]
    fn non_finite_rates_are_rejected_at_the_boundary() {
        // A NaN or infinite rate that slips past construction poisons
        // every downstream quantity (water-filling sorts, norms,
        // certificates), so the model boundary is where it must die.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    SystemModel::new(vec![10.0, bad], vec![1.0]),
                    Err(GameError::Queueing(_))
                ),
                "mu = {bad} must be rejected"
            );
            assert!(
                matches!(
                    SystemModel::new(vec![10.0, 20.0], vec![1.0, bad]),
                    Err(GameError::InvalidRate { name: "phi", .. })
                ),
                "phi = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn accessors_report_model() {
        let m = SystemModel::new(vec![10.0, 20.0], vec![3.0, 6.0]).unwrap();
        assert_eq!(m.num_computers(), 2);
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.computer_rate(1), 20.0);
        assert_eq!(m.user_rate(0), 3.0);
        assert_eq!(m.total_arrival_rate(), 9.0);
        assert_eq!(m.total_capacity(), 30.0);
        assert!((m.system_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(m.speed_skewness(), 2.0);
    }

    #[test]
    fn table1_matches_paper() {
        let rates = SystemModel::table1_rates();
        assert_eq!(rates.len(), 16);
        assert_eq!(rates.iter().filter(|&&r| r == 10.0).count(), 6);
        assert_eq!(rates.iter().filter(|&&r| r == 20.0).count(), 5);
        assert_eq!(rates.iter().filter(|&&r| r == 50.0).count(), 3);
        assert_eq!(rates.iter().filter(|&&r| r == 100.0).count(), 2);
        assert_eq!(rates.iter().sum::<f64>(), 510.0);

        let sys = SystemModel::table1_system(0.6).unwrap();
        assert_eq!(sys.num_users(), 10);
        assert!((sys.total_arrival_rate() - 306.0).abs() < 1e-9);
        assert!((sys.system_utilization() - 0.6).abs() < 1e-12);
        assert_eq!(sys.speed_skewness(), 10.0);
    }

    #[test]
    fn paper_user_fractions_sum_to_one() {
        let sum: f64 = PAPER_USER_FRACTIONS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Heavy-tailed: first user triples the last.
        let fractions = paper_user_fractions();
        assert!(fractions[0] > 3.0 * fractions[9]);
    }

    #[test]
    fn skewed_system_shape() {
        let sys = SystemModel::skewed_system(20.0, 0.6).unwrap();
        assert_eq!(sys.num_computers(), 16);
        assert_eq!(
            sys.computer_rates().iter().filter(|&&r| r == 200.0).count(),
            2
        );
        assert_eq!(
            sys.computer_rates().iter().filter(|&&r| r == 10.0).count(),
            14
        );
        assert!((sys.speed_skewness() - 20.0).abs() < 1e-12);
        // Skew 1 is a homogeneous system.
        let homo = SystemModel::skewed_system(1.0, 0.6).unwrap();
        assert_eq!(homo.speed_skewness(), 1.0);
        assert!(SystemModel::skewed_system(0.5, 0.6).is_err());
    }

    #[test]
    fn utilization_constructor_hits_target() {
        for &rho in &[0.1, 0.5, 0.9] {
            let sys = SystemModel::table1_system(rho).unwrap();
            assert!((sys.system_utilization() - rho).abs() < 1e-12);
        }
        assert!(SystemModel::table1_system(0.0).is_err());
        assert!(SystemModel::table1_system(1.0).is_err());
    }

    #[test]
    fn equal_users_split_evenly() {
        let sys = SystemModel::with_equal_users(SystemModel::table1_rates(), 8, 0.6).unwrap();
        assert_eq!(sys.num_users(), 8);
        let expected = 306.0 / 8.0;
        for j in 0..8 {
            assert!((sys.user_rate(j) - expected).abs() < 1e-9);
        }
        assert!(SystemModel::with_equal_users(vec![1.0], 0, 0.5).is_err());
    }

    #[test]
    fn unnormalized_fractions_are_scaled() {
        let sys = SystemModel::with_utilization(vec![10.0, 10.0], &[2.0, 2.0], 0.5).unwrap();
        assert!((sys.user_rate(0) - 5.0).abs() < 1e-12);
        assert!((sys.user_rate(1) - 5.0).abs() < 1e-12);
    }
}
