//! Equilibrium verification and efficiency metrics.
//!
//! * [`epsilon_nash_gap`] — the largest unilateral improvement any user
//!   could gain by deviating to its best reply; a profile is an ε-Nash
//!   equilibrium iff the gap is at most ε (Definition 2.1 in the paper).
//! * [`price_of_anarchy`] — the Koutsoupias–Papadimitriou efficiency
//!   ratio `D(nash) / D(optimum)`, cited by the paper's related work
//!   (Roughgarden & Tardos bound it by 4/3 for *linear* latencies; M/M/1
//!   latencies are not linear, so we measure it instead).

use crate::best_reply::best_reply;
use crate::error::GameError;
use crate::model::SystemModel;
use crate::response::{overall_response_time, user_response_time};
use crate::strategy::StrategyProfile;

/// The largest gain any user can obtain by unilaterally deviating to its
/// best reply: `max_j [D_j(s) − D_j(BR_j(s), s_{−j})]`, clamped at 0.
///
/// A profile is a Nash equilibrium exactly when this gap is (numerically)
/// zero; tests and the distributed runtime accept `gap <= ε`.
///
/// # Examples
///
/// ```
/// use lb_game::equilibrium::epsilon_nash_gap;
/// use lb_game::model::SystemModel;
/// use lb_game::nash::nash_equilibrium;
///
/// let model = SystemModel::new(vec![10.0, 20.0], vec![9.0]).unwrap();
/// let outcome = nash_equilibrium(&model).unwrap();
/// let gap = epsilon_nash_gap(&model, outcome.profile()).unwrap();
/// assert!(gap < 1e-4);
/// ```
///
/// # Errors
///
/// Shape mismatches and infeasible best replies propagate.
pub fn epsilon_nash_gap(model: &SystemModel, profile: &StrategyProfile) -> Result<f64, GameError> {
    let mut gap: f64 = 0.0;
    let mut work = profile.clone();
    for j in 0..model.num_users() {
        let current = user_response_time(model, profile, j)?;
        let br = best_reply(model, profile, j)?;
        let original = work.strategy(j).clone();
        work.set_strategy(j, br)?;
        let best = user_response_time(model, &work, j)?;
        work.set_strategy(j, original)?;
        gap = gap.max(current - best);
    }
    Ok(gap.max(0.0))
}

/// Whether `profile` is an ε-Nash equilibrium.
///
/// # Errors
///
/// See [`epsilon_nash_gap`].
pub fn is_epsilon_nash(
    model: &SystemModel,
    profile: &StrategyProfile,
    epsilon: f64,
) -> Result<bool, GameError> {
    Ok(epsilon_nash_gap(model, profile)? <= epsilon)
}

/// Efficiency ratio of a profile against a reference (socially optimal)
/// profile: `D(profile) / D(reference)`. For a Nash profile against the
/// GOS optimum this is the **price of anarchy** of the instance.
///
/// # Errors
///
/// Shape mismatches propagate; a zero/non-finite reference objective
/// yields [`GameError::InvalidRate`].
pub fn price_of_anarchy(
    model: &SystemModel,
    nash_profile: &StrategyProfile,
    optimal_profile: &StrategyProfile,
) -> Result<f64, GameError> {
    let d_nash = overall_response_time(model, nash_profile)?;
    let d_opt = overall_response_time(model, optimal_profile)?;
    if !d_opt.is_finite() || d_opt <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "optimal_objective",
            value: d_opt,
        });
    }
    Ok(d_nash / d_opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::nash_equilibrium;
    use crate::schemes::{GlobalOptimalScheme, LoadBalancingScheme, ProportionalScheme};
    use crate::strategy::Strategy;

    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn nash_profile_has_tiny_gap() {
        let m = model();
        let out = nash_equilibrium(&m).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(gap < 1e-3, "gap {gap}");
        assert!(is_epsilon_nash(&m, out.profile(), 1e-3).unwrap());
    }

    #[test]
    fn uniform_profile_has_positive_gap() {
        let m = model();
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let gap = epsilon_nash_gap(&m, &p).unwrap();
        assert!(gap > 1e-3, "uniform split should be improvable, gap {gap}");
        assert!(!is_epsilon_nash(&m, &p, 1e-3).unwrap());
    }

    #[test]
    fn gap_does_not_mutate_profile() {
        let m = model();
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let before = p.clone();
        let _ = epsilon_nash_gap(&m, &p).unwrap();
        assert_eq!(p, before);
    }

    #[test]
    fn poa_is_at_least_one_and_modest() {
        let m = SystemModel::table1_system(0.6).unwrap();
        let nash = nash_equilibrium(&m).unwrap();
        let gos = GlobalOptimalScheme::default().compute(&m).unwrap();
        let ratio = price_of_anarchy(&m, nash.profile(), &gos).unwrap();
        assert!(ratio >= 1.0 - 1e-9, "PoA {ratio} below 1");
        // The paper reports NASH within ~10% of GOS at medium load.
        assert!(ratio < 1.3, "PoA {ratio} unexpectedly large");
    }

    #[test]
    fn ps_is_less_efficient_than_nash() {
        let m = SystemModel::table1_system(0.6).unwrap();
        let nash = nash_equilibrium(&m).unwrap();
        let ps = ProportionalScheme.compute(&m).unwrap();
        let gos = GlobalOptimalScheme::default().compute(&m).unwrap();
        let poa_nash = price_of_anarchy(&m, nash.profile(), &gos).unwrap();
        let poa_ps = price_of_anarchy(&m, &ps, &gos).unwrap();
        assert!(
            poa_ps > poa_nash,
            "PS {poa_ps} should trail NASH {poa_nash}"
        );
    }
}
