//! User strategies and strategy profiles.
//!
//! A user strategy `s_j = (s_j1 … s_jn)` gives the fraction of the user's
//! jobs sent to each computer; a profile stacks all `m` strategies. The
//! paper's feasibility constraints (§2) are:
//!
//! * positivity — `s_ji >= 0`;
//! * conservation — `Σ_i s_ji = 1`;
//! * stability — `Σ_j s_ji φ_j < μ_i` at every computer (a *profile*-level
//!   constraint, checked against a [`SystemModel`]).

use crate::error::GameError;
use crate::model::SystemModel;

/// Tolerance for positivity/conservation checks on strategies.
pub const STRATEGY_EPS: f64 = 1e-7;

/// One user's load-balancing strategy: job fractions over the computers.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    fractions: Vec<f64>,
}

impl Strategy {
    /// Builds a strategy, validating positivity and conservation. Tiny
    /// constraint violations within [`STRATEGY_EPS`] are repaired by
    /// clamping and renormalizing (solver output hygiene).
    ///
    /// # Errors
    ///
    /// [`GameError::InfeasibleStrategy`] when a fraction is materially
    /// negative/non-finite or the sum is materially different from 1.
    pub fn new(fractions: Vec<f64>) -> Result<Self, GameError> {
        if fractions.is_empty() {
            return Err(GameError::InfeasibleStrategy {
                reason: "strategy has no components".into(),
            });
        }
        let mut f = fractions;
        for (i, x) in f.iter_mut().enumerate() {
            if !x.is_finite() {
                return Err(GameError::InfeasibleStrategy {
                    reason: format!("component {i} is not finite"),
                });
            }
            if *x < 0.0 {
                if *x < -STRATEGY_EPS {
                    return Err(GameError::InfeasibleStrategy {
                        reason: format!("component {i} is negative ({x})"),
                    });
                }
                *x = 0.0;
            }
        }
        let sum: f64 = f.iter().sum();
        if (sum - 1.0).abs() > STRATEGY_EPS {
            return Err(GameError::InfeasibleStrategy {
                reason: format!("fractions sum to {sum}, expected 1"),
            });
        }
        // Exact renormalization so downstream sums are clean.
        for x in &mut f {
            *x /= sum;
        }
        Ok(Self { fractions: f })
    }

    /// The degenerate "send everything to computer `i`" strategy over `n`
    /// computers.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n` or `n == 0` (programming errors).
    pub fn singleton(n: usize, i: usize) -> Self {
        assert!(n > 0 && i < n, "singleton({n}, {i}) out of range");
        let mut f = vec![0.0; n];
        f[i] = 1.0;
        Self { fractions: f }
    }

    /// The uniform strategy `s_ji = 1/n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform strategy needs n > 0");
        Self {
            fractions: vec![1.0 / n as f64; n],
        }
    }

    /// Number of computers the strategy spans.
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Never true for a constructed strategy.
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// Fraction sent to computer `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        self.fractions[i]
    }

    /// All fractions.
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// Indices of computers used with positive probability.
    pub fn support(&self) -> Vec<usize> {
        self.fractions
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// L1 distance to another strategy.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (programming error).
    pub fn l1_distance(&self, other: &Strategy) -> f64 {
        assert_eq!(self.len(), other.len(), "strategy dimension mismatch");
        self.fractions
            .iter()
            .zip(&other.fractions)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

/// A strategy profile: one strategy per user (an `m × n` row-stochastic
/// matrix).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyProfile {
    rows: Vec<Strategy>,
}

impl StrategyProfile {
    /// Builds a profile from per-user strategies.
    ///
    /// # Errors
    ///
    /// [`GameError::InfeasibleStrategy`] for an empty profile,
    /// [`GameError::DimensionMismatch`] for ragged rows.
    pub fn new(rows: Vec<Strategy>) -> Result<Self, GameError> {
        if rows.is_empty() {
            return Err(GameError::InfeasibleStrategy {
                reason: "profile has no users".into(),
            });
        }
        let n = rows[0].len();
        for r in &rows {
            if r.len() != n {
                return Err(GameError::DimensionMismatch {
                    expected: n,
                    actual: r.len(),
                });
            }
        }
        Ok(Self { rows })
    }

    /// Profile in which every user plays the same strategy (e.g. the PS
    /// baseline or the NASH_P initialization).
    ///
    /// # Errors
    ///
    /// [`GameError::InfeasibleStrategy`] when `m == 0`.
    pub fn replicated(strategy: Strategy, m: usize) -> Result<Self, GameError> {
        Self::new(vec![strategy; m])
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.rows.len()
    }

    /// Number of computers `n`.
    pub fn num_computers(&self) -> usize {
        self.rows[0].len()
    }

    /// User `j`'s strategy.
    pub fn strategy(&self, j: usize) -> &Strategy {
        &self.rows[j]
    }

    /// All strategies.
    pub fn strategies(&self) -> &[Strategy] {
        &self.rows
    }

    /// Replaces user `j`'s strategy (the Gauss–Seidel update step).
    ///
    /// # Errors
    ///
    /// [`GameError::DimensionMismatch`] if the new strategy has the wrong
    /// dimension.
    pub fn set_strategy(&mut self, j: usize, strategy: Strategy) -> Result<(), GameError> {
        if strategy.len() != self.num_computers() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_computers(),
                actual: strategy.len(),
            });
        }
        self.rows[j] = strategy;
        Ok(())
    }

    /// Total job flow arriving at each computer under this profile for the
    /// given model: `λ_i = Σ_j s_ji φ_j`.
    ///
    /// # Errors
    ///
    /// [`GameError::DimensionMismatch`] when the model dimensions disagree
    /// with the profile.
    pub fn computer_flows(&self, model: &SystemModel) -> Result<Vec<f64>, GameError> {
        self.check_dims(model)?;
        let n = self.num_computers();
        let mut flows = vec![0.0; n];
        for (j, row) in self.rows.iter().enumerate() {
            let phi = model.user_rate(j);
            for (i, &s) in row.fractions().iter().enumerate() {
                flows[i] += s * phi;
            }
        }
        Ok(flows)
    }

    /// Validates the profile-level stability constraint
    /// `Σ_j s_ji φ_j < μ_i` for every computer.
    ///
    /// # Errors
    ///
    /// * [`GameError::DimensionMismatch`] on shape mismatch.
    /// * [`GameError::InfeasibleStrategy`] naming the first saturated
    ///   computer.
    pub fn check_stability(&self, model: &SystemModel) -> Result<(), GameError> {
        let flows = self.computer_flows(model)?;
        for (i, (&f, &mu)) in flows.iter().zip(model.computer_rates()).enumerate() {
            if f >= mu {
                return Err(GameError::InfeasibleStrategy {
                    reason: format!("computer {i} saturated: flow {f} >= rate {mu}"),
                });
            }
        }
        Ok(())
    }

    /// Largest per-user L1 distance to another profile (used as a
    /// strategy-space convergence diagnostic alongside the paper's
    /// response-time norm).
    ///
    /// # Errors
    ///
    /// [`GameError::DimensionMismatch`] on shape mismatch.
    pub fn max_l1_distance(&self, other: &StrategyProfile) -> Result<f64, GameError> {
        if other.num_users() != self.num_users() || other.num_computers() != self.num_computers() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_users(),
                actual: other.num_users(),
            });
        }
        Ok(self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a.l1_distance(b))
            .fold(0.0, f64::max))
    }

    fn check_dims(&self, model: &SystemModel) -> Result<(), GameError> {
        if model.num_users() != self.num_users() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_users(),
                actual: model.num_users(),
            });
        }
        if model.num_computers() != self.num_computers() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_computers(),
                actual: model.num_computers(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_2x2() -> SystemModel {
        SystemModel::new(vec![4.0, 8.0], vec![2.0, 4.0]).unwrap()
    }

    #[test]
    fn strategy_validation() {
        assert!(Strategy::new(vec![]).is_err());
        assert!(Strategy::new(vec![0.5, 0.6]).is_err());
        assert!(Strategy::new(vec![1.2, -0.2]).is_err());
        assert!(Strategy::new(vec![f64::NAN, 1.0]).is_err());
        let s = Strategy::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(s.fraction(1), 0.75);
        assert_eq!(s.support(), vec![0, 1]);
    }

    #[test]
    fn strategy_repairs_tiny_violations() {
        let s = Strategy::new(vec![0.5 + 1e-9, 0.5, -1e-9]).unwrap();
        assert_eq!(s.fraction(2), 0.0);
        let sum: f64 = s.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn singleton_and_uniform() {
        let s = Strategy::singleton(3, 1);
        assert_eq!(s.fractions(), &[0.0, 1.0, 0.0]);
        assert_eq!(s.support(), vec![1]);
        let u = Strategy::uniform(4);
        assert!((u.fraction(2) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_bounds() {
        let _ = Strategy::singleton(2, 2);
    }

    #[test]
    fn l1_distance() {
        let a = Strategy::new(vec![1.0, 0.0]).unwrap();
        let b = Strategy::new(vec![0.0, 1.0]).unwrap();
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-15);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn profile_shape_checks() {
        let a = Strategy::uniform(2);
        let b = Strategy::uniform(3);
        assert!(StrategyProfile::new(vec![]).is_err());
        assert!(matches!(
            StrategyProfile::new(vec![a.clone(), b]),
            Err(GameError::DimensionMismatch { .. })
        ));
        let p = StrategyProfile::replicated(a, 3).unwrap();
        assert_eq!(p.num_users(), 3);
        assert_eq!(p.num_computers(), 2);
    }

    #[test]
    fn computer_flows_aggregate_users() {
        let model = model_2x2();
        // User 0 (rate 2): all on computer 0. User 1 (rate 4): 50/50.
        let p = StrategyProfile::new(vec![
            Strategy::new(vec![1.0, 0.0]).unwrap(),
            Strategy::new(vec![0.5, 0.5]).unwrap(),
        ])
        .unwrap();
        let flows = p.computer_flows(&model).unwrap();
        assert!((flows[0] - 4.0).abs() < 1e-12);
        assert!((flows[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stability_check() {
        let model = model_2x2(); // mu = [4, 8]
        let saturating = StrategyProfile::new(vec![
            Strategy::new(vec![1.0, 0.0]).unwrap(),
            Strategy::new(vec![0.5, 0.5]).unwrap(),
        ])
        .unwrap();
        // flow at computer 0 = 4.0 = mu_0: infeasible.
        assert!(saturating.check_stability(&model).is_err());

        let fine =
            StrategyProfile::replicated(Strategy::new(vec![0.25, 0.75]).unwrap(), 2).unwrap();
        assert!(fine.check_stability(&model).is_ok());
    }

    #[test]
    fn set_strategy_updates_row() {
        let mut p = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        p.set_strategy(1, Strategy::singleton(2, 0)).unwrap();
        assert_eq!(p.strategy(1).fractions(), &[1.0, 0.0]);
        assert_eq!(p.strategy(0).fractions(), &[0.5, 0.5]);
        assert!(p.set_strategy(0, Strategy::uniform(3)).is_err());
    }

    #[test]
    fn profile_distance() {
        let a = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        let mut b = a.clone();
        b.set_strategy(0, Strategy::singleton(2, 0)).unwrap();
        assert!((a.max_l1_distance(&b).unwrap() - 1.0).abs() < 1e-15);
        let c = StrategyProfile::replicated(Strategy::uniform(2), 3).unwrap();
        assert!(a.max_l1_distance(&c).is_err());
    }

    #[test]
    fn dimension_mismatch_against_model() {
        let model = model_2x2();
        let p = StrategyProfile::replicated(Strategy::uniform(2), 3).unwrap();
        assert!(p.computer_flows(&model).is_err());
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        assert!(p.check_stability(&model).is_err());
    }
}
