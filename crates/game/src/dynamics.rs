//! Dynamic re-equilibration — the paper's named future work ("game
//! theoretic models for dynamic load balancing").
//!
//! The paper's NASH algorithm is static: "the execution of this algorithm
//! is initiated periodically or when the system parameters are changed".
//! This module implements exactly that loop: a [`DynamicBalancer`] holds
//! the current equilibrium and, whenever the system changes (computer
//! rates drift, users join or leave, demand shifts), recomputes it —
//! **warm-starting** from the previous equilibrium re-mapped onto the new
//! system, which is typically far closer to the new equilibrium than
//! either NASH_0 or NASH_P. The `ablations` bench quantifies the saving.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::nash::{Initialization, NashOutcome, NashSolver};
use crate::strategy::{Strategy, StrategyProfile};

/// How the balancer seeds the solver after a system change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restart {
    /// Re-solve from scratch with NASH_P (the static algorithm's default).
    Cold,
    /// Seed with the previous equilibrium, re-mapped to the new system
    /// shape (rows added/dropped for joined/left users, renormalized).
    Warm,
}

/// Statistics of one re-equilibration step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rebalance {
    /// Sweeps the solver needed.
    pub iterations: u32,
    /// Restart policy used.
    pub restart: Restart,
}

/// Maintains a Nash equilibrium across system changes.
///
/// # Examples
///
/// ```
/// use lb_game::dynamics::{DynamicBalancer, Restart};
/// use lb_game::model::SystemModel;
///
/// let mut b = DynamicBalancer::new(
///     SystemModel::new(vec![10.0, 20.0], vec![9.0]).unwrap(),
///     1e-6,
/// ).unwrap();
/// // Demand grows; warm-restart from the previous equilibrium.
/// let drifted = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
/// let step = b.update(drifted, Restart::Warm).unwrap();
/// assert!(step.iterations >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicBalancer {
    model: SystemModel,
    equilibrium: StrategyProfile,
    tolerance: f64,
    max_iterations: u32,
    history: Vec<Rebalance>,
}

impl DynamicBalancer {
    /// Computes the initial equilibrium for `model`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn new(model: SystemModel, tolerance: f64) -> Result<Self, GameError> {
        let outcome = NashSolver::new(Initialization::Proportional)
            .tolerance(tolerance)
            .max_iterations(5000)
            .solve(&model)?;
        let history = vec![Rebalance {
            iterations: outcome.iterations(),
            restart: Restart::Cold,
        }];
        Ok(Self {
            model,
            equilibrium: outcome.into_profile(),
            tolerance,
            max_iterations: 5000,
            history,
        })
    }

    /// The current system model.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The current equilibrium profile.
    pub fn equilibrium(&self) -> &StrategyProfile {
        &self.equilibrium
    }

    /// Re-equilibration log (most recent last).
    pub fn history(&self) -> &[Rebalance] {
        &self.history
    }

    /// Applies a system change and recomputes the equilibrium with the
    /// chosen restart policy. Returns the step statistics.
    ///
    /// # Errors
    ///
    /// Propagates model/solver failures; on error the balancer keeps its
    /// previous state.
    pub fn update(
        &mut self,
        new_model: SystemModel,
        restart: Restart,
    ) -> Result<Rebalance, GameError> {
        let init = match restart {
            Restart::Cold => Initialization::Proportional,
            Restart::Warm => Initialization::Custom(remap_profile(&self.equilibrium, &new_model)?),
        };
        let outcome: NashOutcome = NashSolver::new(init)
            .tolerance(self.tolerance)
            .max_iterations(self.max_iterations)
            .solve(&new_model)?;
        let step = Rebalance {
            iterations: outcome.iterations(),
            restart,
        };
        self.model = new_model;
        self.equilibrium = outcome.into_profile();
        self.history.push(step);
        Ok(step)
    }
}

/// Re-maps an old equilibrium onto a (possibly reshaped) new system:
/// existing users keep their strategies truncated/extended to the new
/// computer count and renormalized; new users start proportional.
///
/// # Errors
///
/// Propagates strategy-construction failures.
pub fn remap_profile(
    old: &StrategyProfile,
    new_model: &SystemModel,
) -> Result<StrategyProfile, GameError> {
    let n_new = new_model.num_computers();
    let m_new = new_model.num_users();
    let total: f64 = new_model.computer_rates().iter().sum();
    let proportional: Vec<f64> = new_model
        .computer_rates()
        .iter()
        .map(|mu| mu / total)
        .collect();

    let mut rows = Vec::with_capacity(m_new);
    for j in 0..m_new {
        if j < old.num_users() {
            let old_row = old.strategy(j).fractions();
            let mut fr: Vec<f64> = (0..n_new)
                .map(|i| old_row.get(i).copied().unwrap_or(0.0))
                .collect();
            let sum: f64 = fr.iter().sum();
            if sum > 1e-12 {
                for x in &mut fr {
                    *x /= sum;
                }
            } else {
                fr.clone_from(&proportional);
            }
            rows.push(Strategy::new(fr)?);
        } else {
            rows.push(Strategy::new(proportional.clone())?);
        }
    }
    StrategyProfile::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;

    fn base_model() -> SystemModel {
        SystemModel::table1_system(0.6).unwrap()
    }

    #[test]
    fn initial_equilibrium_is_epsilon_nash() {
        let b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
        assert_eq!(b.history().len(), 1);
    }

    #[test]
    fn warm_start_beats_cold_start_on_small_drift() {
        // Demand drifts by 5%: warm restart should need far fewer sweeps.
        let mut warm = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let mut cold = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let drifted = SystemModel::table1_system(0.63).unwrap();
        let w = warm.update(drifted.clone(), Restart::Warm).unwrap();
        let c = cold.update(drifted, Restart::Cold).unwrap();
        assert!(
            w.iterations < c.iterations,
            "warm {} vs cold {}",
            w.iterations,
            c.iterations
        );
        // Both end at an equilibrium of the new system.
        for b in [&warm, &cold] {
            let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
            assert!(gap < 1e-4, "gap {gap}");
        }
    }

    #[test]
    fn user_join_and_leave_are_handled() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        // A user joins: 11 users now.
        let mut fractions = lb_fractions();
        fractions.push(0.08);
        let joined =
            SystemModel::with_utilization(SystemModel::table1_rates(), &fractions, 0.65).unwrap();
        b.update(joined, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_users(), 11);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);

        // Two users leave: 9 users.
        let left =
            SystemModel::with_utilization(SystemModel::table1_rates(), &lb_fractions()[..9], 0.55)
                .unwrap();
        b.update(left, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_users(), 9);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
        assert_eq!(b.history().len(), 3);
    }

    #[test]
    fn computer_pool_reshapes() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        // Two fast computers are added.
        let mut rates = SystemModel::table1_rates();
        rates.push(100.0);
        rates.push(100.0);
        let expanded = SystemModel::with_utilization(rates, &lb_fractions(), 0.6).unwrap();
        b.update(expanded, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_computers(), 18);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);

        // The pool shrinks back to 12 computers.
        let shrunk = SystemModel::with_utilization(
            SystemModel::table1_rates()[..12].to_vec(),
            &lb_fractions(),
            0.6,
        )
        .unwrap();
        b.update(shrunk, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_computers(), 12);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
    }

    #[test]
    fn failed_update_preserves_state() {
        let b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let before = b.equilibrium().clone();
        // An impossible re-solve: absurdly tight tolerance within 0 sweeps
        // cannot be triggered through update(), so use an overloaded-model
        // construction failure upstream instead.
        let bad = SystemModel::new(vec![10.0], vec![5.0, 6.0]);
        assert!(bad.is_err());
        assert_eq!(b.equilibrium(), &before);
        assert_eq!(b.history().len(), 1);
    }

    fn lb_fractions() -> Vec<f64> {
        crate::model::paper_user_fractions()
    }
}
