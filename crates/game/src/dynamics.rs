//! Dynamic re-equilibration — the paper's named future work ("game
//! theoretic models for dynamic load balancing").
//!
//! The paper's NASH algorithm is static: "the execution of this algorithm
//! is initiated periodically or when the system parameters are changed".
//! This module implements exactly that loop: a [`DynamicBalancer`] holds
//! the current equilibrium and, whenever the system changes (computer
//! rates drift, users join or leave, demand shifts), recomputes it —
//! **warm-starting** from the previous equilibrium re-mapped onto the new
//! system, which is typically far closer to the new equilibrium than
//! either NASH_0 or NASH_P. The `ablations` bench quantifies the saving.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::nash::{Initialization, NashOutcome, NashSolver};
use crate::overload::{shed_to_feasible, OverloadPolicy, ShedPlan};
use crate::stopping::StoppingRule;
use crate::strategy::{Strategy, StrategyProfile};

/// How the balancer seeds the solver after a system change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restart {
    /// Re-solve from scratch with NASH_P (the static algorithm's default).
    Cold,
    /// Seed with the previous equilibrium, re-mapped to the new system
    /// shape (rows added/dropped for joined/left users, renormalized).
    Warm,
}

/// Statistics of one re-equilibration step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rebalance {
    /// Sweeps the solver needed.
    pub iterations: u32,
    /// Restart policy used.
    pub restart: Restart,
}

/// The outcome of a capacity update: the re-equilibration statistics,
/// the admission-control decision, and which computers are still live.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityStep {
    /// Solver statistics of the re-convergence.
    pub rebalance: Rebalance,
    /// Per-user admitted/shed rates the balancer now runs on.
    pub plan: ShedPlan,
    /// Indices (into the full-width rate vector) of the computers the
    /// new equilibrium spans, in column order.
    pub live_computers: Vec<usize>,
}

/// Maintains a Nash equilibrium across system changes.
///
/// # Examples
///
/// ```
/// use lb_game::dynamics::{DynamicBalancer, Restart};
/// use lb_game::model::SystemModel;
///
/// let mut b = DynamicBalancer::new(
///     SystemModel::new(vec![10.0, 20.0], vec![9.0]).unwrap(),
///     1e-6,
/// ).unwrap();
/// // Demand grows; warm-restart from the previous equilibrium.
/// let drifted = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
/// let step = b.update(drifted, Restart::Warm).unwrap();
/// assert!(step.iterations >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicBalancer {
    model: SystemModel,
    equilibrium: StrategyProfile,
    tolerance: f64,
    stopping: StoppingRule,
    max_iterations: u32,
    history: Vec<Rebalance>,
    /// Users' *nominal* arrival rates — what they want to send, as
    /// opposed to what admission control currently admits. Reset by
    /// [`Self::update`], preserved across [`Self::update_capacity`].
    nominal_user_rates: Vec<f64>,
    /// Full-width computer rates as last reported (0 = offline).
    full_rates: Vec<f64>,
    /// Full-width indices of the computers the current model spans.
    live: Vec<usize>,
}

impl DynamicBalancer {
    /// Computes the initial equilibrium for `model`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn new(model: SystemModel, tolerance: f64) -> Result<Self, GameError> {
        Self::with_stopping(model, tolerance, StoppingRule::default())
    }

    /// Like [`DynamicBalancer::new`], but every solve — the initial one
    /// and all re-equilibrations — uses `stopping` instead of the
    /// default certified rule. With
    /// [`StoppingRule::CertifiedGap`], `tolerance` is the certified
    /// relative ε; with the norm rules it is the norm threshold.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn with_stopping(
        model: SystemModel,
        tolerance: f64,
        stopping: StoppingRule,
    ) -> Result<Self, GameError> {
        let outcome = NashSolver::new(Initialization::Proportional)
            .stopping_rule(stopping)
            .tolerance(tolerance)
            .max_iterations(5000)
            .solve(&model)?;
        let history = vec![Rebalance {
            iterations: outcome.iterations(),
            restart: Restart::Cold,
        }];
        let nominal_user_rates = model.user_rates().to_vec();
        let full_rates = model.computer_rates().to_vec();
        let live = (0..model.num_computers()).collect();
        Ok(Self {
            model,
            equilibrium: outcome.into_profile(),
            tolerance,
            stopping,
            max_iterations: 5000,
            history,
            nominal_user_rates,
            full_rates,
            live,
        })
    }

    /// The current system model.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The current equilibrium profile.
    pub fn equilibrium(&self) -> &StrategyProfile {
        &self.equilibrium
    }

    /// Re-equilibration log (most recent last).
    pub fn history(&self) -> &[Rebalance] {
        &self.history
    }

    /// Applies a system change and recomputes the equilibrium with the
    /// chosen restart policy. Returns the step statistics.
    ///
    /// # Errors
    ///
    /// Propagates model/solver failures; on error the balancer keeps its
    /// previous state.
    pub fn update(
        &mut self,
        new_model: SystemModel,
        restart: Restart,
    ) -> Result<Rebalance, GameError> {
        let init = match restart {
            Restart::Cold => Initialization::Proportional,
            Restart::Warm => Initialization::Custom(remap_profile(&self.equilibrium, &new_model)?),
        };
        let outcome: NashOutcome = NashSolver::new(init)
            .stopping_rule(self.stopping)
            .tolerance(self.tolerance)
            .max_iterations(self.max_iterations)
            .solve(&new_model)?;
        let step = Rebalance {
            iterations: outcome.iterations(),
            restart,
        };
        self.nominal_user_rates = new_model.user_rates().to_vec();
        self.full_rates = new_model.computer_rates().to_vec();
        self.live = (0..new_model.num_computers()).collect();
        self.model = new_model;
        self.equilibrium = outcome.into_profile();
        self.history.push(step);
        Ok(step)
    }

    /// Users' nominal arrival rates (what admission control would admit
    /// at full capacity).
    pub fn nominal_user_rates(&self) -> &[f64] {
        &self.nominal_user_rates
    }

    /// Stability probe: runs one deterministic parallel Jacobi round
    /// ([`crate::nash::jacobi_round`]) against the current equilibrium
    /// and returns the max-L1 distance between the equilibrium and the
    /// replies. Near zero means no user wants to deviate — a cheap
    /// post-churn health check that fans out over `threads` workers with
    /// a thread-count-independent result.
    ///
    /// # Errors
    ///
    /// Propagates best-reply failures (e.g. an infeasible reply if the
    /// stored equilibrium no longer fits the model).
    pub fn jacobi_probe(&self, threads: usize) -> Result<f64, GameError> {
        let replies = crate::nash::jacobi_round(&self.model, &self.equilibrium, threads)?;
        self.equilibrium.max_l1_distance(&replies)
    }

    /// Full-width indices of the computers the current equilibrium
    /// spans (column `k` of [`Self::equilibrium`] is computer
    /// `live_computers()[k]`).
    pub fn live_computers(&self) -> &[usize] {
        &self.live
    }

    /// Applies a capacity change — server crash (`rate = 0`),
    /// degradation, or recovery — and re-converges on the residual
    /// system, shedding load per `policy` if the survivors cannot carry
    /// the nominal demand.
    ///
    /// `new_rates` is the full-width rate vector (same length as the
    /// original model's computer list); a zero entry marks an offline
    /// computer. Unlike [`Self::update`], which would fail with
    /// [`GameError::Overloaded`] on an infeasible model, this path
    /// degrades: a shedding policy admits
    /// `min(nominal, headroom · Σ μ)` per its fairness rule and the
    /// equilibrium is recomputed over the admitted rates — reusing
    /// [`remap_profile_columns`] so a warm restart survives column
    /// removals/additions.
    ///
    /// # Errors
    ///
    /// * [`GameError::DimensionMismatch`] when `new_rates` has the
    ///   wrong width.
    /// * [`GameError::Overloaded`] under [`OverloadPolicy::Reject`]
    ///   when the residual capacity cannot carry the nominal demand, or
    ///   under any policy when no computer is left. The balancer keeps
    ///   its previous state on error.
    /// * Solver failures, propagated.
    pub fn update_capacity(
        &mut self,
        new_rates: &[f64],
        policy: OverloadPolicy,
        restart: Restart,
    ) -> Result<CapacityStep, GameError> {
        if new_rates.len() != self.full_rates.len() {
            return Err(GameError::DimensionMismatch {
                expected: self.full_rates.len(),
                actual: new_rates.len(),
            });
        }
        let plan = shed_to_feasible(new_rates, &self.nominal_user_rates, policy)?;
        let new_live: Vec<usize> = new_rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect();
        if new_live.is_empty() {
            let phi: f64 = self.nominal_user_rates.iter().sum();
            return Err(GameError::overloaded(phi, 0.0));
        }
        let live_rates: Vec<f64> = new_live.iter().map(|&i| new_rates[i]).collect();
        let new_model = SystemModel::new(live_rates, plan.admitted.clone())?;
        let init = match restart {
            Restart::Cold => Initialization::Proportional,
            Restart::Warm => {
                // Map surviving columns by identity, not position: if
                // computer 2 of 5 died, old column 3 must land on new
                // column 2, and a recovered computer gets a fresh
                // (zero, then renormalized) column.
                let columns: Vec<Option<usize>> = new_live
                    .iter()
                    .map(|&i| self.live.iter().position(|&l| l == i))
                    .collect();
                Initialization::Custom(remap_profile_columns(
                    &self.equilibrium,
                    &new_model,
                    &columns,
                )?)
            }
        };
        let outcome: NashOutcome = NashSolver::new(init)
            .stopping_rule(self.stopping)
            .tolerance(self.tolerance)
            .max_iterations(self.max_iterations)
            .solve(&new_model)?;
        let rebalance = Rebalance {
            iterations: outcome.iterations(),
            restart,
        };
        self.model = new_model;
        self.equilibrium = outcome.into_profile();
        self.history.push(rebalance);
        self.full_rates = new_rates.to_vec();
        self.live = new_live.clone();
        Ok(CapacityStep {
            rebalance,
            plan,
            live_computers: new_live,
        })
    }
}

/// Re-maps an old equilibrium onto a (possibly reshaped) new system:
/// existing users keep their strategies truncated/extended to the new
/// computer count and renormalized; new users start proportional.
///
/// # Errors
///
/// Propagates strategy-construction failures.
pub fn remap_profile(
    old: &StrategyProfile,
    new_model: &SystemModel,
) -> Result<StrategyProfile, GameError> {
    let columns: Vec<Option<usize>> = (0..new_model.num_computers()).map(Some).collect();
    remap_profile_columns(old, new_model, &columns)
}

/// Column-aware re-mapping: `columns[k]` names the *old* column feeding
/// new column `k` (`None` for a brand-new computer, which starts at
/// zero before renormalization). Rows that lose all their mass — every
/// used computer died — fall back to the proportional split, as do
/// brand-new users. This is the warm-restart kernel behind
/// [`DynamicBalancer::update_capacity`].
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] when `columns` does not match the
/// new computer count; otherwise propagates strategy-construction
/// failures.
pub fn remap_profile_columns(
    old: &StrategyProfile,
    new_model: &SystemModel,
    columns: &[Option<usize>],
) -> Result<StrategyProfile, GameError> {
    let n_new = new_model.num_computers();
    if columns.len() != n_new {
        return Err(GameError::DimensionMismatch {
            expected: n_new,
            actual: columns.len(),
        });
    }
    let m_new = new_model.num_users();
    let total: f64 = new_model.computer_rates().iter().sum();
    let proportional: Vec<f64> = new_model
        .computer_rates()
        .iter()
        .map(|mu| mu / total)
        .collect();

    let mut rows = Vec::with_capacity(m_new);
    for j in 0..m_new {
        if j < old.num_users() {
            let old_row = old.strategy(j).fractions();
            let mut fr: Vec<f64> = columns
                .iter()
                .map(|c| c.and_then(|i| old_row.get(i)).copied().unwrap_or(0.0))
                .collect();
            let sum: f64 = fr.iter().sum();
            if sum > 1e-12 {
                for x in &mut fr {
                    *x /= sum;
                }
            } else {
                fr.clone_from(&proportional);
            }
            rows.push(Strategy::new(fr)?);
        } else {
            rows.push(Strategy::new(proportional.clone())?);
        }
    }
    StrategyProfile::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;

    fn base_model() -> SystemModel {
        SystemModel::table1_system(0.6).unwrap()
    }

    #[test]
    fn initial_equilibrium_is_epsilon_nash() {
        let b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
        assert_eq!(b.history().len(), 1);
    }

    #[test]
    fn stopping_rule_threads_through_reequilibration() {
        // The certified rule is scale-invariant: a balancer driven on a
        // 100×-rescaled system re-equilibrates in exactly the sweeps of
        // the unscaled one, for the initial solve and for updates.
        let scale = 100.0;
        let scaled = |m: &SystemModel| {
            SystemModel::new(
                m.computer_rates().iter().map(|r| r * scale).collect(),
                m.user_rates().iter().map(|r| r * scale).collect(),
            )
            .unwrap()
        };
        let base = base_model();
        let drift = SystemModel::table1_system(0.7).unwrap();
        let mut b = DynamicBalancer::with_stopping(base, 1e-6, StoppingRule::default()).unwrap();
        let mut s =
            DynamicBalancer::with_stopping(scaled(&base_model()), 1e-6, StoppingRule::default())
                .unwrap();
        let step_b = b.update(drift.clone(), Restart::Warm).unwrap();
        let step_s = s.update(scaled(&drift), Restart::Warm).unwrap();
        assert_eq!(b.history()[0].iterations, s.history()[0].iterations);
        assert_eq!(step_b.iterations, step_s.iterations);
        // The repro opt-in threads through too: response times shrink
        // by 100× on the scaled system, so the absolute-norm rule stops
        // (vacuously) earlier — the scale dependence the certified
        // default removes.
        let a =
            DynamicBalancer::with_stopping(scaled(&base_model()), 1e-6, StoppingRule::AbsoluteNorm)
                .unwrap();
        let u =
            DynamicBalancer::with_stopping(base_model(), 1e-6, StoppingRule::AbsoluteNorm).unwrap();
        assert!(
            a.history()[0].iterations < u.history()[0].iterations,
            "absolute norm should be scale-dependent: {} vs {}",
            a.history()[0].iterations,
            u.history()[0].iterations
        );
    }

    #[test]
    fn jacobi_probe_is_small_at_equilibrium_and_thread_independent() {
        let b = DynamicBalancer::new(base_model(), 1e-8).unwrap();
        let seq = b.jacobi_probe(1).unwrap();
        // At the converged equilibrium nobody wants to deviate.
        assert!(seq < 1e-4, "probe distance {seq}");
        // The fan-out must not change the probe bitwise.
        for threads in [2, 8] {
            let par = b.jacobi_probe(threads).unwrap();
            assert_eq!(par.to_bits(), seq.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn warm_start_beats_cold_start_on_small_drift() {
        // Demand drifts by 5%: warm restart should need far fewer sweeps.
        let mut warm = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let mut cold = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let drifted = SystemModel::table1_system(0.63).unwrap();
        let w = warm.update(drifted.clone(), Restart::Warm).unwrap();
        let c = cold.update(drifted, Restart::Cold).unwrap();
        assert!(
            w.iterations < c.iterations,
            "warm {} vs cold {}",
            w.iterations,
            c.iterations
        );
        // Both end at an equilibrium of the new system.
        for b in [&warm, &cold] {
            let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
            assert!(gap < 1e-4, "gap {gap}");
        }
    }

    #[test]
    fn user_join_and_leave_are_handled() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        // A user joins: 11 users now.
        let mut fractions = lb_fractions();
        fractions.push(0.08);
        let joined =
            SystemModel::with_utilization(SystemModel::table1_rates(), &fractions, 0.65).unwrap();
        b.update(joined, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_users(), 11);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);

        // Two users leave: 9 users.
        let left =
            SystemModel::with_utilization(SystemModel::table1_rates(), &lb_fractions()[..9], 0.55)
                .unwrap();
        b.update(left, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_users(), 9);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
        assert_eq!(b.history().len(), 3);
    }

    #[test]
    fn computer_pool_reshapes() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        // Two fast computers are added.
        let mut rates = SystemModel::table1_rates();
        rates.push(100.0);
        rates.push(100.0);
        let expanded = SystemModel::with_utilization(rates, &lb_fractions(), 0.6).unwrap();
        b.update(expanded, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_computers(), 18);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);

        // The pool shrinks back to 12 computers.
        let shrunk = SystemModel::with_utilization(
            SystemModel::table1_rates()[..12].to_vec(),
            &lb_fractions(),
            0.6,
        )
        .unwrap();
        b.update(shrunk, Restart::Warm).unwrap();
        assert_eq!(b.equilibrium().num_computers(), 12);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4);
    }

    #[test]
    fn failed_update_preserves_state() {
        let b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let before = b.equilibrium().clone();
        // An impossible re-solve: absurdly tight tolerance within 0 sweeps
        // cannot be triggered through update(), so use an overloaded-model
        // construction failure upstream instead.
        let bad = SystemModel::new(vec![10.0], vec![5.0, 6.0]);
        assert!(bad.is_err());
        assert_eq!(b.equilibrium(), &before);
        assert_eq!(b.history().len(), 1);
    }

    fn lb_fractions() -> Vec<f64> {
        crate::model::paper_user_fractions()
    }

    #[test]
    fn crash_with_feasible_residual_sheds_nothing() {
        // Table 1 at ρ = 0.6: losing the fastest computer leaves plenty
        // of capacity; no shedding, equilibrium over the survivors.
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let mut rates = SystemModel::table1_rates();
        let dead = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        rates[dead] = 0.0;
        let step = b
            .update_capacity(
                &rates,
                OverloadPolicy::ShedProportional { headroom: 0.95 },
                Restart::Warm,
            )
            .unwrap();
        assert!(!step.plan.sheds());
        assert_eq!(step.live_computers.len(), 15);
        assert!(!step.live_computers.contains(&dead));
        assert_eq!(b.equilibrium().num_computers(), 15);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn infeasible_crash_sheds_and_recovery_readmits() {
        // ρ = 0.9 and the two fastest computers die: demand exceeds the
        // survivors' capacity, so the policy sheds; recovery re-admits.
        let mut b = DynamicBalancer::new(SystemModel::table1_system(0.9).unwrap(), 1e-6).unwrap();
        let nominal_phi: f64 = b.nominal_user_rates().iter().sum();
        let full = SystemModel::table1_rates();
        let mut rates = full.clone();
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&p, &q| rates[q].partial_cmp(&rates[p]).unwrap());
        rates[order[0]] = 0.0;
        rates[order[1]] = 0.0;
        let residual_capacity: f64 = rates.iter().sum();
        assert!(
            nominal_phi > residual_capacity,
            "test setup: crash must make the demand infeasible"
        );

        let step = b
            .update_capacity(
                &rates,
                OverloadPolicy::ShedProportional { headroom: 0.9 },
                Restart::Warm,
            )
            .unwrap();
        assert!(step.plan.sheds());
        assert!((step.plan.admitted_total() - 0.9 * residual_capacity).abs() < 1e-6);
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4, "gap {gap}");

        // Reject would have aborted instead.
        let mut rejecting =
            DynamicBalancer::new(SystemModel::table1_system(0.9).unwrap(), 1e-6).unwrap();
        let before = rejecting.equilibrium().clone();
        let err = rejecting
            .update_capacity(&rates, OverloadPolicy::Reject, Restart::Warm)
            .unwrap_err();
        assert!(matches!(err, GameError::Overloaded { .. }));
        assert_eq!(rejecting.equilibrium(), &before, "state preserved on error");

        // Recovery: full rates again -> everything re-admitted.
        let step = b
            .update_capacity(
                &full,
                OverloadPolicy::ShedProportional { headroom: 0.9 },
                Restart::Warm,
            )
            .unwrap();
        assert!(!step.plan.sheds());
        assert!((step.plan.admitted_total() - nominal_phi).abs() < 1e-9);
        assert_eq!(b.equilibrium().num_computers(), full.len());
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn capacity_update_rejects_wrong_width_and_total_loss() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        assert!(matches!(
            b.update_capacity(&[10.0], OverloadPolicy::Reject, Restart::Warm),
            Err(GameError::DimensionMismatch { .. })
        ));
        let zeros = vec![0.0; SystemModel::table1_rates().len()];
        assert!(matches!(
            b.update_capacity(
                &zeros,
                OverloadPolicy::ShedProportional { headroom: 0.9 },
                Restart::Warm
            ),
            Err(GameError::Overloaded { .. })
        ));
    }

    #[test]
    fn degradation_without_crash_keeps_all_columns() {
        let mut b = DynamicBalancer::new(base_model(), 1e-6).unwrap();
        let mut rates = SystemModel::table1_rates();
        for r in &mut rates {
            *r *= 0.8;
        }
        let step = b
            .update_capacity(
                &rates,
                OverloadPolicy::ShedMaxMin { headroom: 0.9 },
                Restart::Warm,
            )
            .unwrap();
        // ρ = 0.6 nominal / 0.8 slowdown = 0.75 utilization < 0.9: no shed.
        assert!(!step.plan.sheds());
        assert_eq!(step.live_computers.len(), rates.len());
        let gap = epsilon_nash_gap(b.model(), b.equilibrium()).unwrap();
        assert!(gap < 1e-4, "gap {gap}");
    }
}
