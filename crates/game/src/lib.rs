//! # lb-game — the noncooperative load-balancing game
//!
//! This crate is the primary contribution of Grosu & Chronopoulos,
//! *A Game-Theoretic Model and Algorithm for Load Balancing in Distributed
//! Systems* (IPDPS/APDCM 2002), implemented as a library:
//!
//! * [`model`] — the heterogeneous distributed system: `n` M/M/1 computers
//!   with rates `μ_i` shared by `m` selfish users with Poisson rates `φ_j`,
//!   including the paper's Table 1 configuration.
//! * [`strategy`] — user strategies `s_j` (job fractions) and strategy
//!   profiles with the paper's feasibility constraints.
//! * [`response`] — the expected-response-time functionals `F_i(s)`,
//!   `D_j(s)` and the system-wide `D(s)`.
//! * [`best_reply`] — the **OPTIMAL** algorithm (Theorem 2.1): a user's
//!   exact best reply by square-root water-filling, O(n log n).
//! * [`nash`] — the **NASH** distributed algorithm: round-robin greedy
//!   best replies until the norm `Σ_j |D_j^{(l)} − D_j^{(l−1)}|` drops
//!   below a tolerance, with the paper's NASH_0 and NASH_P initializations
//!   (plus a Jacobi variant for ablations).
//! * [`equilibrium`] — ε-Nash verification and price-of-anarchy helpers.
//! * [`stopping`] — certified, scale-invariant stopping rules
//!   ([`stopping::StoppingRule`]): a per-user regret certificate from the
//!   water-filling KKT residual upper-bounds the exact ε-Nash gap each
//!   sweep, so the solvers can stop on a *proved* bound instead of the
//!   paper's scale-dependent absolute norm (kept as a repro opt-in).
//! * [`sampled`] — a power-of-k-choices sparse solver for web-scale
//!   instances (n=10⁴ computers, m=10⁵ users): each best reply samples
//!   `k` candidate servers instead of scanning all `n`, and the sampling
//!   error folds into the same certificate.
//! * [`schemes`] — the comparison baselines of §4.2: proportional (PS),
//!   global optimal (GOS) and individual optimal / Wardrop (IOS), behind a
//!   common [`schemes::LoadBalancingScheme`] trait alongside NASH itself.
//! * [`gradient`] — an independent projected-gradient best-reply solver
//!   used to cross-check the water-filling optimum.
//! * [`overload`] — overload policies ([`overload::OverloadPolicy`]) and
//!   admission control: when capacity churn drives `Φ ≥ Σ μ_i`, shed
//!   just enough load (proportionally or max-min fair) that the residual
//!   game is feasible, instead of aborting.
//! * [`dynamics`] — re-equilibration across system changes, including
//!   policy-driven capacity updates ([`dynamics::DynamicBalancer::update_capacity`])
//!   that survive server crashes by shedding and warm-restarting.
//! * [`metrics`] — per-user/system response times and Jain fairness for a
//!   computed profile (the paper's two evaluation metrics).
//!
//! ## Quickstart
//!
//! ```
//! use lb_game::model::SystemModel;
//! use lb_game::nash::{Initialization, NashSolver};
//! use lb_game::metrics::evaluate_profile;
//!
//! let model = SystemModel::builder()
//!     .computer_rates(vec![10.0, 20.0, 50.0, 100.0])
//!     .user_rates(vec![30.0, 60.0])
//!     .build()
//!     .unwrap();
//! let outcome = NashSolver::new(Initialization::Proportional)
//!     .solve(&model)
//!     .unwrap();
//! assert!(outcome.converged());
//! let m = evaluate_profile(&model, outcome.profile()).unwrap();
//! assert!(m.fairness > 0.99); // Nash is near-perfectly fair here
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod best_reply;
pub mod diagnostics;
pub mod dynamics;
pub mod equilibrium;
pub mod error;
pub mod gradient;
pub mod latency;
pub mod metrics;
pub mod model;
pub mod multicore;
pub mod nash;
pub mod overload;
pub mod response;
pub mod sampled;
pub mod schemes;
pub mod sensitivity;
pub mod stopping;
pub mod strategy;

pub use error::GameError;
pub use model::SystemModel;
pub use stopping::{Certificate, StoppingRule, ViewFreshness};
pub use strategy::{Strategy, StrategyProfile};
