//! Independent iterative solver for the best-reply subproblem.
//!
//! [`exponentiated_gradient_flows`] minimizes the same objective as the
//! water-filling OPTIMAL algorithm with a completely different method —
//! mirror descent (exponentiated gradient) on the scaled simplex with
//! backtracking — and serves as a cross-check that Theorem 2.1's closed
//! form really is the optimum. It is also the kind of generic solver the
//! paper contrasts with ("there exist few algorithms for finding the
//! optimum for similar optimization problems … complex and involving a
//! method for solving a nonlinear equation"); the benches quantify how
//! much slower it is than OPTIMAL.

use crate::best_reply::split_cost;
use crate::error::GameError;

/// Minimizes `Σ_i x_i/(a_i − x_i)` over `{x >= 0, Σ x_i = demand}` by
/// exponentiated-gradient descent. Non-positive rates are excluded.
///
/// Returns flows in the caller's order. Accuracy is controlled by
/// `iterations`; a few thousand iterations reach ~1e-8 relative cost on
/// paper-sized systems.
///
/// # Errors
///
/// * [`GameError::InvalidRate`] for a non-positive demand.
/// * [`GameError::InfeasibleBestReply`] when capacity is insufficient.
pub fn exponentiated_gradient_flows(
    rates: &[f64],
    demand: f64,
    iterations: u32,
) -> Result<Vec<f64>, GameError> {
    if !demand.is_finite() || demand <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "demand",
            value: demand,
        });
    }
    let usable: Vec<usize> = (0..rates.len()).filter(|&i| rates[i] > 0.0).collect();
    let capacity: f64 = usable.iter().map(|&i| rates[i]).sum();
    if capacity <= demand {
        return Err(GameError::InfeasibleBestReply {
            user: usize::MAX,
            available: capacity,
            demand,
        });
    }

    // Feasible interior start: proportional to available rates.
    let mut x = vec![0.0; rates.len()];
    for &i in &usable {
        x[i] = demand * rates[i] / capacity;
    }
    let mut cost = split_cost(rates, &x);
    let mut eta = 0.5;

    for _ in 0..iterations {
        // Gradient of the (unnormalized) objective.
        let grad: Vec<f64> = usable
            .iter()
            .map(|&i| {
                let r = rates[i] - x[i];
                rates[i] / (r * r)
            })
            .collect();
        // Normalize the gradient so the step size is scale-free.
        let gmax = grad.iter().cloned().fold(f64::MIN, f64::max);

        // Backtracking exponentiated-gradient step.
        let mut improved = false;
        for _ in 0..40 {
            let mut trial = vec![0.0; rates.len()];
            let mut z = 0.0;
            for (k, &i) in usable.iter().enumerate() {
                let w = x[i] * (-eta * grad[k] / gmax).exp();
                trial[i] = w;
                z += w;
            }
            for &i in &usable {
                trial[i] *= demand / z;
            }
            let trial_cost = split_cost(rates, &trial);
            if trial_cost.is_finite() && trial_cost <= cost {
                improved = trial_cost < cost - 1e-15;
                x = trial;
                cost = trial_cost;
                // Gentle step growth after a success.
                eta = (eta * 1.5).min(8.0);
                break;
            }
            eta *= 0.5;
        }
        if !improved && eta < 1e-12 {
            break;
        }
    }
    Ok(x)
}

/// Minimizes `Σ_i x_i · T_i(base_i + x_i)` over `{x >= 0, Σ x = demand}`
/// for *arbitrary* convex increasing latencies — the numeric best-reply
/// engine of the multicore (M/M/c) extension, where no closed form
/// exists. `base` is the flow already placed on each queue by the other
/// users.
///
/// Exponentiated-gradient with numerical derivatives and backtracking;
/// queues whose remaining capacity is insufficient are excluded.
///
/// # Errors
///
/// * [`GameError::InvalidRate`] for a non-positive demand.
/// * [`GameError::InfeasibleBestReply`] when `Σ max(cap_i − base_i, 0)
///   <= demand`.
pub fn minimize_general_split(
    latencies: &[&dyn crate::latency::Latency],
    base: &[f64],
    demand: f64,
    iterations: u32,
) -> Result<Vec<f64>, GameError> {
    assert_eq!(latencies.len(), base.len(), "latency/base arity");
    if !demand.is_finite() || demand <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "demand",
            value: demand,
        });
    }
    let headroom: Vec<f64> = latencies
        .iter()
        .zip(base)
        .map(|(l, &b)| (l.capacity() - b).max(0.0))
        .collect();
    let usable: Vec<usize> = (0..latencies.len())
        .filter(|&i| headroom[i] > 0.0)
        .collect();
    let total_headroom: f64 = usable.iter().map(|&i| headroom[i]).sum();
    if total_headroom <= demand {
        return Err(GameError::InfeasibleBestReply {
            user: usize::MAX,
            available: total_headroom,
            demand,
        });
    }

    let cost = |x: &[f64]| -> f64 {
        let mut acc = 0.0;
        for (&xi, (l, &b)) in x.iter().zip(latencies.iter().zip(base)) {
            if xi > 0.0 {
                let t = l.response_time(b + xi);
                if !t.is_finite() {
                    return f64::INFINITY;
                }
                acc += xi * t;
            }
        }
        acc
    };

    // Feasible interior start: proportional to headroom.
    let mut x = vec![0.0; latencies.len()];
    for &i in &usable {
        x[i] = demand * headroom[i] / total_headroom;
    }
    let mut current = cost(&x);
    let mut eta = 0.5;

    for _ in 0..iterations {
        // Numerical gradient of phi_i(x) = x * T_i(base + x).
        let grad: Vec<f64> = usable
            .iter()
            .map(|&i| {
                let h = (1e-6 * headroom[i]).max(1e-12);
                let xp = (x[i] + h).min(headroom[i] - 1e-12);
                let xm = (x[i] - h).max(0.0);
                let fp = xp * latencies[i].response_time(base[i] + xp);
                let fm = xm * latencies[i].response_time(base[i] + xm);
                if xp > xm {
                    (fp - fm) / (xp - xm)
                } else {
                    latencies[i].response_time(base[i])
                }
            })
            .collect();
        let gmax = grad.iter().cloned().fold(1e-300_f64, |a, b| a.max(b.abs()));

        let mut improved = false;
        for _ in 0..40 {
            let mut trial = vec![0.0; x.len()];
            let mut z = 0.0;
            for (k, &i) in usable.iter().enumerate() {
                let w = x[i].max(1e-300) * (-eta * grad[k] / gmax).exp();
                trial[i] = w;
                z += w;
            }
            for &i in &usable {
                trial[i] *= demand / z;
            }
            let trial_cost = cost(&trial);
            if trial_cost.is_finite() && trial_cost <= current {
                improved = trial_cost < current - 1e-15;
                x = trial;
                current = trial_cost;
                eta = (eta * 1.5).min(8.0);
                break;
            }
            eta *= 0.5;
        }
        if !improved && eta < 1e-12 {
            break;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_reply::water_fill_flows;
    use crate::latency::{Latency, Mm1Latency, MmcLatency};

    #[test]
    fn matches_water_filling_cost() {
        let cases: Vec<(Vec<f64>, f64)> = vec![
            (vec![10.0, 20.0, 50.0, 100.0], 90.0),
            (vec![10.0, 10.0, 10.0], 15.0),
            (vec![100.0, 1.0], 0.5),
            (vec![7.0, 13.0, 29.0, 61.0, 3.0], 60.0),
        ];
        for (rates, demand) in cases {
            let exact = water_fill_flows(&rates, demand).unwrap();
            let approx = exponentiated_gradient_flows(&rates, demand, 4000).unwrap();
            let c_exact = split_cost(&rates, &exact);
            let c_approx = split_cost(&rates, &approx);
            assert!(
                c_approx <= c_exact * (1.0 + 1e-5),
                "gradient cost {c_approx} vs optimal {c_exact} for {rates:?}, {demand}"
            );
            assert!(
                c_approx >= c_exact - 1e-12,
                "gradient beat the closed-form optimum?! {c_approx} < {c_exact}"
            );
        }
    }

    #[test]
    fn flows_are_feasible() {
        let rates = [10.0, 20.0, 50.0];
        let x = exponentiated_gradient_flows(&rates, 40.0, 2000).unwrap();
        let sum: f64 = x.iter().sum();
        assert!((sum - 40.0).abs() < 1e-9);
        for (&xi, &a) in x.iter().zip(&rates) {
            assert!(xi >= 0.0 && xi < a);
        }
    }

    #[test]
    fn skips_dead_servers() {
        let x = exponentiated_gradient_flows(&[10.0, -1.0, 0.0, 10.0], 5.0, 1000).unwrap();
        assert_eq!(x[1], 0.0);
        assert_eq!(x[2], 0.0);
    }

    #[test]
    fn rejects_infeasible() {
        assert!(exponentiated_gradient_flows(&[1.0, 1.0], 2.0, 10).is_err());
        assert!(exponentiated_gradient_flows(&[1.0], 0.0, 10).is_err());
    }

    #[test]
    fn general_solver_reduces_to_mm1_water_filling() {
        // With M/M/1 latencies and zero base load, the general solver must
        // agree with the closed form.
        let mus = [10.0, 20.0, 50.0];
        let lats: Vec<Mm1Latency> = mus.iter().map(|&mu| Mm1Latency { mu }).collect();
        let refs: Vec<&dyn Latency> = lats.iter().map(|l| l as &dyn Latency).collect();
        let demand = 40.0;
        let general = minimize_general_split(&refs, &[0.0, 0.0, 0.0], demand, 5000).unwrap();
        let exact = water_fill_flows(&mus, demand).unwrap();
        let c_general = split_cost(&mus, &general);
        let c_exact = split_cost(&mus, &exact);
        assert!(
            (c_general - c_exact).abs() < 1e-5 * c_exact,
            "general {c_general} vs exact {c_exact}"
        );
    }

    #[test]
    fn general_solver_accounts_for_base_load() {
        // Base load on the fast queue should push flow to the slow one
        // relative to the empty-system optimum.
        let mus = [10.0, 10.0];
        let lats = [Mm1Latency { mu: 10.0 }, Mm1Latency { mu: 10.0 }];
        let refs: Vec<&dyn Latency> = lats.iter().map(|l| l as &dyn Latency).collect();
        let x = minimize_general_split(&refs, &[6.0, 0.0], 4.0, 3000).unwrap();
        assert!(x[1] > x[0], "loaded queue should receive less: {x:?}");
        let sum: f64 = x.iter().sum();
        assert!((sum - 4.0).abs() < 1e-9);
        let _ = mus;
    }

    #[test]
    fn general_solver_handles_mmc_pools() {
        // One quad-core pool vs one fast single server, equal capacity.
        let pool = MmcLatency {
            mu: 5.0,
            servers: 4,
        };
        let single = Mm1Latency { mu: 20.0 };
        let refs: Vec<&dyn Latency> = vec![&pool, &single];
        let x = minimize_general_split(&refs, &[0.0, 0.0], 24.0, 4000).unwrap();
        let sum: f64 = x.iter().sum();
        assert!((sum - 24.0).abs() < 1e-9);
        assert!(x.iter().all(|&v| (0.0..20.0).contains(&v)));
        // The fast single server has lower latency at equal flow, so it
        // should carry more.
        assert!(x[1] > x[0], "flows {x:?}");
        // Local optimality: pairwise flow transfers cannot help.
        let cost = |x: &[f64]| x[0] * pool.response_time(x[0]) + x[1] * single.response_time(x[1]);
        let c0 = cost(&x);
        for d in [1e-3, -1e-3] {
            let y = [x[0] + d, x[1] - d];
            if y.iter().all(|&v| v >= 0.0) {
                assert!(cost(&y) >= c0 - 1e-9, "transfer {d} improves");
            }
        }
    }

    #[test]
    fn general_solver_rejects_insufficient_headroom() {
        let a = Mm1Latency { mu: 5.0 };
        let b = Mm1Latency { mu: 5.0 };
        let refs: Vec<&dyn Latency> = vec![&a, &b];
        assert!(matches!(
            minimize_general_split(&refs, &[4.0, 4.0], 3.0, 100),
            Err(GameError::InfeasibleBestReply { .. })
        ));
    }
}
