//! Certified, scale-invariant stopping rules for the best-reply solvers.
//!
//! The paper stops NASH when the absolute norm
//! `Σ_j |D_j^{(l)} − D_j^{(l−1)}|` drops below a fixed ε. That criterion
//! silently changes meaning with problem size and units: rescaling every
//! rate `μ_i, φ_j → c·μ_i, c·φ_j` divides all response times by `c`, so
//! the same ε becomes vacuous for `c ≫ 1` and unreachable for `c ≪ 1`;
//! growing `m` makes the *sum* over users demand ever-smaller per-user
//! changes. [`StoppingRule`] fixes this: the paper's rule survives as an
//! explicit repro opt-in ([`StoppingRule::AbsoluteNorm`]) while the
//! default is a certificate the user can trust at any scale.
//!
//! ## The per-user regret certificate
//!
//! Fix user `j` and freeze everyone else. With `b_i` the rate available
//! to `j` on computer `i` (own flow added back) the user minimizes the
//! convex `φ_j·D_j(x) = Σ_i x_i/(b_i − x_i)` over the scaled simplex
//! `{x ≥ 0, Σ x_i = φ_j}`. Its gradient is the **marginal cost**
//!
//! ```text
//! c_i = b_i / (b_i − x_i)² = (h_i + x_i) / h_i²,   h_i = μ_i − load_i
//! ```
//!
//! (`h_i` is the computer's headroom *including* `j`'s own flow, which is
//! exactly what the solvers' `loads` arrays hold). Convexity gives the
//! Frank–Wolfe / duality-gap bound
//!
//! ```text
//! D_j(x) − D_j(best reply) ≤ r_j := (1/φ_j) Σ_i x_i c_i − min_i c_i
//! ```
//!
//! so `max_j r_j` is a certified upper bound on the exact
//! [`crate::equilibrium::epsilon_nash_gap`] — computed in one O(n) pass
//! per user from state the solvers already maintain, with no best-reply
//! re-solve. `r_j` is also the water-filling KKT residual: it vanishes
//! exactly when `j`'s marginal costs are equal on its support and no
//! smaller off it, which is Theorem 2.1's optimality condition.
//!
//! The *relative* regret `r_j / D_j` is invariant under `μ, φ → c·μ, c·φ`
//! (both sides scale as `1/c`) and does not degrade as `m` grows, which
//! makes [`StoppingRule::CertifiedGap`] the default. Sampled best replies
//! ([`crate::sampled`]) fold their sampling error into the same bound for
//! free: `min_i c_i` ranges over **all** computers, so flow parked on a
//! poorly sampled support shows up as residual regret until the sampler
//! finds the better servers.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::StrategyProfile;

/// When an iterative best-reply solver should declare convergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingRule {
    /// The paper's criterion: stop when the absolute response-time norm
    /// `Σ_j |ΔD_j| ≤ ε`. Scale-dependent — kept only so the paper's
    /// figures reproduce byte-identically; see the module docs for why
    /// it is a correctness bug at any other scale.
    AbsoluteNorm,
    /// Stop when the norm is small *relative to the response times
    /// themselves*: `Σ_j |ΔD_j| ≤ ε · Σ_j D_j`. Scale-invariant and as
    /// cheap as the absolute rule, but still a heuristic: a slowly
    /// creeping iteration can stall under the threshold while far from
    /// equilibrium.
    RelativeNorm,
    /// Stop when the certified relative regret bound
    /// `max_j r_j / D_j ≤ ε` holds (see the module docs). The only rule
    /// of the three whose acceptance *proves* an ε-Nash property of the
    /// returned profile.
    CertifiedGap {
        /// Bound on the relative per-user regret at acceptance.
        epsilon: f64,
    },
}

impl Default for StoppingRule {
    /// The scale-invariant certified rule at the paper's ε.
    fn default() -> Self {
        Self::CertifiedGap { epsilon: 1e-4 }
    }
}

impl StoppingRule {
    /// Static label for telemetry payloads.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::AbsoluteNorm => "absolute_norm",
            Self::RelativeNorm => "relative_norm",
            Self::CertifiedGap { .. } => "certified_gap",
        }
    }

    /// Whether this rule needs the per-sweep regret certificate.
    #[must_use]
    pub fn needs_certificate(&self) -> bool {
        matches!(self, Self::CertifiedGap { .. })
    }

    /// The convergence decision for one completed sweep: `norm` is the
    /// paper's `Σ_j |ΔD_j|`, `total_d` is `Σ_j D_j` after the sweep, and
    /// `certificate` is the sweep's regret certificate (required by
    /// [`StoppingRule::CertifiedGap`], ignored by the others).
    #[must_use]
    pub fn accepts(
        &self,
        tolerance: f64,
        norm: f64,
        total_d: f64,
        certificate: Option<&Certificate>,
    ) -> bool {
        match self {
            Self::AbsoluteNorm => norm <= tolerance,
            Self::RelativeNorm => norm <= tolerance * total_d,
            Self::CertifiedGap { epsilon } => certificate.is_some_and(|c| c.relative <= *epsilon),
        }
    }
}

/// One sweep's regret certificate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// `max_j r_j` — a certified upper bound on the exact
    /// [`crate::equilibrium::epsilon_nash_gap`] of the profile.
    pub absolute: f64,
    /// `max_j r_j / D_j` — the scale-invariant form the
    /// [`StoppingRule::CertifiedGap`] rule thresholds.
    pub relative: f64,
}

impl Certificate {
    /// The zero certificate (an exact equilibrium).
    #[must_use]
    pub fn zero() -> Self {
        Self {
            absolute: 0.0,
            relative: 0.0,
        }
    }

    /// Folds another user's `(regret, D_j)` pair into the max-reduction.
    /// Order-independent (max is commutative and associative), so
    /// parallel reductions are bit-identical to sequential ones.
    pub fn absorb(&mut self, regret: f64, d: f64) {
        self.absolute = self.absolute.max(regret);
        self.relative = self.relative.max(relative_regret(regret, d));
    }
}

/// Freshness gate for certificates assembled from a distributed,
/// possibly-stale view (the asynchronous runtime's acceptance rule).
///
/// A per-user regret report proves something about the *state it was
/// measured against*, not about the state the acceptor will return. The
/// gate closes that hole with two conditions:
///
/// 1. the report was generated within the staleness bound τ of the
///    acceptor's clock, and
/// 2. the version vector the report was measured against is exactly the
///    acceptor's current one — so there are provably no updates in
///    flight between measurement and acceptance.
///
/// Under (2), every reporter and the acceptor hold the *same* board;
/// under (1), "current" is recent enough that the bound is about the
/// returned state, not an ancient coincidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewFreshness {
    /// The staleness bound τ, in the acceptor's clock units (the async
    /// runtime uses virtual µs).
    pub staleness_bound: u64,
}

impl ViewFreshness {
    /// Whether a report generated at `generated_at` is still fresh at
    /// `now`. Saturating: a report timestamped ahead of the acceptor's
    /// clock (possible with per-node clocks) counts as fresh.
    #[must_use]
    pub fn is_fresh(&self, generated_at: u64, now: u64) -> bool {
        now.saturating_sub(generated_at) <= self.staleness_bound
    }

    /// The full acceptance predicate: fresh **and** measured against the
    /// acceptor's exact version vector (length mismatch rejects).
    #[must_use]
    pub fn accepts(
        &self,
        generated_at: u64,
        now: u64,
        reported_view: &[u64],
        current_view: &[u64],
    ) -> bool {
        self.is_fresh(generated_at, now) && reported_view == current_view
    }
}

/// The relative form of a regret bound: `r / D`, with the conventions
/// that a zero-response-time user has zero relative regret iff its
/// absolute regret is zero (and infinite otherwise — nothing can be
/// certified about it).
#[must_use]
pub fn relative_regret(regret: f64, d: f64) -> f64 {
    if regret == 0.0 {
        return 0.0;
    }
    // An infinite (or otherwise non-finite) regret certifies nothing at
    // any scale — ∞/∞ would be NaN, which `f64::max` silently drops, so
    // it must never reach the max-reduction.
    if !regret.is_finite() || !d.is_finite() {
        return f64::INFINITY;
    }
    if d > 0.0 {
        regret / d
    } else {
        f64::INFINITY
    }
}

/// The marginal cost `∂(φ_j D_j)/∂x_i = (h + x) / h²` of routing flow
/// `x` to a computer with headroom `h = μ − load` (own flow included in
/// `load`).
#[must_use]
pub fn marginal_cost(headroom: f64, flow: f64) -> f64 {
    (headroom + flow) / (headroom * headroom)
}

/// The per-user regret bound `r_j` and response time `D_j` for a dense
/// flow row against the aggregate `loads` (own flow included). One O(n)
/// pass; see the module docs for the math.
///
/// A row that routes flow onto a computer without headroom gets
/// `(∞, ∞)` — the state certifies nothing. Computers with no headroom
/// and no flow are unusable (infinite marginal cost) and are skipped.
#[must_use]
pub fn user_regret(rates: &[f64], loads: &[f64], row: &[f64], phi: f64) -> (f64, f64) {
    let mut weighted = 0.0; // Σ (x_i/φ) c_i — equals D_j's gradient pairing
    let mut min_c = f64::INFINITY;
    let mut d = 0.0;
    for i in 0..rates.len() {
        let h = rates[i] - loads[i];
        let x = row[i];
        if h <= 0.0 {
            if x > 0.0 {
                return (f64::INFINITY, f64::INFINITY);
            }
            continue;
        }
        let c = marginal_cost(h, x);
        if x > 0.0 {
            weighted += x / phi * c;
            d += x / phi / h;
        }
        min_c = min_c.min(c);
    }
    if !min_c.is_finite() {
        // Every computer saturated (possible only mid-divergence): an
        // idle user has nothing to regret, an active one was caught by
        // the early return above.
        return (if weighted > 0.0 { f64::INFINITY } else { 0.0 }, d);
    }
    ((weighted - min_c).max(0.0), d)
}

/// The regret certificate of an explicit strategy profile — the
/// standalone entry point (the solvers compute the same quantity from
/// their internal workspaces without materializing a profile).
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] when profile and model disagree.
pub fn profile_certificate(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<Certificate, GameError> {
    let m = model.num_users();
    let n = model.num_computers();
    if profile.num_users() != m {
        return Err(GameError::DimensionMismatch {
            expected: m,
            actual: profile.num_users(),
        });
    }
    if profile.num_computers() != n {
        return Err(GameError::DimensionMismatch {
            expected: n,
            actual: profile.num_computers(),
        });
    }
    let mut loads = vec![0.0; n];
    let mut rows = Vec::with_capacity(m);
    for j in 0..m {
        let phi = model.user_rate(j);
        let s = profile.strategy(j);
        let row: Vec<f64> = (0..n).map(|i| s.fraction(i) * phi).collect();
        for (l, &x) in loads.iter_mut().zip(&row) {
            *l += x;
        }
        rows.push(row);
    }
    let mut cert = Certificate::zero();
    for (j, row) in rows.iter().enumerate() {
        let (r, d) = user_regret(model.computer_rates(), &loads, row, model.user_rate(j));
        cert.absorb(r, d);
    }
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;
    use crate::nash::nash_equilibrium;
    use crate::strategy::Strategy;

    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    /// Proportional split — feasible on every computer (loads sit at
    /// half capacity) but measurably short of the equilibrium.
    fn suboptimal_profile() -> StrategyProfile {
        StrategyProfile::replicated(Strategy::new(vec![0.125, 0.25, 0.625]).unwrap(), 2).unwrap()
    }

    #[test]
    fn certificate_bounds_the_exact_gap_for_a_bad_profile() {
        let m = model();
        let p = suboptimal_profile();
        let cert = profile_certificate(&m, &p).unwrap();
        let gap = epsilon_nash_gap(&m, &p).unwrap();
        assert!(gap > 1e-4, "proportional split should be improvable");
        assert!(
            cert.absolute >= gap,
            "certificate {} below exact gap {gap}",
            cert.absolute
        );
        assert!(cert.relative > 0.0 && cert.relative.is_finite());
    }

    #[test]
    fn certificate_vanishes_at_equilibrium() {
        let m = model();
        let out = nash_equilibrium(&m).unwrap();
        let cert = profile_certificate(&m, out.profile()).unwrap();
        let gap = epsilon_nash_gap(&m, out.profile()).unwrap();
        assert!(cert.absolute >= gap, "{} < {gap}", cert.absolute);
        assert!(cert.relative < 1e-3, "relative {}", cert.relative);
    }

    #[test]
    fn infinite_regret_on_a_saturated_profile_never_passes_for_converged() {
        // Uniform split overloads the μ = 10 computer (load 40/3 each
        // way beyond capacity): the certificate must be (∞, ∞), never a
        // NaN-laundered zero that a stopping rule would accept.
        let m = model();
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let cert = profile_certificate(&m, &p).unwrap();
        assert!(cert.absolute.is_infinite());
        assert!(cert.relative.is_infinite());
        assert!(!StoppingRule::CertifiedGap { epsilon: 1e-4 }.accepts(1e-4, 0.0, 1.0, Some(&cert)));
    }

    #[test]
    fn certificate_relative_form_is_scale_invariant() {
        let base = model();
        let p = suboptimal_profile();
        let cert = profile_certificate(&base, &p).unwrap();
        for scale in [0.01, 100.0] {
            let scaled = SystemModel::new(
                base.computer_rates().iter().map(|r| r * scale).collect(),
                (0..base.num_users())
                    .map(|j| base.user_rate(j) * scale)
                    .collect(),
            )
            .unwrap();
            let sc = profile_certificate(&scaled, &p).unwrap();
            // Absolute regret carries the 1/scale unit; the relative
            // form does not move (up to fp rounding in the rescale).
            assert!(
                (sc.relative - cert.relative).abs() <= 1e-9 * cert.relative.max(1.0),
                "scale {scale}: {} vs {}",
                sc.relative,
                cert.relative
            );
            assert!(
                (sc.absolute * scale - cert.absolute).abs() <= 1e-9 * cert.absolute.max(1.0),
                "scale {scale}: absolute {} vs {}",
                sc.absolute,
                cert.absolute
            );
        }
    }

    #[test]
    fn saturated_support_certifies_nothing() {
        // Route flow onto a computer with no headroom: (∞, ∞).
        let (r, d) = user_regret(&[10.0, 20.0], &[10.0, 5.0], &[1.0, 0.0], 1.0);
        assert!(r.is_infinite() && d.is_infinite());
        // A saturated computer with no flow is merely unusable.
        let (r, d) = user_regret(&[10.0, 20.0], &[10.0, 5.0], &[0.0, 1.0], 1.0);
        assert!(r.is_finite() && d.is_finite());
    }

    #[test]
    fn rules_accept_what_they_should() {
        let cert_ok = Certificate {
            absolute: 1.0,
            relative: 5e-5,
        };
        let cert_bad = Certificate {
            absolute: 1.0,
            relative: 5e-3,
        };
        // Absolute: only the norm matters.
        assert!(StoppingRule::AbsoluteNorm.accepts(1e-4, 5e-5, 100.0, None));
        assert!(!StoppingRule::AbsoluteNorm.accepts(1e-4, 5e-3, 100.0, None));
        // Relative: the same norm passes or fails with the D scale.
        assert!(StoppingRule::RelativeNorm.accepts(1e-4, 5e-3, 100.0, None));
        assert!(!StoppingRule::RelativeNorm.accepts(1e-4, 5e-3, 1.0, None));
        // Certified: needs a certificate, thresholds its relative form.
        let rule = StoppingRule::CertifiedGap { epsilon: 1e-4 };
        assert!(rule.needs_certificate());
        assert!(!rule.accepts(1e-4, 0.0, 1.0, None));
        assert!(rule.accepts(1e-4, 1.0, 1.0, Some(&cert_ok)));
        assert!(!rule.accepts(1e-4, 0.0, 1.0, Some(&cert_bad)));
    }

    #[test]
    fn default_rule_is_certified_at_paper_epsilon() {
        assert_eq!(
            StoppingRule::default(),
            StoppingRule::CertifiedGap { epsilon: 1e-4 }
        );
        assert_eq!(StoppingRule::default().label(), "certified_gap");
    }

    #[test]
    fn relative_regret_conventions() {
        assert_eq!(relative_regret(0.5, 2.0), 0.25);
        assert_eq!(relative_regret(0.0, 0.0), 0.0);
        assert!(relative_regret(0.5, 0.0).is_infinite());
        // ∞/∞ must surface as ∞, not NaN (max-reductions drop NaN).
        assert!(relative_regret(f64::INFINITY, f64::INFINITY).is_infinite());
    }

    #[test]
    fn view_freshness_gates_on_age_and_version_agreement() {
        let gate = ViewFreshness {
            staleness_bound: 100,
        };
        // Age: inclusive bound, saturating below zero.
        assert!(gate.is_fresh(50, 150));
        assert!(!gate.is_fresh(49, 150));
        assert!(gate.is_fresh(200, 150), "future reports count as fresh");
        // Version agreement must be exact — newer, older, and
        // length-mismatched views all reject.
        let current = [3u64, 7, 1];
        assert!(gate.accepts(100, 150, &[3, 7, 1], &current));
        assert!(!gate.accepts(100, 150, &[3, 7, 2], &current));
        assert!(!gate.accepts(100, 150, &[3, 7], &current));
        // Both conditions must hold at once.
        assert!(!gate.accepts(0, 150, &[3, 7, 1], &current));
    }
}
